//! Checkpointing of concrete object dependency graphs.
//!
//! The paper's recovery path regenerates the concrete dependency tree
//! from configuration files, but notes it "can be checkpointed every k
//! epochs for faster recovery". This module provides that: a compact,
//! self-describing binary serialization of a [`ConcreteGraph`] that
//! round-trips exactly, so a restarted engine can load the plan rather
//! than re-deriving it.
//!
//! The format reuses the workspace's LEB128/length-prefix conventions
//! (`sand_frame::wire`); floats travel as IEEE-754 bit patterns.

use crate::concrete::{BatchRef, ConcreteGraph, ConcreteNode, Consumer, MergeStats, SamplePlan};
use crate::resolve::ResolvedOp;
use crate::{GraphError, ObjectKey, Result};
use sand_frame::ops::Interpolation;
use sand_frame::wire::{get_varint, put_varint};
use std::collections::HashMap;

/// Magic bytes identifying a graph checkpoint ("SGCK").
pub const MAGIC: [u8; 4] = *b"SGCK";

/// Checkpoint format version.
pub const VERSION: u8 = 1;

fn err(what: &'static str) -> GraphError {
    GraphError::InvalidInput {
        what: what.to_string(),
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String> {
    let len = get_varint(bytes, pos).map_err(|_| err("truncated string length"))? as usize;
    let end = pos.checked_add(len).ok_or(err("string length overflow"))?;
    if end > bytes.len() {
        return Err(err("truncated string"));
    }
    let s = std::str::from_utf8(&bytes[*pos..end]).map_err(|_| err("invalid utf-8"))?;
    *pos = end;
    Ok(s.to_string())
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f64(bytes: &[u8], pos: &mut usize) -> Result<f64> {
    let end = pos.checked_add(8).ok_or(err("f64 overflow"))?;
    if end > bytes.len() {
        return Err(err("truncated f64"));
    }
    let mut b = [0u8; 8];
    b.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(f64::from_bits(u64::from_le_bytes(b)))
}

fn put_f32(out: &mut Vec<u8>, v: f32) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn get_f32(bytes: &[u8], pos: &mut usize) -> Result<f32> {
    let end = pos.checked_add(4).ok_or(err("f32 overflow"))?;
    if end > bytes.len() {
        return Err(err("truncated f32"));
    }
    let mut b = [0u8; 4];
    b.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(f32::from_bits(u32::from_le_bytes(b)))
}

fn put_key(out: &mut Vec<u8>, key: &ObjectKey) {
    match key {
        ObjectKey::Video { video_id } => {
            out.push(0);
            put_varint(out, *video_id);
        }
        ObjectKey::Frame { video_id, frame } => {
            out.push(1);
            put_varint(out, *video_id);
            put_varint(out, *frame as u64);
        }
        ObjectKey::Aug {
            video_id,
            frame,
            chain,
        } => {
            out.push(2);
            put_varint(out, *video_id);
            put_varint(out, *frame as u64);
            put_varint(out, chain.len() as u64);
            for (name, params) in chain {
                put_str(out, name);
                put_str(out, params);
            }
        }
    }
}

fn get_key(bytes: &[u8], pos: &mut usize) -> Result<ObjectKey> {
    let tag = *bytes.get(*pos).ok_or(err("truncated key tag"))?;
    *pos += 1;
    let gv = |pos: &mut usize| get_varint(bytes, pos).map_err(|_| err("truncated key"));
    Ok(match tag {
        0 => ObjectKey::Video { video_id: gv(pos)? },
        1 => ObjectKey::Frame {
            video_id: gv(pos)?,
            frame: gv(pos)? as usize,
        },
        2 => {
            let video_id = gv(pos)?;
            let frame = gv(pos)? as usize;
            let n = gv(pos)? as usize;
            let mut chain = Vec::with_capacity(n);
            for _ in 0..n {
                chain.push((get_str(bytes, pos)?, get_str(bytes, pos)?));
            }
            ObjectKey::Aug {
                video_id,
                frame,
                chain,
            }
        }
        _ => return Err(err("unknown key tag")),
    })
}

fn put_op(out: &mut Vec<u8>, op: &ResolvedOp) {
    match op {
        ResolvedOp::Resize { w, h, interp } => {
            out.push(0);
            put_varint(out, *w as u64);
            put_varint(out, *h as u64);
            out.push(match interp {
                Interpolation::Bilinear => 0,
                Interpolation::Nearest => 1,
            });
        }
        ResolvedOp::Crop { x, y, w, h } => {
            out.push(1);
            for v in [*x, *y, *w, *h] {
                put_varint(out, v as u64);
            }
        }
        ResolvedOp::Flip => out.push(2),
        ResolvedOp::ColorJitter { b, c, s } => {
            out.push(3);
            put_f32(out, *b);
            put_f32(out, *c);
            put_f32(out, *s);
        }
        ResolvedOp::Rotate { rot } => {
            out.push(4);
            out.push(match rot {
                sand_frame::ops::Rotation::Cw90 => 0,
                sand_frame::ops::Rotation::Cw180 => 1,
                sand_frame::ops::Rotation::Cw270 => 2,
            });
        }
        ResolvedOp::Invert => out.push(5),
        ResolvedOp::Blur { radius } => {
            out.push(6);
            put_varint(out, *radius as u64);
        }
        ResolvedOp::Custom { name } => {
            out.push(7);
            put_str(out, name);
        }
        ResolvedOp::Normalize { mean, std } => {
            out.push(8);
            put_varint(out, mean.len() as u64);
            for v in mean {
                put_f32(out, *v);
            }
            put_varint(out, std.len() as u64);
            for v in std {
                put_f32(out, *v);
            }
        }
    }
}

fn get_op(bytes: &[u8], pos: &mut usize) -> Result<ResolvedOp> {
    let tag = *bytes.get(*pos).ok_or(err("truncated op tag"))?;
    *pos += 1;
    let gv = |pos: &mut usize| get_varint(bytes, pos).map_err(|_| err("truncated op"));
    Ok(match tag {
        0 => {
            let w = gv(pos)? as usize;
            let h = gv(pos)? as usize;
            let it = *bytes.get(*pos).ok_or(err("truncated interp"))?;
            *pos += 1;
            let interp = match it {
                0 => Interpolation::Bilinear,
                1 => Interpolation::Nearest,
                _ => return Err(err("unknown interpolation")),
            };
            ResolvedOp::Resize { w, h, interp }
        }
        1 => ResolvedOp::Crop {
            x: gv(pos)? as usize,
            y: gv(pos)? as usize,
            w: gv(pos)? as usize,
            h: gv(pos)? as usize,
        },
        2 => ResolvedOp::Flip,
        3 => ResolvedOp::ColorJitter {
            b: get_f32(bytes, pos)?,
            c: get_f32(bytes, pos)?,
            s: get_f32(bytes, pos)?,
        },
        4 => {
            let r = *bytes.get(*pos).ok_or(err("truncated rotation"))?;
            *pos += 1;
            let rot = match r {
                0 => sand_frame::ops::Rotation::Cw90,
                1 => sand_frame::ops::Rotation::Cw180,
                2 => sand_frame::ops::Rotation::Cw270,
                _ => return Err(err("unknown rotation")),
            };
            ResolvedOp::Rotate { rot }
        }
        5 => ResolvedOp::Invert,
        6 => ResolvedOp::Blur {
            radius: gv(pos)? as usize,
        },
        7 => ResolvedOp::Custom {
            name: get_str(bytes, pos)?,
        },
        8 => {
            let nm = gv(pos)? as usize;
            let mut mean = Vec::with_capacity(nm);
            for _ in 0..nm {
                mean.push(get_f32(bytes, pos)?);
            }
            let ns = gv(pos)? as usize;
            let mut std = Vec::with_capacity(ns);
            for _ in 0..ns {
                std.push(get_f32(bytes, pos)?);
            }
            ResolvedOp::Normalize { mean, std }
        }
        _ => return Err(err("unknown op tag")),
    })
}

/// Serializes a concrete graph to checkpoint bytes.
#[must_use]
pub fn to_bytes(graph: &ConcreteGraph) -> Vec<u8> {
    let mut out = Vec::with_capacity(graph.nodes.len() * 32);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    put_varint(&mut out, graph.epochs.start);
    put_varint(&mut out, graph.epochs.end);
    // Nodes (children and the key index are rebuilt on load).
    put_varint(&mut out, graph.nodes.len() as u64);
    for n in &graph.nodes {
        put_key(&mut out, &n.key);
        match n.parent {
            Some(p) => {
                out.push(1);
                put_varint(&mut out, p as u64);
            }
            None => out.push(0),
        }
        put_varint(&mut out, n.size_bytes);
        put_f64(&mut out, n.edge_cost);
        out.push(u8::from(n.cached));
        put_varint(&mut out, n.dims.0 as u64);
        put_varint(&mut out, n.dims.1 as u64);
        match &n.op {
            Some(op) => {
                out.push(1);
                put_op(&mut out, op);
            }
            None => out.push(0),
        }
        put_varint(&mut out, n.consumers.len() as u64);
        for c in &n.consumers {
            put_varint(&mut out, u64::from(c.task));
            put_varint(&mut out, c.epoch);
            put_varint(&mut out, c.iteration);
            put_varint(&mut out, c.clock);
        }
    }
    // Batches.
    put_varint(&mut out, graph.batches.len() as u64);
    for b in &graph.batches {
        put_varint(&mut out, u64::from(b.task));
        put_varint(&mut out, b.epoch);
        put_varint(&mut out, b.iteration);
        put_varint(&mut out, b.clock);
        put_varint(&mut out, b.samples.len() as u64);
        for s in &b.samples {
            put_varint(&mut out, s.video_id);
            put_varint(&mut out, u64::from(s.sample));
            put_varint(&mut out, u64::from(s.variant));
            put_varint(&mut out, s.frame_nodes.len() as u64);
            for &fnode in &s.frame_nodes {
                put_varint(&mut out, fnode as u64);
            }
            put_varint(&mut out, s.frame_indices.len() as u64);
            for &fi in &s.frame_indices {
                put_varint(&mut out, fi as u64);
            }
            match &s.normalize {
                Some((mean, std)) => {
                    out.push(1);
                    put_varint(&mut out, mean.len() as u64);
                    for v in mean {
                        put_f32(&mut out, *v);
                    }
                    put_varint(&mut out, std.len() as u64);
                    for v in std {
                        put_f32(&mut out, *v);
                    }
                }
                None => out.push(0),
            }
        }
    }
    // Merge stats.
    let st = &graph.stats;
    put_varint(&mut out, st.decode_requests);
    put_varint(&mut out, st.unique_frames);
    put_varint(&mut out, st.aug_requests);
    put_varint(&mut out, st.unique_aug_nodes);
    let put_map = |out: &mut Vec<u8>, m: &HashMap<String, u64>| {
        put_varint(out, m.len() as u64);
        let mut keys: Vec<&String> = m.keys().collect();
        keys.sort();
        for k in keys {
            put_str(out, k);
            put_varint(out, m[k]);
        }
    };
    put_map(&mut out, &st.op_requests);
    put_map(&mut out, &st.op_unique);
    put_varint(&mut out, st.frame_selection.len() as u64);
    let mut sel: Vec<(&(u64, usize), &u32)> = st.frame_selection.iter().collect();
    sel.sort();
    for ((vid, frame), count) in sel {
        put_varint(&mut out, *vid);
        put_varint(&mut out, *frame as u64);
        put_varint(&mut out, u64::from(*count));
    }
    out
}

/// Deserializes a checkpoint produced by [`to_bytes`].
pub fn from_bytes(bytes: &[u8]) -> Result<ConcreteGraph> {
    if bytes.len() < 5 || bytes[..4] != MAGIC {
        return Err(err("bad checkpoint magic"));
    }
    if bytes[4] != VERSION {
        return Err(err("unsupported checkpoint version"));
    }
    let mut pos = 5;
    let gv = |pos: &mut usize| get_varint(bytes, pos).map_err(|_| err("truncated checkpoint"));
    let start = gv(&mut pos)?;
    let end = gv(&mut pos)?;
    let node_count = gv(&mut pos)? as usize;
    if node_count > 1 << 28 {
        return Err(err("implausible node count"));
    }
    let mut nodes: Vec<ConcreteNode> = Vec::with_capacity(node_count);
    for id in 0..node_count {
        let key = get_key(bytes, &mut pos)?;
        let has_parent = *bytes.get(pos).ok_or(err("truncated parent flag"))?;
        pos += 1;
        let parent = if has_parent == 1 {
            let p = gv(&mut pos)? as usize;
            if p >= id {
                return Err(err("parent must precede child"));
            }
            Some(p)
        } else {
            None
        };
        let size_bytes = gv(&mut pos)?;
        let edge_cost = get_f64(bytes, &mut pos)?;
        let cached = *bytes.get(pos).ok_or(err("truncated cached flag"))? == 1;
        pos += 1;
        let dims = (gv(&mut pos)? as usize, gv(&mut pos)? as usize);
        let has_op = *bytes.get(pos).ok_or(err("truncated op flag"))?;
        pos += 1;
        let op = if has_op == 1 {
            Some(get_op(bytes, &mut pos)?)
        } else {
            None
        };
        let n_consumers = gv(&mut pos)? as usize;
        let mut consumers = Vec::with_capacity(n_consumers);
        for _ in 0..n_consumers {
            consumers.push(Consumer {
                task: gv(&mut pos)? as u32,
                epoch: gv(&mut pos)?,
                iteration: gv(&mut pos)?,
                clock: gv(&mut pos)?,
            });
        }
        nodes.push(ConcreteNode {
            id,
            key,
            parent,
            children: Vec::new(),
            size_bytes,
            edge_cost,
            cached,
            consumers,
            dims,
            op,
        });
    }
    // Rebuild children lists.
    for id in 0..nodes.len() {
        if let Some(p) = nodes[id].parent {
            nodes[p].children.push(id);
        }
    }
    let batch_count = gv(&mut pos)? as usize;
    let mut batches = Vec::with_capacity(batch_count);
    for _ in 0..batch_count {
        let task = gv(&mut pos)? as u32;
        let epoch = gv(&mut pos)?;
        let iteration = gv(&mut pos)?;
        let clock = gv(&mut pos)?;
        let n_samples = gv(&mut pos)? as usize;
        let mut samples = Vec::with_capacity(n_samples);
        for _ in 0..n_samples {
            let video_id = gv(&mut pos)?;
            let sample = gv(&mut pos)? as u32;
            let variant = gv(&mut pos)? as u32;
            let nf = gv(&mut pos)? as usize;
            let mut frame_nodes = Vec::with_capacity(nf);
            for _ in 0..nf {
                let n = gv(&mut pos)? as usize;
                if n >= nodes.len() {
                    return Err(err("frame node out of range"));
                }
                frame_nodes.push(n);
            }
            let ni = gv(&mut pos)? as usize;
            let mut frame_indices = Vec::with_capacity(ni);
            for _ in 0..ni {
                frame_indices.push(gv(&mut pos)? as usize);
            }
            let has_norm = *bytes.get(pos).ok_or(err("truncated normalize flag"))?;
            pos += 1;
            let normalize = if has_norm == 1 {
                let nm = gv(&mut pos)? as usize;
                let mut mean = Vec::with_capacity(nm);
                for _ in 0..nm {
                    mean.push(get_f32(bytes, &mut pos)?);
                }
                let ns = gv(&mut pos)? as usize;
                let mut std = Vec::with_capacity(ns);
                for _ in 0..ns {
                    std.push(get_f32(bytes, &mut pos)?);
                }
                Some((mean, std))
            } else {
                None
            };
            samples.push(SamplePlan {
                video_id,
                sample,
                variant,
                frame_nodes,
                frame_indices,
                normalize,
            });
        }
        batches.push(BatchRef {
            task,
            epoch,
            iteration,
            clock,
            samples,
        });
    }
    let mut stats = MergeStats {
        decode_requests: gv(&mut pos)?,
        unique_frames: gv(&mut pos)?,
        aug_requests: gv(&mut pos)?,
        unique_aug_nodes: gv(&mut pos)?,
        ..Default::default()
    };
    for target in 0..2 {
        let n = gv(&mut pos)? as usize;
        for _ in 0..n {
            let k = get_str(bytes, &mut pos)?;
            let v = gv(&mut pos)?;
            if target == 0 {
                stats.op_requests.insert(k, v);
            } else {
                stats.op_unique.insert(k, v);
            }
        }
    }
    let n_sel = gv(&mut pos)? as usize;
    for _ in 0..n_sel {
        let vid = gv(&mut pos)?;
        let frame = gv(&mut pos)? as usize;
        let count = gv(&mut pos)? as u32;
        stats.frame_selection.insert((vid, frame), count);
    }
    Ok(ConcreteGraph::from_parts(nodes, batches, stats, start..end))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::{PlanInput, Planner, PlannerOptions, VideoMeta};
    use sand_config::parse_task_config;

    const TASK: &str = r#"
dataset:
  tag: ckpt
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
    - name: c
      branch_type: single
      inputs: ["a0"]
      outputs: ["a1"]
      config:
        - random_crop:
            shape: [8, 8]
        - flip:
            flip_prob: 0.5
        - normalize:
            mean: [0.45, 0.45, 0.45]
            std: [0.225, 0.225, 0.225]
"#;

    fn graph() -> ConcreteGraph {
        let videos: Vec<VideoMeta> = (0..3u64)
            .map(|video_id| VideoMeta {
                video_id,
                frames: 32,
                width: 32,
                height: 32,
                channels: 3,
                gop_size: 8,
                encoded_bytes: 10_000,
            })
            .collect();
        Planner::new(
            vec![PlanInput {
                task_id: 0,
                config: parse_task_config(TASK).unwrap(),
            }],
            videos,
            PlannerOptions {
                seed: 9,
                coordinate: true,
                epochs: 2..4,
            },
        )
        .unwrap()
        .plan()
        .unwrap()
    }

    #[test]
    fn checkpoint_roundtrips_exactly() {
        let g = graph();
        let bytes = to_bytes(&g);
        let back = from_bytes(&bytes).unwrap();
        assert_eq!(back.epochs, g.epochs);
        assert_eq!(back.nodes.len(), g.nodes.len());
        for (a, b) in g.nodes.iter().zip(back.nodes.iter()) {
            assert_eq!(a.key, b.key);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.children, b.children);
            assert_eq!(a.size_bytes, b.size_bytes);
            assert_eq!(a.cached, b.cached);
            assert_eq!(a.consumers, b.consumers);
            assert_eq!(a.dims, b.dims);
            assert_eq!(a.op, b.op);
            assert!((a.edge_cost - b.edge_cost).abs() < 1e-12);
        }
        assert_eq!(back.batches.len(), g.batches.len());
        for (a, b) in g.batches.iter().zip(back.batches.iter()) {
            assert_eq!(a.task, b.task);
            assert_eq!(a.epoch, b.epoch);
            assert_eq!(a.samples.len(), b.samples.len());
            for (sa, sb) in a.samples.iter().zip(b.samples.iter()) {
                assert_eq!(sa.frame_nodes, sb.frame_nodes);
                assert_eq!(sa.frame_indices, sb.frame_indices);
                assert_eq!(sa.normalize, sb.normalize);
            }
        }
        assert_eq!(back.stats, g.stats);
        // The key index rebuilt correctly.
        for n in &g.nodes {
            assert_eq!(back.node_by_key(&n.key), Some(n.id));
        }
    }

    #[test]
    fn corruption_never_panics() {
        let g = graph();
        let bytes = to_bytes(&g);
        for cut in [0, 4, 5, 20, bytes.len() / 2, bytes.len() - 1] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut={cut}");
        }
        let mut flipped = bytes.clone();
        for i in (0..flipped.len()).step_by(97) {
            flipped[i] ^= 0x55;
        }
        let _ = from_bytes(&flipped); // error or garbage, never a panic
    }
}
