//! The epoch-chunked concrete object dependency graph.
//!
//! Where the abstract graph describes view *types*, the concrete graph is
//! fully specified: one tree per video whose nodes are actual objects —
//! the encoded video at the root, decoded frames below it, and chains of
//! augmented frames below those. Training batches reference the terminal
//! (deepest) augmented-frame nodes; batch assembly itself (stack +
//! normalize) happens at read time and is not a cached object.
//!
//! The planner builds the graph for a chunk of `k` epochs across *all*
//! tasks at once, merging nodes whenever two tasks (or two epochs) need an
//! identical object: the same decoded frame, or the same frame transformed
//! by the same resolved op chain. The merge statistics it returns are the
//! direct source of the paper's Fig. 16 (op reduction) and Fig. 19 (frame
//! selection CDF).

use crate::abstract_graph::AbstractGraph;
use crate::pool::FramePool;
use crate::resolve::{self, coordinated_draw, DrawCtx, ResolvedOp};

/// Stable 64-bit identity of a task tag (FNV-1a), the shuffle key of
/// [`Planner::video_order`]. Tag-keyed identity is what keeps a task's
/// plan invariant under the surrounding task set.
fn tag_identity(tag: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in tag.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
use crate::{GraphError, Result};
use sand_config::types::TaskConfig;
use std::collections::HashMap;
use std::ops::Range;

/// Index of a node within a [`ConcreteGraph`].
pub type NodeId = usize;

/// Identity of a concrete object; equal keys are the same object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ObjectKey {
    /// The encoded source video (always present in dataset storage).
    Video {
        /// Video identifier.
        video_id: u64,
    },
    /// One decoded frame.
    Frame {
        /// Video identifier.
        video_id: u64,
        /// Display-order frame index.
        frame: usize,
    },
    /// A frame transformed by a chain of resolved ops.
    Aug {
        /// Video identifier.
        video_id: u64,
        /// Display-order frame index.
        frame: usize,
        /// Cumulative `(name, params)` chain from the decoded frame.
        chain: Vec<(String, String)>,
    },
}

impl ObjectKey {
    /// The video this object belongs to.
    #[must_use]
    pub fn video_id(&self) -> u64 {
        match self {
            ObjectKey::Video { video_id }
            | ObjectKey::Frame { video_id, .. }
            | ObjectKey::Aug { video_id, .. } => *video_id,
        }
    }

    /// Stable path fragment for the VFS (`frame3/aug2` style).
    #[must_use]
    pub fn path_fragment(&self) -> String {
        match self {
            ObjectKey::Video { .. } => String::new(),
            ObjectKey::Frame { frame, .. } => format!("frame{frame}"),
            ObjectKey::Aug { frame, chain, .. } => {
                format!("frame{frame}/aug{}", chain.len())
            }
        }
    }
}

/// A consumer record: which (task, epoch, iteration) needs a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Consumer {
    /// Task index.
    pub task: u32,
    /// Epoch index.
    pub epoch: u64,
    /// Task-local iteration within the epoch.
    pub iteration: u64,
    /// Global clock value used for deadline ordering.
    pub clock: u64,
}

/// One node of the concrete graph.
#[derive(Debug, Clone)]
pub struct ConcreteNode {
    /// This node's id.
    pub id: NodeId,
    /// Object identity.
    pub key: ObjectKey,
    /// Parent node (None only for video roots).
    pub parent: Option<NodeId>,
    /// Child node ids.
    pub children: Vec<NodeId>,
    /// Raw object size in bytes.
    pub size_bytes: u64,
    /// Compute cost of producing this node from its parent (cost units).
    pub edge_cost: f64,
    /// Whether the pruning pass decided to cache this node.
    pub cached: bool,
    /// Direct consumers (only terminal nodes have them).
    pub consumers: Vec<Consumer>,
    /// Output dims `(w, h)` of this object.
    pub dims: (usize, usize),
    /// The op producing this node from its parent (`None` for video roots
    /// and decoded frames, whose producer is the decoder itself).
    pub op: Option<ResolvedOp>,
}

/// One slot of a planned batch: a clip for one (video, sample, variant).
#[derive(Debug, Clone)]
pub struct SamplePlan {
    /// Source video.
    pub video_id: u64,
    /// Sample index within the video.
    pub sample: u32,
    /// Variant index (parallel terminal streams from multi/merge).
    pub variant: u32,
    /// Terminal node per clip frame, in clip order.
    pub frame_nodes: Vec<NodeId>,
    /// Selected source frame indices, in clip order.
    pub frame_indices: Vec<usize>,
    /// Normalization to apply at tensor assembly, if configured.
    pub normalize: Option<(Vec<f32>, Vec<f32>)>,
}

/// One planned training batch.
#[derive(Debug, Clone)]
pub struct BatchRef {
    /// Task index.
    pub task: u32,
    /// Epoch index.
    pub epoch: u64,
    /// Task-local iteration within the epoch.
    pub iteration: u64,
    /// Global clock value (for deadlines).
    pub clock: u64,
    /// The clips composing the batch.
    pub samples: Vec<SamplePlan>,
}

/// Operation-count statistics comparing requested vs. unique work.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MergeStats {
    /// Frame-decode requests summed over tasks/samples/epochs.
    pub decode_requests: u64,
    /// Distinct decoded-frame objects (actual decode work after merging).
    pub unique_frames: u64,
    /// Augmentation-op applications requested.
    pub aug_requests: u64,
    /// Distinct augmented objects (actual op work after merging).
    pub unique_aug_nodes: u64,
    /// Per-op-name requested counts.
    pub op_requests: HashMap<String, u64>,
    /// Per-op-name unique counts.
    pub op_unique: HashMap<String, u64>,
    /// Selection count per (video, frame), for the Fig. 19 CDF.
    pub frame_selection: HashMap<(u64, usize), u32>,
}

impl MergeStats {
    /// Fraction of decode operations eliminated by merging.
    #[must_use]
    pub fn decode_reduction(&self) -> f64 {
        if self.decode_requests == 0 {
            return 0.0;
        }
        1.0 - self.unique_frames as f64 / self.decode_requests as f64
    }

    /// Fraction of `op` applications eliminated by merging.
    #[must_use]
    pub fn op_reduction(&self, op: &str) -> f64 {
        let req = self.op_requests.get(op).copied().unwrap_or(0);
        if req == 0 {
            return 0.0;
        }
        let uniq = self.op_unique.get(op).copied().unwrap_or(0);
        1.0 - uniq as f64 / req as f64
    }

    /// CDF point: fraction of selected frames chosen at least `n` times.
    #[must_use]
    pub fn selected_at_least(&self, n: u32) -> f64 {
        if self.frame_selection.is_empty() {
            return 0.0;
        }
        let hits = self.frame_selection.values().filter(|&&c| c >= n).count();
        hits as f64 / self.frame_selection.len() as f64
    }
}

/// Metadata the planner needs about each video.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VideoMeta {
    /// Video identifier.
    pub video_id: u64,
    /// Total frames.
    pub frames: usize,
    /// Frame width.
    pub width: usize,
    /// Frame height.
    pub height: usize,
    /// Channels per pixel.
    pub channels: usize,
    /// GOP size the video was encoded with.
    pub gop_size: usize,
    /// Encoded size in bytes.
    pub encoded_bytes: u64,
}

/// One task's planning input.
#[derive(Debug, Clone)]
pub struct PlanInput {
    /// Task index (stable across chunks).
    pub task_id: u32,
    /// The validated task configuration.
    pub config: TaskConfig,
}

/// Planner knobs.
#[derive(Debug, Clone)]
pub struct PlannerOptions {
    /// Global seed for all coordinated draws and shuffles.
    pub seed: u64,
    /// Coordinated randomization on (SAND) or off (independent baseline).
    pub coordinate: bool,
    /// The epoch chunk to plan (`k` epochs).
    pub epochs: Range<u64>,
}

impl Default for PlannerOptions {
    fn default() -> Self {
        PlannerOptions {
            seed: 0x5a4d,
            coordinate: true,
            epochs: 0..1,
        }
    }
}

/// The unified concrete object dependency graph for one epoch chunk.
#[derive(Debug, Clone)]
pub struct ConcreteGraph {
    /// All nodes; tree edges via `parent`/`children`.
    pub nodes: Vec<ConcreteNode>,
    /// Video-root node per video id.
    pub roots: HashMap<u64, NodeId>,
    /// Every planned batch in the chunk.
    pub batches: Vec<BatchRef>,
    /// Merge statistics for the chunk.
    pub stats: MergeStats,
    /// The planned epoch range.
    pub epochs: Range<u64>,
    key_index: HashMap<ObjectKey, NodeId>,
}

impl ConcreteGraph {
    /// Reassembles a graph from checkpointed parts, rebuilding the
    /// root table and key index.
    #[must_use]
    pub fn from_parts(
        nodes: Vec<ConcreteNode>,
        batches: Vec<BatchRef>,
        stats: MergeStats,
        epochs: Range<u64>,
    ) -> Self {
        let mut roots = HashMap::new();
        let mut key_index = HashMap::new();
        for n in &nodes {
            if let ObjectKey::Video { video_id } = n.key {
                roots.insert(video_id, n.id);
            }
            key_index.insert(n.key.clone(), n.id);
        }
        ConcreteGraph {
            nodes,
            roots,
            batches,
            stats,
            epochs,
            key_index,
        }
    }

    /// Looks up a node by object identity.
    #[must_use]
    pub fn node_by_key(&self, key: &ObjectKey) -> Option<NodeId> {
        self.key_index.get(key).copied()
    }

    /// Nodes of one video's subtree (preorder).
    #[must_use]
    pub fn video_subtree(&self, video_id: u64) -> Vec<NodeId> {
        let Some(&root) = self.roots.get(&video_id) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut stack = vec![root];
        while let Some(id) = stack.pop() {
            out.push(id);
            stack.extend(self.nodes[id].children.iter().copied());
        }
        out
    }

    /// Earliest clock at which each node is (transitively) needed.
    ///
    /// A node's deadline is the minimum over its own consumers and its
    /// descendants' consumers; `None` means the node is never consumed in
    /// this chunk (possible only for roots of unused videos).
    #[must_use]
    pub fn deadlines(&self) -> Vec<Option<u64>> {
        let mut dl: Vec<Option<u64>> = self
            .nodes
            .iter()
            .map(|n| n.consumers.iter().map(|c| c.clock).min())
            .collect();
        // Children have larger ids than parents (construction order), so a
        // reverse pass propagates minima upward in one sweep.
        for id in (0..self.nodes.len()).rev() {
            if let Some(parent) = self.nodes[id].parent {
                dl[parent] = match (dl[parent], dl[id]) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                };
            }
        }
        dl
    }

    /// Total size of all currently cached nodes.
    #[must_use]
    pub fn cached_bytes(&self) -> u64 {
        self.nodes
            .iter()
            .filter(|n| n.cached)
            .map(|n| n.size_bytes)
            .sum()
    }

    /// Sum of edge costs of all nodes *not* cached (recompute exposure).
    #[must_use]
    pub fn uncached_cost(&self) -> f64 {
        self.nodes
            .iter()
            .filter(|n| !n.cached)
            .map(|n| n.edge_cost)
            .sum()
    }
}

/// The materialization planner.
#[derive(Debug)]
pub struct Planner {
    tasks: Vec<PlanInput>,
    videos: Vec<VideoMeta>,
    options: PlannerOptions,
    /// Per-task abstract view dependency graphs (the planning blueprints).
    abstract_graphs: Vec<AbstractGraph>,
}

impl Planner {
    /// Creates a planner over tasks and videos.
    ///
    /// Following the paper, planning starts from the per-task *abstract
    /// view dependency graphs*: tasks may only be planned together when
    /// their abstract roots coincide (they read the same dataset) — that
    /// is the first merge criterion, checked here.
    pub fn new(
        tasks: Vec<PlanInput>,
        videos: Vec<VideoMeta>,
        options: PlannerOptions,
    ) -> Result<Self> {
        if tasks.is_empty() {
            return Err(GraphError::InvalidInput {
                what: "no tasks".into(),
            });
        }
        if videos.is_empty() {
            return Err(GraphError::InvalidInput {
                what: "no videos".into(),
            });
        }
        if options.epochs.is_empty() {
            return Err(GraphError::InvalidInput {
                what: "empty epoch range".into(),
            });
        }
        for t in &tasks {
            t.config.validate().map_err(|e| GraphError::InvalidInput {
                what: e.to_string(),
            })?;
        }
        let abstract_graphs: Vec<AbstractGraph> = tasks
            .iter()
            .map(|t| AbstractGraph::from_config(&t.config))
            .collect();
        for g in &abstract_graphs[1..] {
            if !abstract_graphs[0].shares_root(g) {
                return Err(GraphError::InvalidInput {
                    what: format!(
                        "tasks read different datasets (`{}` vs `{}`); plan them separately",
                        abstract_graphs[0].dataset_path, g.dataset_path
                    ),
                });
            }
        }
        Ok(Planner {
            tasks,
            videos,
            options,
            abstract_graphs,
        })
    }

    /// The per-task abstract view dependency graphs.
    #[must_use]
    pub fn abstract_graphs(&self) -> &[AbstractGraph] {
        &self.abstract_graphs
    }

    /// A deterministic per-(task, epoch) shuffle of video order.
    ///
    /// This is the Data Access Rule: every video appears exactly once per
    /// epoch per task, in an epoch-specific random order.
    ///
    /// The shuffle is keyed by the task's *tag*, not its position in the
    /// task vector, so a task's batch composition is invariant under
    /// workload composition: the same task planned alone or alongside
    /// other tasks (e.g. other tenants' in a fleet) draws identical epoch
    /// orders. Fleet-vs-isolated byte parity (`tests/fleet.rs`) rests on
    /// this.
    fn video_order(&self, task_tag: &str, epoch: u64) -> Vec<usize> {
        let n = self.videos.len();
        let mut order: Vec<usize> = (0..n).collect();
        let identity = tag_identity(task_tag);
        // Fisher–Yates driven by coordinated_draw so the shuffle is pure.
        for i in (1..n).rev() {
            let u = coordinated_draw(
                self.options.seed,
                identity.wrapping_mul(0x9249_2492),
                epoch,
                0,
                i as u64,
                0xdead,
            );
            let j = ((u * (i + 1) as f64) as usize).min(i);
            order.swap(i, j);
        }
        order
    }

    /// Builds the concrete graph for the configured epoch chunk.
    pub fn plan(&self) -> Result<ConcreteGraph> {
        let mut graph = ConcreteGraph {
            nodes: Vec::new(),
            roots: HashMap::new(),
            batches: Vec::new(),
            stats: MergeStats::default(),
            epochs: self.options.epochs.clone(),
            key_index: HashMap::new(),
        };
        // Video roots.
        for v in &self.videos {
            let id = graph.nodes.len();
            let key = ObjectKey::Video {
                video_id: v.video_id,
            };
            graph.nodes.push(ConcreteNode {
                id,
                key: key.clone(),
                parent: None,
                children: Vec::new(),
                // The encoded source lives in dataset storage, not the
                // cache; its budget contribution is zero.
                size_bytes: 0,
                edge_cost: 0.0,
                cached: true,
                consumers: Vec::new(),
                dims: (v.width, v.height),
                op: None,
            });
            graph.roots.insert(v.video_id, id);
            graph.key_index.insert(key, id);
        }
        let samplings: Vec<_> = self.tasks.iter().map(|t| t.config.sampling).collect();
        // Iterations per epoch per task (for the global clock).
        let iters_of = |task: &PlanInput| -> u64 {
            let vpb = task.config.sampling.videos_per_batch;
            (self.videos.len() as u64).div_ceil(vpb as u64)
        };
        let max_iters = self.tasks.iter().map(iters_of).max().unwrap_or(1);
        // Shared frame pools: one per video for the whole chunk ("videos
        // are decoded once and cached for exactly k epochs"). Every task,
        // sample, and epoch of the chunk draws its clip inside the pool
        // window, so the chunk's decode work is bounded by the pool size.
        let chunk_id = self.options.epochs.start;
        let mut pools: HashMap<u64, FramePool> = HashMap::new();
        for v in &self.videos {
            let u = coordinated_draw(self.options.seed, v.video_id, chunk_id, 0, 0, 0xf00d);
            pools.insert(v.video_id, FramePool::build(v.frames, &samplings, u)?);
        }
        for epoch in self.options.epochs.clone() {
            for (t_idx, task) in self.tasks.iter().enumerate() {
                let task_id = task.task_id;
                let cfg = &task.config;
                let order = self.video_order(&cfg.tag, epoch);
                let vpb = cfg.sampling.videos_per_batch;
                let iters = iters_of(task);
                let terminal = cfg.terminal_streams();
                for (pos, &vid_idx) in order.iter().enumerate() {
                    let video = &self.videos[vid_idx];
                    let iteration = (pos / vpb) as u64;
                    let clock = epoch * max_iters + iteration;
                    let consumer = Consumer {
                        task: task_id,
                        epoch,
                        iteration,
                        clock,
                    };
                    for sample in 0..cfg.sampling.samples_per_video as u64 {
                        // Temporal coordination (or not).
                        let indices = if self.options.coordinate {
                            // Clip offset inside the chunk pool; the task
                            // id is absent from the key so same-geometry
                            // tasks draw identical clips.
                            let u = coordinated_draw(
                                self.options.seed,
                                video.video_id,
                                epoch,
                                sample,
                                1,
                                0xc11b,
                            );
                            pools[&video.video_id].select(&cfg.sampling, u)
                        } else {
                            // Fresh independent randomness per task and
                            // epoch: a one-off pool anchored anywhere in
                            // the video, like a plain dataloader.
                            let nonce = (u64::from(task_id) + 1) * 0x1234_5678;
                            let ua = coordinated_draw(
                                self.options.seed ^ nonce,
                                video.video_id,
                                epoch,
                                sample,
                                0,
                                0xf00d,
                            );
                            let uo = coordinated_draw(
                                self.options.seed ^ nonce,
                                video.video_id,
                                epoch,
                                sample,
                                1,
                                0xc11b,
                            );
                            let pool = FramePool::build(video.frames, &[cfg.sampling], ua)?;
                            pool.select(&cfg.sampling, uo)
                        };
                        // Spatial coordination (or not).
                        let ctx = DrawCtx {
                            seed: self.options.seed,
                            video_id: video.video_id,
                            epoch,
                            sample,
                            task_nonce: if self.options.coordinate {
                                0
                            } else {
                                (u64::from(task_id) + 1) * 0x9e3779b9
                            },
                        };
                        let chains = resolve::resolve_chains(
                            &cfg.augmentation,
                            &terminal,
                            video.width,
                            video.height,
                            epoch * max_iters + iteration,
                            epoch,
                            &ctx,
                        )?;
                        let mut plans: Vec<SamplePlan> = Vec::with_capacity(chains.len());
                        for (variant, chain) in chains.iter().enumerate() {
                            let normalize = chain.iter().find_map(|op| match op {
                                ResolvedOp::Normalize { mean, std } => {
                                    Some((mean.clone(), std.clone()))
                                }
                                _ => None,
                            });
                            let pixel_chain: Vec<&ResolvedOp> =
                                chain.iter().filter(|o| o.is_pixel_op()).collect();
                            let mut frame_nodes = Vec::with_capacity(indices.len());
                            for &fidx in &indices {
                                let node = self.add_chain_nodes(
                                    &mut graph,
                                    video,
                                    fidx,
                                    &pixel_chain,
                                    consumer,
                                )?;
                                frame_nodes.push(node);
                            }
                            plans.push(SamplePlan {
                                video_id: video.video_id,
                                sample: sample as u32,
                                variant: variant as u32,
                                frame_nodes,
                                frame_indices: indices.clone(),
                                normalize,
                            });
                        }
                        // Attach the slot plans to the batch record.
                        let batch = graph.batches.iter_mut().find(|b| {
                            b.task == task_id && b.epoch == epoch && b.iteration == iteration
                        });
                        match batch {
                            Some(b) => b.samples.extend(plans),
                            None => graph.batches.push(BatchRef {
                                task: task_id,
                                epoch,
                                iteration,
                                clock,
                                samples: plans,
                            }),
                        }
                    }
                }
                debug_assert_eq!(
                    graph
                        .batches
                        .iter()
                        .filter(|b| b.task == task_id && b.epoch == epoch)
                        .count() as u64,
                    iters
                );
                let _ = t_idx;
            }
        }
        // Every batch must stack into one tensor: all its samples'
        // terminal objects must share dimensions. Catch geometry
        // mismatches (e.g. a multi-branch whose arms produce different
        // sizes) here, with a plan-time error instead of a serve failure.
        for b in &graph.batches {
            let mut dims: Option<((usize, usize), usize)> = None;
            for s in &b.samples {
                let Some(&terminal) = s.frame_nodes.last() else {
                    continue;
                };
                let d = (graph.nodes[terminal].dims, s.frame_indices.len());
                match dims {
                    None => dims = Some(d),
                    Some(expected) if expected == d => {}
                    Some(expected) => {
                        return Err(GraphError::ResolveFailed {
                            what: format!(
                                "batch task {} epoch {} iter {} mixes clip shapes \
                                 {expected:?} and {d:?}; all terminal streams of a \
                                 task must produce identical geometry",
                                b.task, b.epoch, b.iteration
                            ),
                        })
                    }
                }
            }
        }
        graph.stats.unique_frames = graph
            .nodes
            .iter()
            .filter(|n| matches!(n.key, ObjectKey::Frame { .. }))
            .count() as u64;
        graph.stats.unique_aug_nodes = graph
            .nodes
            .iter()
            .filter(|n| matches!(n.key, ObjectKey::Aug { .. }))
            .count() as u64;
        // Default caching: the full concrete graph is the starting point
        // ("all objects could potentially be cached" in the paper) —
        // every frame and augmented object is marked cached, and the
        // pruning pass collapses subtrees until the set fits the budget.
        for node in &mut graph.nodes {
            if !matches!(node.key, ObjectKey::Video { .. }) {
                node.cached = true;
            }
        }
        Ok(graph)
    }

    /// Adds (or merges into) the node chain for one frame of one sample,
    /// returning the terminal node id.
    fn add_chain_nodes(
        &self,
        graph: &mut ConcreteGraph,
        video: &VideoMeta,
        frame: usize,
        chain: &[&ResolvedOp],
        consumer: Consumer,
    ) -> Result<NodeId> {
        use sand_frame::cost::units;
        let root = graph.roots[&video.video_id];
        // Frame node.
        let frame_key = ObjectKey::Frame {
            video_id: video.video_id,
            frame,
        };
        graph.stats.decode_requests += 1;
        *graph
            .stats
            .frame_selection
            .entry((video.video_id, frame))
            .or_insert(0) += 1;
        let frame_px = (video.width * video.height * video.channels) as f64;
        let frame_node = match graph.key_index.get(&frame_key) {
            Some(&id) => id,
            None => {
                let id = graph.nodes.len();
                // Cost model: decoding this frame alone costs the GOP run
                // from the previous keyframe.
                let gop_pos = frame % video.gop_size.max(1);
                let cost = frame_px * units::DECODE_I + gop_pos as f64 * frame_px * units::DECODE_P;
                graph.nodes.push(ConcreteNode {
                    id,
                    key: frame_key.clone(),
                    parent: Some(root),
                    children: Vec::new(),
                    size_bytes: frame_px as u64,
                    edge_cost: cost,
                    cached: false,
                    consumers: Vec::new(),
                    dims: (video.width, video.height),
                    op: None,
                });
                graph.nodes[root].children.push(id);
                graph.key_index.insert(frame_key, id);
                id
            }
        };
        // Aug chain nodes.
        let mut parent = frame_node;
        let mut dims = (video.width, video.height);
        let mut acc_chain: Vec<(String, String)> = Vec::new();
        for op in chain {
            acc_chain.push((op.name().to_string(), op.params()));
            graph.stats.aug_requests += 1;
            *graph
                .stats
                .op_requests
                .entry(op.name().to_string())
                .or_insert(0) += 1;
            let key = ObjectKey::Aug {
                video_id: video.video_id,
                frame,
                chain: acc_chain.clone(),
            };
            let (ow, oh) = op.out_dims(dims.0, dims.1);
            parent = match graph.key_index.get(&key) {
                Some(&id) => id,
                None => {
                    let id = graph.nodes.len();
                    *graph
                        .stats
                        .op_unique
                        .entry(op.name().to_string())
                        .or_insert(0) += 1;
                    graph.nodes.push(ConcreteNode {
                        id,
                        key: key.clone(),
                        parent: Some(parent),
                        children: Vec::new(),
                        size_bytes: (ow * oh * video.channels) as u64,
                        edge_cost: op.cost_units(dims.0, dims.1, video.channels),
                        cached: false,
                        consumers: Vec::new(),
                        dims: (ow, oh),
                        op: Some((*op).clone()),
                    });
                    graph.nodes[parent].children.push(id);
                    graph.key_index.insert(key, id);
                    id
                }
            };
            dims = (ow, oh);
        }
        // Record the consumer on the terminal node.
        graph.nodes[parent].consumers.push(consumer);
        Ok(parent)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_config::parse_task_config;

    fn videos(n: usize) -> Vec<VideoMeta> {
        (0..n as u64)
            .map(|video_id| VideoMeta {
                video_id,
                frames: 48,
                width: 32,
                height: 32,
                channels: 3,
                gop_size: 8,
                encoded_bytes: 10_000,
            })
            .collect()
    }

    const TASK_A: &str = r#"
dataset:
  tag: a
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 4
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
    - name: c
      branch_type: single
      inputs: ["a0"]
      outputs: ["a1"]
      config:
        - random_crop:
            shape: [8, 8]
"#;

    fn plan_input(text: &str, task_id: u32) -> PlanInput {
        PlanInput {
            task_id,
            config: parse_task_config(text).unwrap(),
        }
    }

    fn plan(
        tasks: Vec<PlanInput>,
        n_videos: usize,
        epochs: Range<u64>,
        coordinate: bool,
    ) -> ConcreteGraph {
        Planner::new(
            tasks,
            videos(n_videos),
            PlannerOptions {
                seed: 7,
                coordinate,
                epochs,
            },
        )
        .unwrap()
        .plan()
        .unwrap()
    }

    #[test]
    fn every_video_used_once_per_epoch_per_task() {
        let g = plan(vec![plan_input(TASK_A, 0)], 6, 0..2, true);
        for epoch in 0..2 {
            let mut seen: Vec<u64> = g
                .batches
                .iter()
                .filter(|b| b.epoch == epoch)
                .flat_map(|b| b.samples.iter().map(|s| s.video_id))
                .collect();
            seen.sort_unstable();
            assert_eq!(seen, vec![0, 1, 2, 3, 4, 5], "epoch {epoch}");
        }
    }

    #[test]
    fn batch_iteration_sizes_follow_vpb() {
        let g = plan(vec![plan_input(TASK_A, 0)], 6, 0..1, true);
        assert_eq!(g.batches.len(), 3); // 6 videos / vpb 2
        for b in &g.batches {
            assert_eq!(b.samples.len(), 2);
            for s in &b.samples {
                assert_eq!(s.frame_nodes.len(), 4);
                assert_eq!(s.frame_indices.len(), 4);
            }
        }
    }

    #[test]
    fn two_identical_tasks_share_everything_when_coordinated() {
        let g = plan(
            vec![plan_input(TASK_A, 0), plan_input(TASK_A, 1)],
            4,
            0..1,
            true,
        );
        // All decode and aug work is shared: reduction = 50%.
        assert!(
            (g.stats.decode_reduction() - 0.5).abs() < 1e-9,
            "{:?}",
            g.stats.decode_reduction()
        );
        assert!((g.stats.op_reduction("crop") - 0.5).abs() < 1e-9);
        assert!((g.stats.op_reduction("resize") - 0.5).abs() < 1e-9);
    }

    #[test]
    fn independent_tasks_share_almost_nothing() {
        let g = plan(
            vec![plan_input(TASK_A, 0), plan_input(TASK_A, 1)],
            4,
            0..1,
            false,
        );
        // Anchors differ per task with high probability, so reduction is
        // far below the coordinated 50%.
        assert!(
            g.stats.decode_reduction() < 0.3,
            "{}",
            g.stats.decode_reduction()
        );
    }

    #[test]
    fn chunk_pool_bounds_unique_frames_and_chunks_differ() {
        // Within one chunk, every epoch draws from the same per-video
        // pool: unique frames are bounded by the pool span, not by
        // epochs x clip size.
        let g = plan(vec![plan_input(TASK_A, 0)], 2, 0..4, true);
        // TASK_A: fpv 4, stride 4 -> span 13; videos have 48 frames.
        // Pool grid = stride 4 -> at most 4 pool slots per video.
        assert!(
            g.stats.unique_frames <= 2 * 13,
            "unique frames {} exceed pool bound",
            g.stats.unique_frames
        );
        // Epochs inside the chunk still vary their clips: with 4 epochs,
        // more unique frames than a single epoch needs (very likely).
        assert!(g.stats.unique_frames >= 2 * 4);
        // Different chunks draw different pools (very likely).
        let c0 = plan(vec![plan_input(TASK_A, 0)], 2, 0..1, true);
        let c1 = plan(vec![plan_input(TASK_A, 0)], 2, 1..2, true);
        let f0: Vec<_> = c0.stats.frame_selection.keys().collect();
        let overlap = c1
            .stats
            .frame_selection
            .keys()
            .filter(|k| f0.contains(k))
            .count();
        assert!(
            overlap < c1.stats.frame_selection.len(),
            "chunk pools should differ"
        );
    }

    #[test]
    fn tree_structure_is_consistent() {
        let g = plan(vec![plan_input(TASK_A, 0)], 3, 0..1, true);
        for n in &g.nodes {
            if let Some(p) = n.parent {
                assert!(g.nodes[p].children.contains(&n.id));
                assert!(p < n.id, "parents precede children");
            } else {
                assert!(matches!(n.key, ObjectKey::Video { .. }));
            }
        }
        // Aug chain: crop node's parent is resize node, whose parent is a
        // frame node, whose parent is the root.
        let crop = g
            .nodes
            .iter()
            .find(|n| matches!(&n.key, ObjectKey::Aug { chain, .. } if chain.len() == 2))
            .expect("crop node");
        let resize = crop.parent.unwrap();
        assert!(matches!(&g.nodes[resize].key, ObjectKey::Aug { chain, .. } if chain.len() == 1));
        let frame = g.nodes[resize].parent.unwrap();
        assert!(matches!(g.nodes[frame].key, ObjectKey::Frame { .. }));
    }

    #[test]
    fn deadlines_propagate_to_ancestors() {
        let g = plan(vec![plan_input(TASK_A, 0)], 4, 0..1, true);
        let dl = g.deadlines();
        for n in &g.nodes {
            if let Some(p) = n.parent {
                match (dl[p], dl[n.id]) {
                    (Some(a), Some(b)) => assert!(a <= b, "parent deadline after child"),
                    (None, Some(_)) => panic!("child has deadline but parent none"),
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn consumers_recorded_on_terminals() {
        let g = plan(vec![plan_input(TASK_A, 0)], 2, 0..1, true);
        for b in &g.batches {
            for s in &b.samples {
                for &node in &s.frame_nodes {
                    assert!(g.nodes[node]
                        .consumers
                        .iter()
                        .any(|c| c.task == b.task && c.iteration == b.iteration));
                }
            }
        }
    }

    #[test]
    fn all_objects_cached_by_default() {
        let g = plan(vec![plan_input(TASK_A, 0)], 2, 0..1, true);
        for n in &g.nodes {
            if matches!(n.key, ObjectKey::Video { .. }) {
                assert!(n.cached, "source roots count as (free) cached");
            } else {
                assert!(n.cached, "node {} must start cached", n.id);
            }
        }
        assert!(g.cached_bytes() > 0);
    }

    #[test]
    fn video_order_changes_across_epochs_and_tasks() {
        let p = Planner::new(
            vec![plan_input(TASK_A, 0), plan_input(TASK_A, 1)],
            videos(16),
            PlannerOptions::default(),
        )
        .unwrap();
        assert_ne!(p.video_order("a", 0), p.video_order("a", 1));
        assert_ne!(p.video_order("a", 0), p.video_order("b", 0));
        assert_eq!(p.video_order("a", 0), p.video_order("a", 0));
        // Identity follows the tag, not the task's position in the task
        // vector: planning the same tag in any workload draws the same
        // epoch order (fleet parity rests on this).
        assert_eq!(p.video_order("a", 3), p.video_order("a", 3));
    }

    #[test]
    fn frame_selection_counts_cover_requests() {
        let g = plan(vec![plan_input(TASK_A, 0)], 2, 0..3, true);
        let total: u64 = g
            .stats
            .frame_selection
            .values()
            .map(|&c| u64::from(c))
            .sum();
        assert_eq!(total, g.stats.decode_requests);
        // With coordination a single task still requests each frame once
        // per epoch at most... but across epochs overlaps can occur.
        assert!(g.stats.selected_at_least(1) > 0.99);
    }

    #[test]
    fn tasks_over_different_datasets_rejected() {
        let mut other = parse_task_config(TASK_A).unwrap();
        other.tag = "b".into();
        other.video_dataset_path = "/elsewhere".into();
        let err = Planner::new(
            vec![
                PlanInput {
                    task_id: 0,
                    config: parse_task_config(TASK_A).unwrap(),
                },
                PlanInput {
                    task_id: 1,
                    config: other,
                },
            ],
            videos(2),
            PlannerOptions::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("different datasets"), "{err}");
    }

    #[test]
    fn abstract_graphs_exposed() {
        let p = Planner::new(
            vec![plan_input(TASK_A, 0)],
            videos(2),
            PlannerOptions::default(),
        )
        .unwrap();
        assert_eq!(p.abstract_graphs().len(), 1);
        assert_eq!(p.abstract_graphs()[0].dataset_path, "/d");
    }

    #[test]
    fn empty_inputs_rejected() {
        assert!(Planner::new(vec![], videos(1), PlannerOptions::default()).is_err());
        assert!(Planner::new(
            vec![plan_input(TASK_A, 0)],
            vec![],
            PlannerOptions::default()
        )
        .is_err());
        assert!(Planner::new(
            vec![plan_input(TASK_A, 0)],
            videos(1),
            PlannerOptions {
                epochs: 3..3,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn video_subtree_collects_whole_tree() {
        let g = plan(vec![plan_input(TASK_A, 0)], 3, 0..1, true);
        let mut all: Vec<NodeId> = (0..g.nodes.len()).collect();
        let mut collected: Vec<NodeId> = (0..3u64).flat_map(|v| g.video_subtree(v)).collect();
        all.sort_unstable();
        collected.sort_unstable();
        assert_eq!(all, collected);
    }

    #[test]
    fn mixed_variant_geometry_rejected_at_plan_time() {
        let text = r#"
dataset:
  tag: bad
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 4
  augmentation:
    - name: split
      branch_type: multi
      inputs: ["frame"]
      outputs: ["x", "y"]
      branches:
        - config:
            - resize:
                shape: [16, 16]
        - config:
            - resize:
                shape: [8, 8]
"#;
        let err = Planner::new(
            vec![plan_input(text, 0)],
            videos(2),
            PlannerOptions::default(),
        )
        .unwrap()
        .plan()
        .unwrap_err();
        assert!(err.to_string().contains("identical geometry"), "{err}");
    }

    #[test]
    fn samples_per_video_multiplies_slots() {
        let text = TASK_A.replace(
            "frame_stride: 4",
            "frame_stride: 4\n    samples_per_video: 3",
        );
        let g = plan(vec![plan_input(&text, 0)], 2, 0..1, true);
        assert_eq!(g.batches.len(), 1);
        assert_eq!(g.batches[0].samples.len(), 2 * 3);
    }
}
