//! View dependency graphs and materialization planning for SAND.
//!
//! This crate implements the paper's Section 5.2–5.3 machinery:
//!
//! - [`abstract_graph`]: the per-task *abstract view dependency graph*, a
//!   small template derived from a task configuration whose nodes are view
//!   *types* (video → frame → augmented frame → batch) and whose edges are
//!   operations,
//! - [`pool`]: the *shared frame pool* that coordinates temporal
//!   randomness across tasks (GCD sampling grid, shared clip anchors),
//! - [`resolve`]: resolution of configured (possibly stochastic)
//!   augmentations into deterministic op chains using *coordinated draws*,
//!   so tasks with identical configurations produce byte-identical — and
//!   therefore shareable — intermediate objects while every task's marginal
//!   randomness stays intact,
//! - [`concrete`]: the epoch-chunked *concrete object dependency graph*
//!   that unifies all tasks' plans, merges identical object nodes, and
//!   reports the merge statistics behind Fig. 16/19,
//! - [`prune`]: Algorithm 1 — greedy subtree collapse trading recompute
//!   cost for storage until the cached set fits the budget.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod abstract_graph;
pub mod checkpoint;
pub mod concrete;
pub mod pool;
pub mod prune;
pub mod resolve;

pub use abstract_graph::{AbstractEdge, AbstractGraph, AbstractNode, AbstractOp, ViewType};
pub use concrete::{
    BatchRef, ConcreteGraph, ConcreteNode, MergeStats, NodeId, ObjectKey, PlanInput, Planner,
    PlannerOptions, SamplePlan, VideoMeta,
};
pub use pool::FramePool;
pub use prune::{prune_to_budget, PruneOutcome};
pub use resolve::{coordinated_draw, ResolvedOp};

use std::fmt;

/// Errors produced during planning.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphError {
    /// Planning input was inconsistent.
    InvalidInput {
        /// Human-readable description.
        what: String,
    },
    /// A video is too short for the requested clip geometry.
    ClipTooLong {
        /// The video's frame count.
        video_frames: usize,
        /// Frames the clip span requires.
        needed: usize,
    },
    /// Augmentation resolution failed (bad geometry or branch).
    ResolveFailed {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InvalidInput { what } => write!(f, "invalid planning input: {what}"),
            GraphError::ClipTooLong {
                video_frames,
                needed,
            } => {
                write!(f, "clip needs {needed} frames but video has {video_frames}")
            }
            GraphError::ResolveFailed { what } => write!(f, "augmentation resolution: {what}"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, GraphError>;
