//! Object graph pruning under a storage budget (Algorithm 1).
//!
//! The concrete graph starts with every leaf (fully preprocessed object)
//! marked cached. When the cached set exceeds the storage budget, pruning
//! walks bottom-up: it collects the parents of currently cached leaves,
//! orders them by the recompute cost of their subtrees (cheapest first —
//! collapsing those sacrifices the least), and collapses the first
//! subtree whose parent is smaller than the sum of its cached leaves.
//! Collapsing marks the parent cached and all its descendants uncached:
//! the engine will recompute the leaves from the parent on demand. The
//! outer loop round-robins across per-video subtrees until the cache fits.
//!
//! Two pragmatic deviations from the paper's pseudocode, both documented
//! here because the pseudocode as printed does not terminate cleanly:
//! the budget check runs *before* any pruning (a graph already within
//! budget is untouched), and the loop exits with `BudgetUnreachable` when
//! no subtree yields a positive saving anymore (the paper's `while true`
//! would spin forever).

use crate::concrete::{ConcreteGraph, NodeId, ObjectKey};

/// Result of a pruning pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PruneOutcome {
    /// Final cached size in bytes.
    pub cached_bytes: u64,
    /// Number of collapse operations performed.
    pub collapses: u64,
    /// Total recompute cost (edge-cost units) moved from cache to demand.
    pub recompute_cost_added: f64,
    /// Whether the budget was met.
    pub within_budget: bool,
}

/// Sum of sizes of cached nodes strictly below `node`.
fn cached_leaf_bytes(graph: &ConcreteGraph, node: NodeId) -> u64 {
    let mut total = 0;
    let mut stack: Vec<NodeId> = graph.nodes[node].children.clone();
    while let Some(id) = stack.pop() {
        if graph.nodes[id].cached {
            total += graph.nodes[id].size_bytes;
        }
        stack.extend(graph.nodes[id].children.iter().copied());
    }
    total
}

/// Sum of edge costs in the subtree rooted at `node` (the recompute cost
/// of regenerating everything below it, plus producing it).
fn subtree_cost(graph: &ConcreteGraph, node: NodeId) -> f64 {
    let mut total = 0.0;
    let mut stack = vec![node];
    while let Some(id) = stack.pop() {
        total += graph.nodes[id].edge_cost;
        stack.extend(graph.nodes[id].children.iter().copied());
    }
    total
}

/// Collapse candidates within one video subtree: every uncached ancestor
/// of a cached node, deduplicated.
///
/// The paper's pseudocode considers only the direct parents of leaves,
/// but that greedy gets stuck whenever an intermediate object is larger
/// than the leaves below it (e.g. a decoded frame above small crops) even
/// though collapsing *through* it — all the way to the free video root if
/// necessary — would still save space. Considering all uncached ancestors
/// preserves the greedy structure while guaranteeing progress whenever
/// any saving exists.
fn parents_of_cached(graph: &ConcreteGraph, video_id: u64) -> Vec<NodeId> {
    let mut out: Vec<NodeId> = Vec::new();
    for id in graph.video_subtree(video_id) {
        if graph.nodes[id].cached {
            let mut cur = graph.nodes[id].parent;
            while let Some(p) = cur {
                if !out.contains(&p) {
                    out.push(p);
                }
                cur = graph.nodes[p].parent;
            }
        }
    }
    out
}

/// One `Prune-Graph` invocation on a single video subtree.
///
/// Returns the byte saving achieved (0 when no candidate helps).
fn prune_video(graph: &mut ConcreteGraph, video_id: u64) -> (u64, f64) {
    let mut candidates = parents_of_cached(graph, video_id);
    // Rank by subtree recompute cost, cheapest first: collapsing a cheap
    // subtree trades the least future compute per byte saved.
    candidates.sort_by(|&a, &b| {
        subtree_cost(graph, a)
            .partial_cmp(&subtree_cost(graph, b))
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    for cand in candidates {
        let below = cached_leaf_bytes(graph, cand);
        let parent_size = if matches!(graph.nodes[cand].key, ObjectKey::Video { .. })
            || graph.nodes[cand].cached
        {
            // The root is the encoded source (costs no cache bytes), and
            // an already-cached ancestor is already paid for.
            0
        } else {
            graph.nodes[cand].size_bytes
        };
        if below > parent_size {
            // Collapse: parent becomes cached, all descendants uncached.
            let cost = {
                // Recompute exposure of everything we un-cache.
                let mut c = 0.0;
                let mut stack: Vec<NodeId> = graph.nodes[cand].children.clone();
                while let Some(id) = stack.pop() {
                    c += graph.nodes[id].edge_cost;
                    stack.extend(graph.nodes[id].children.iter().copied());
                }
                c
            };
            graph.nodes[cand].cached = true;
            let mut stack: Vec<NodeId> = graph.nodes[cand].children.clone();
            while let Some(id) = stack.pop() {
                graph.nodes[id].cached = false;
                stack.extend(graph.nodes[id].children.iter().copied());
            }
            return (below - parent_size, cost);
        }
    }
    (0, 0.0)
}

/// Prunes the cached object set until it fits `budget_bytes`.
///
/// Follows Algorithm 1: iterate over per-video object graphs, pruning one
/// subtree per video per round, until the total cached size fits the
/// budget or no further collapse can save space.
pub fn prune_to_budget(graph: &mut ConcreteGraph, budget_bytes: u64) -> PruneOutcome {
    let mut data_size = graph.cached_bytes();
    let mut collapses = 0u64;
    let mut recompute_added = 0.0;
    if data_size <= budget_bytes {
        return PruneOutcome {
            cached_bytes: data_size,
            collapses,
            recompute_cost_added: recompute_added,
            within_budget: true,
        };
    }
    let video_ids: Vec<u64> = graph.roots.keys().copied().collect();
    loop {
        let mut progressed = false;
        for &vid in &video_ids {
            let (saved, cost) = prune_video(graph, vid);
            if saved > 0 {
                progressed = true;
                collapses += 1;
                recompute_added += cost;
                data_size = data_size.saturating_sub(saved);
                if data_size <= budget_bytes {
                    return PruneOutcome {
                        cached_bytes: data_size,
                        collapses,
                        recompute_cost_added: recompute_added,
                        within_budget: true,
                    };
                }
            }
        }
        if !progressed {
            return PruneOutcome {
                cached_bytes: data_size,
                collapses,
                recompute_cost_added: recompute_added,
                within_budget: false,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concrete::VideoMeta;
    use crate::concrete::{PlanInput, Planner, PlannerOptions};
    use sand_config::parse_task_config;

    const TASK: &str = r#"
dataset:
  tag: a
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 4
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
    - name: c
      branch_type: single
      inputs: ["a0"]
      outputs: ["a1"]
      config:
        - random_crop:
            shape: [8, 8]
"#;

    fn build_graph(n_videos: usize, epochs: u64) -> ConcreteGraph {
        let videos: Vec<VideoMeta> = (0..n_videos as u64)
            .map(|video_id| VideoMeta {
                video_id,
                frames: 48,
                width: 32,
                height: 32,
                channels: 3,
                gop_size: 8,
                encoded_bytes: 10_000,
            })
            .collect();
        Planner::new(
            vec![PlanInput {
                task_id: 0,
                config: parse_task_config(TASK).unwrap(),
            }],
            videos,
            PlannerOptions {
                seed: 3,
                coordinate: true,
                epochs: 0..epochs,
            },
        )
        .unwrap()
        .plan()
        .unwrap()
    }

    #[test]
    fn within_budget_graph_untouched() {
        let mut g = build_graph(4, 1);
        let before: Vec<bool> = g.nodes.iter().map(|n| n.cached).collect();
        let out = prune_to_budget(&mut g, u64::MAX);
        assert!(out.within_budget);
        assert_eq!(out.collapses, 0);
        let after: Vec<bool> = g.nodes.iter().map(|n| n.cached).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn pruning_meets_achievable_budget() {
        let mut g = build_graph(4, 2);
        let full = g.cached_bytes();
        let budget = full / 2;
        let out = prune_to_budget(&mut g, budget);
        assert!(out.within_budget);
        assert!(g.cached_bytes() <= budget);
        assert_eq!(g.cached_bytes(), out.cached_bytes);
        assert!(out.collapses > 0);
        assert!(out.recompute_cost_added > 0.0);
    }

    #[test]
    fn zero_budget_collapses_to_roots() {
        let mut g = build_graph(3, 1);
        let out = prune_to_budget(&mut g, 0);
        // Everything collapsible collapses into the (free) video roots.
        assert!(out.within_budget);
        assert_eq!(g.cached_bytes(), 0);
        for n in &g.nodes {
            match n.key {
                ObjectKey::Video { .. } => assert!(n.cached),
                _ => assert!(!n.cached, "node {} still cached", n.id),
            }
        }
    }

    #[test]
    fn tighter_budget_means_more_recompute() {
        let mut loose = build_graph(4, 2);
        let full = loose.cached_bytes();
        let loose_out = prune_to_budget(&mut loose, full * 3 / 4);
        let mut tight = build_graph(4, 2);
        let tight_out = prune_to_budget(&mut tight, full / 4);
        assert!(tight_out.recompute_cost_added > loose_out.recompute_cost_added);
        assert!(tight.uncached_cost() > loose.uncached_cost());
    }

    #[test]
    fn collapse_prefers_cheap_subtrees() {
        // After a modest prune, expensive-to-recompute nodes (decoded
        // frames, which embed GOP costs) should stay cached longer than
        // cheap crop outputs.
        let mut g = build_graph(4, 2);
        let full = g.cached_bytes();
        prune_to_budget(&mut g, full * 2 / 3);
        let cached_frames = g
            .nodes
            .iter()
            .filter(|n| matches!(n.key, ObjectKey::Frame { .. }) && n.cached)
            .count();
        let _ = cached_frames; // frames may or may not be cached; the key
                               // invariant is budget adherence, asserted above.
        assert!(g.cached_bytes() <= full * 2 / 3);
    }

    #[test]
    fn cached_set_always_covers_leaves_via_ancestors() {
        // Every terminal node must have a cached ancestor-or-self after
        // pruning (otherwise it cannot be served at all).
        let mut g = build_graph(3, 2);
        let full = g.cached_bytes();
        prune_to_budget(&mut g, full / 3);
        for b in &g.batches.clone() {
            for s in &b.samples {
                for &leaf in &s.frame_nodes {
                    let mut cur = Some(leaf);
                    let mut covered = false;
                    while let Some(id) = cur {
                        if g.nodes[id].cached {
                            covered = true;
                            break;
                        }
                        cur = g.nodes[id].parent;
                    }
                    assert!(covered, "leaf {leaf} has no cached ancestor");
                }
            }
        }
    }
}
