//! # sand-autotune — the closed-loop adaptive control plane
//!
//! Every performance knob the engine has grown (`prefetch_depth`,
//! `aug_threads`/`decode_threads`, `demand_slack`) is static
//! configuration that must be hand-tuned per host. This crate closes the
//! loop: a [`Controller`] periodically reads the telemetry registry's
//! [`Snapshot`](sand_telemetry::Snapshot) and retunes those knobs online
//! so the engine runs at the speed the *current* hardware and workload
//! allow, not the speed somebody profiled in advance.
//!
//! Three layers, each independently testable:
//!
//! - [`Signals`] — pure derivation of rates and deltas from two
//!   successive snapshots (prefetch outcome pressure, per-stage stall
//!   shares, queue-depth trend, store budget headroom). No engine types,
//!   no clocks: snapshots in, numbers out.
//! - [`HysteresisPolicy`] — a per-knob state machine with a dead band
//!   (`raise_above`/`lower_below` thresholds), cooldown ticks between
//!   moves, and hard min/max clamps. Policies emit [`Decision`]s, never
//!   touch the engine directly.
//! - [`Controller`] — maps signals to per-policy drives (with vetoes
//!   such as "never raise prefetch depth while the store has no budget
//!   headroom"), collects decisions, and tracks direction reversals so
//!   oscillation is observable.
//!
//! The engine owns actuation: it applies each tick's
//! [`KnobValues`] through its runtime setters and exports the decisions
//! as `autotune.*` metrics plus a decision log in the stall report.
//!
//! ## Bit-identity
//!
//! Every knob this controller drives is a *scheduling* knob: none of
//! them participate in what bytes a batch contains (each is individually
//! parity-pinned by the engine's property tests). Therefore any schedule
//! of decisions the controller can emit is parity-safe by construction —
//! re-verified end to end by `prop_autotune_knob_schedule_parity` in
//! `sand-core`.

mod controller;
mod policy;
mod signal;

pub use controller::{Controller, KnobValues};
pub use policy::{Decision, HysteresisPolicy, Knob, PolicyConfig, Pull};
pub use signal::{SignalDeriver, Signals};

/// Configuration for the adaptive controller, carried by
/// `EngineConfig::autotune`. `None` there means no controller, no
/// background thread, and zero overhead (pinned by the
/// `autotune_overhead` bench).
#[derive(Clone, Debug)]
pub struct AutotuneConfig {
    /// Background control-tick interval in milliseconds. `0` spawns no
    /// thread: ticks happen only through explicit `autotune_tick` calls,
    /// which is what the deterministic tests and the example use.
    pub interval_ms: u64,
    /// Store memory-budget headroom fraction (0..1) below which the
    /// prefetch-depth policy refuses to raise and prefers to lower.
    pub headroom_floor: f64,
    /// Policy for `prefetch_depth` (raise while late/miss dominate and
    /// headroom allows; lower on cancellation churn or back-pressure).
    pub prefetch_depth: PolicyConfig,
    /// Policy for the scheduler's bounded-EDF `demand_slack` window
    /// (raise while pinned demand picks miss their preferred worker).
    pub demand_slack: PolicyConfig,
    /// Policy for the `aug_threads` side of the aug/decode worker split
    /// (shift workers toward the stage owning the larger stall share).
    pub thread_split: PolicyConfig,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        AutotuneConfig {
            interval_ms: 0,
            headroom_floor: 0.15,
            prefetch_depth: PolicyConfig {
                min: 0,
                max: 8,
                step: 1,
                raise_above: 0.25,
                lower_below: 0.05,
                cooldown_ticks: 2,
            },
            demand_slack: PolicyConfig {
                min: 0,
                max: 64,
                step: 4,
                raise_above: 0.5,
                lower_below: 0.1,
                cooldown_ticks: 2,
            },
            thread_split: PolicyConfig {
                min: 1,
                max: 8,
                step: 1,
                raise_above: 0.2,
                lower_below: -0.2,
                cooldown_ticks: 2,
            },
        }
    }
}

impl AutotuneConfig {
    /// The per-knob clamp ranges, in a shape the lint pass can consume
    /// (SL035 denies empty or inverted ranges).
    #[must_use]
    pub fn clamps(&self) -> Vec<(&'static str, u64, u64)> {
        vec![
            (
                Knob::PrefetchDepth.name(),
                self.prefetch_depth.min,
                self.prefetch_depth.max,
            ),
            (
                Knob::DemandSlack.name(),
                self.demand_slack.min,
                self.demand_slack.max,
            ),
            (
                Knob::AugThreads.name(),
                self.thread_split.min,
                self.thread_split.max,
            ),
        ]
    }
}
