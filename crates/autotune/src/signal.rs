//! Deriving control signals from successive registry snapshots.
//!
//! The registry exports monotone counters and histogram totals; a
//! controller needs *rates over the last window*. [`Signals::derive`]
//! subtracts two snapshots and normalizes the deltas into the handful of
//! dimensionless quantities the policies consume. The derivation is
//! pure (no clocks, no engine types), so simulated tests can fabricate
//! snapshots — or skip this layer entirely and hand the controller
//! ready-made [`Signals`].

use sand_telemetry::Snapshot;

/// Rates and deltas over the window between two snapshots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Signals {
    /// Share of prefetch outcomes settled this window that were late or
    /// miss (0.0 when nothing settled). High pressure means the window
    /// is too shallow: consumers keep outrunning the speculative builds.
    pub prefetch_pressure: f64,
    /// Prefetch outcomes settled this window (`hit + late + miss`).
    pub prefetch_settled: u64,
    /// Prefetch entries cancelled this window (chunk rollover or
    /// shrink-to-zero churn): evidence the window is wastefully deep.
    pub prefetch_cancelled: u64,
    /// Store memory-budget headroom fraction in `[0, 1]`; `1.0` when
    /// the store publishes no usage gauges (headroom unknown = ample).
    pub store_headroom: f64,
    /// Scheduler queue depth at the newer snapshot.
    pub queue_depth: i64,
    /// Queue depth change across the window (positive = building up).
    pub queue_trend: i64,
    /// Share of pinned demand picks this window that missed their
    /// preferred worker (the slack window was too tight to wait).
    pub demand_affinity_miss_ratio: f64,
    /// Pinned demand picks this window (`hits + misses`).
    pub demand_picks: u64,
    /// Share of attributed stage time this window spent decoding.
    pub decode_stall_share: f64,
    /// Share of attributed stage time this window spent in aug ops.
    pub aug_stall_share: f64,
    /// Share of attributed stage time this window spent on store disk
    /// I/O.
    pub store_stall_share: f64,
}

fn counter_delta(prev: &Snapshot, cur: &Snapshot, name: &str) -> u64 {
    cur.counter(name)
        .unwrap_or(0)
        .saturating_sub(prev.counter(name).unwrap_or(0))
}

fn hist_sum_delta(prev: &Snapshot, cur: &Snapshot, name: &str) -> u64 {
    let sum = |s: &Snapshot| s.histogram(name).map_or(0, |h| h.sum);
    sum(cur).saturating_sub(sum(prev))
}

fn ratio(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64
    }
}

impl Signals {
    /// Derives the window signals from two successive snapshots
    /// (`prev` older, `cur` newer). Missing metrics read as zero, so a
    /// partially-instrumented engine yields neutral signals rather than
    /// errors.
    #[must_use]
    pub fn derive(prev: &Snapshot, cur: &Snapshot) -> Signals {
        let hit = counter_delta(prev, cur, "prefetch.hit");
        let late = counter_delta(prev, cur, "prefetch.late");
        let miss = counter_delta(prev, cur, "prefetch.miss");
        let settled = hit + late + miss;

        let store_headroom = match (cur.gauge("store.mem_bytes"), cur.gauge("store.mem_budget")) {
            (Some(bytes), Some(budget)) if budget > 0 => {
                (1.0 - bytes as f64 / budget as f64).clamp(0.0, 1.0)
            }
            _ => 1.0,
        };

        let depth_now = cur.gauge("sched.queue_depth").unwrap_or(0);
        let depth_prev = prev.gauge("sched.queue_depth").unwrap_or(0);

        let affinity_hits = counter_delta(prev, cur, "sched.demand_affinity_hits");
        let affinity_misses = counter_delta(prev, cur, "sched.demand_affinity_misses");
        let picks = affinity_hits + affinity_misses;

        // Stage time attribution: demand decode is tracked by the
        // engine, predecode by the codec's per-segment histogram.
        let decode_us = hist_sum_delta(prev, cur, "decode.segment_us")
            + hist_sum_delta(prev, cur, "engine.demand_decode_us");
        let aug_us = hist_sum_delta(prev, cur, "aug.op_us");
        let store_us = hist_sum_delta(prev, cur, "store.disk_read_us")
            + hist_sum_delta(prev, cur, "store.disk_write_us");
        let total_us = decode_us + aug_us + store_us;

        Signals {
            prefetch_pressure: ratio(late + miss, settled),
            prefetch_settled: settled,
            prefetch_cancelled: counter_delta(prev, cur, "prefetch.cancelled"),
            store_headroom,
            queue_depth: depth_now,
            queue_trend: depth_now - depth_prev,
            demand_affinity_miss_ratio: ratio(affinity_misses, picks),
            demand_picks: picks,
            decode_stall_share: ratio(decode_us, total_us),
            aug_stall_share: ratio(aug_us, total_us),
            store_stall_share: ratio(store_us, total_us),
        }
    }
}

/// Holds the previous snapshot between control ticks.
#[derive(Debug, Default)]
pub struct SignalDeriver {
    prev: Option<Snapshot>,
}

impl SignalDeriver {
    /// Creates a deriver with no history.
    #[must_use]
    pub fn new() -> Self {
        SignalDeriver::default()
    }

    /// Feeds the next snapshot. The first call only establishes the
    /// baseline and returns `None` (an observe-only tick); every later
    /// call returns the signals for the window since the previous one.
    pub fn advance(&mut self, cur: &Snapshot) -> Option<Signals> {
        let signals = self.prev.as_ref().map(|prev| Signals::derive(prev, cur));
        self.prev = Some(cur.clone());
        signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_telemetry::Registry;

    #[test]
    fn derives_prefetch_pressure_from_counter_deltas() {
        let r = Registry::new();
        r.counter("prefetch.hit").add(10);
        r.counter("prefetch.late").add(0);
        r.counter("prefetch.miss").add(0);
        let prev = r.snapshot();
        r.counter("prefetch.hit").add(2);
        r.counter("prefetch.late").add(3);
        r.counter("prefetch.miss").add(3);
        let s = Signals::derive(&prev, &r.snapshot());
        assert_eq!(s.prefetch_settled, 8);
        assert!((s.prefetch_pressure - 0.75).abs() < 1e-9);
        assert_eq!(s.prefetch_cancelled, 0);
    }

    #[test]
    fn headroom_reads_store_gauges_and_defaults_to_ample() {
        let r = Registry::new();
        let empty = r.snapshot();
        let s = Signals::derive(&empty, &empty);
        assert!((s.store_headroom - 1.0).abs() < 1e-9, "no gauges = ample");
        r.gauge("store.mem_bytes").set(750);
        r.gauge("store.mem_budget").set(1000);
        let s = Signals::derive(&empty, &r.snapshot());
        assert!((s.store_headroom - 0.25).abs() < 1e-9);
    }

    #[test]
    fn stage_shares_partition_attributed_time() {
        let r = Registry::new();
        let prev = r.snapshot();
        r.histogram("decode.segment_us", &[10]).observe(600);
        r.histogram("aug.op_us", &[10]).observe(300);
        r.histogram("store.disk_read_us", &[10]).observe(100);
        let s = Signals::derive(&prev, &r.snapshot());
        assert!((s.decode_stall_share - 0.6).abs() < 1e-9);
        assert!((s.aug_stall_share - 0.3).abs() < 1e-9);
        assert!((s.store_stall_share - 0.1).abs() < 1e-9);
        let total = s.decode_stall_share + s.aug_stall_share + s.store_stall_share;
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn queue_trend_and_affinity_misses() {
        let r = Registry::new();
        r.gauge("sched.queue_depth").set(2);
        r.counter("sched.demand_affinity_hits").add(1);
        let prev = r.snapshot();
        r.gauge("sched.queue_depth").set(7);
        r.counter("sched.demand_affinity_hits").add(1);
        r.counter("sched.demand_affinity_misses").add(3);
        let s = Signals::derive(&prev, &r.snapshot());
        assert_eq!(s.queue_depth, 7);
        assert_eq!(s.queue_trend, 5);
        assert_eq!(s.demand_picks, 4);
        assert!((s.demand_affinity_miss_ratio - 0.75).abs() < 1e-9);
    }

    #[test]
    fn deriver_first_tick_is_observe_only() {
        let r = Registry::new();
        let mut d = SignalDeriver::new();
        assert!(d.advance(&r.snapshot()).is_none(), "baseline tick");
        r.counter("prefetch.miss").add(4);
        let s = d.advance(&r.snapshot()).expect("second tick has a window");
        assert_eq!(s.prefetch_settled, 4);
        assert!((s.prefetch_pressure - 1.0).abs() < 1e-9);
    }
}
