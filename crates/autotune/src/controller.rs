//! The controller: signals in, knob decisions out.
//!
//! Each tick maps the window's [`Signals`] onto a [`Pull`] per policy
//! (with safety vetoes applied before the policy ever sees the drive),
//! advances the three hysteresis state machines, and returns whatever
//! decisions they committed. The engine applies the resulting
//! [`KnobValues`] through its runtime setters; the controller itself
//! never touches engine state, which is what makes the simulated-signal
//! tests exact.

use crate::policy::{Decision, HysteresisPolicy, Knob, Pull};
use crate::signal::{SignalDeriver, Signals};
use crate::AutotuneConfig;
use sand_telemetry::Snapshot;

/// Cap on the retained decision history (oldest dropped first).
const DECISION_LOG_CAP: usize = 1024;

/// The engine knob levels the controller currently wants in effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KnobValues {
    /// Prefetcher look-ahead window.
    pub prefetch_depth: u64,
    /// Scheduler bounded-EDF demand slack (µs).
    pub demand_slack: u64,
    /// Materialize (augmentation) fan-out.
    pub aug_threads: u64,
    /// Demand-decode fan-out; always `split_total - aug_threads`, so the
    /// split policy *shifts* workers between the stages rather than
    /// growing the pool.
    pub decode_threads: u64,
}

/// Closed-loop controller over the three engine knob policies.
pub struct Controller {
    config: AutotuneConfig,
    deriver: SignalDeriver,
    prefetch: HysteresisPolicy,
    slack: HysteresisPolicy,
    /// Drives `aug_threads`; `decode_threads` is the complement within
    /// `split_total`.
    split: HysteresisPolicy,
    /// Combined aug + decode worker count fixed at construction; the
    /// split policy redistributes it but never changes the sum.
    split_total: u64,
    tick: u64,
    decisions: Vec<Decision>,
}

impl Controller {
    /// Creates a controller starting from the engine's configured knob
    /// values. The split policy's effective max is additionally clamped
    /// to `split_total - 1` so the decode side always keeps one worker.
    #[must_use]
    pub fn new(config: AutotuneConfig, initial: KnobValues) -> Self {
        let split_total = initial.aug_threads.max(1) + initial.decode_threads.max(1);
        let mut split_cfg = config.thread_split;
        split_cfg.min = split_cfg.min.max(1);
        split_cfg.max = split_cfg.max.min(split_total - 1).max(split_cfg.min);
        Controller {
            prefetch: HysteresisPolicy::new(
                Knob::PrefetchDepth,
                config.prefetch_depth,
                initial.prefetch_depth,
            ),
            slack: HysteresisPolicy::new(
                Knob::DemandSlack,
                config.demand_slack,
                initial.demand_slack,
            ),
            split: HysteresisPolicy::new(Knob::AugThreads, split_cfg, initial.aug_threads.max(1)),
            split_total,
            config,
            deriver: SignalDeriver::new(),
            tick: 0,
            decisions: Vec::new(),
        }
    }

    /// Control ticks taken so far (including the observe-only first one).
    #[must_use]
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// The knob levels currently in effect.
    #[must_use]
    pub fn values(&self) -> KnobValues {
        let aug = self.split.value();
        KnobValues {
            prefetch_depth: self.prefetch.value(),
            demand_slack: self.slack.value(),
            aug_threads: aug,
            decode_threads: (self.split_total - aug).max(1),
        }
    }

    /// Every decision committed so far (capped; oldest dropped first).
    #[must_use]
    pub fn decisions(&self) -> &[Decision] {
        &self.decisions
    }

    /// Per-policy direction-reversal counts, for oscillation checks.
    #[must_use]
    pub fn reversals(&self) -> Vec<(Knob, u64)> {
        vec![
            (Knob::PrefetchDepth, self.prefetch.reversals()),
            (Knob::DemandSlack, self.slack.reversals()),
            (Knob::AugThreads, self.split.reversals()),
        ]
    }

    /// Closed-loop tick: derives signals from the snapshot delta and
    /// advances the policies. The first call is observe-only (no
    /// baseline window yet) and returns no decisions.
    pub fn tick(&mut self, snapshot: &Snapshot) -> Vec<Decision> {
        match self.deriver.advance(snapshot) {
            None => {
                self.tick += 1;
                Vec::new()
            }
            Some(signals) => self.tick_with_signals(&signals),
        }
    }

    /// Deterministic tick from pre-derived signals — the simulation and
    /// test entry point (also what `tick` delegates to).
    pub fn tick_with_signals(&mut self, s: &Signals) -> Vec<Decision> {
        self.tick += 1;
        let tick = self.tick;
        let mut out = Vec::new();

        // prefetch_depth: raise while late/miss dominate the settled
        // outcomes *and* the store has budget headroom to hold a deeper
        // window; lower on cancellation churn or exhausted headroom. An
        // idle window (nothing settled, nothing cancelled) holds — it
        // carries no evidence in either direction.
        let churn = s.prefetch_cancelled > 0;
        let starved = s.store_headroom < self.config.headroom_floor;
        let (pull, reason) = if churn {
            (Pull::Lower, "cancellation churn in the prefetch window")
        } else if starved {
            (Pull::Lower, "store budget headroom exhausted")
        } else if s.prefetch_settled == 0 {
            (Pull::Hold, "")
        } else {
            match self.config.prefetch_depth.pull_for(s.prefetch_pressure) {
                Pull::Raise => (
                    Pull::Raise,
                    "late/miss dominate the prefetch window and headroom allows",
                ),
                Pull::Lower => (Pull::Lower, "prefetch window is almost all hits"),
                Pull::Hold => (Pull::Hold, ""),
            }
        };
        out.extend(self.prefetch.tick(tick, pull, reason));

        // demand_slack: widen the bounded-EDF affinity window while
        // pinned demand picks keep missing their preferred worker,
        // tighten when affinity hits dominate. No picks = no evidence.
        let (pull, reason) = if s.demand_picks == 0 {
            (Pull::Hold, "")
        } else {
            match self
                .config
                .demand_slack
                .pull_for(s.demand_affinity_miss_ratio)
            {
                Pull::Raise => (Pull::Raise, "pinned demand picks miss their worker"),
                Pull::Lower => (Pull::Lower, "demand affinity hits dominate"),
                Pull::Hold => (Pull::Hold, ""),
            }
        };
        out.extend(self.slack.tick(tick, pull, reason));

        // aug/decode split: shift workers toward the stage owning the
        // larger stall share. The drive is the signed share difference,
        // so the dead band is symmetric around a balanced pipeline.
        let drive = s.aug_stall_share - s.decode_stall_share;
        let (pull, reason) = match self.config.thread_split.pull_for(drive) {
            Pull::Raise => (Pull::Raise, "aug owns the largest stall share"),
            Pull::Lower => (Pull::Lower, "decode owns the largest stall share"),
            Pull::Hold => (Pull::Hold, ""),
        };
        out.extend(self.split.tick(tick, pull, reason));

        self.decisions.extend(out.iter().cloned());
        if self.decisions.len() > DECISION_LOG_CAP {
            let excess = self.decisions.len() - DECISION_LOG_CAP;
            self.decisions.drain(..excess);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn initial() -> KnobValues {
        KnobValues {
            prefetch_depth: 0,
            demand_slack: 0,
            aug_threads: 2,
            decode_threads: 2,
        }
    }

    fn pressure_signals() -> Signals {
        Signals {
            prefetch_pressure: 0.9,
            prefetch_settled: 10,
            store_headroom: 0.8,
            demand_affinity_miss_ratio: 0.9,
            demand_picks: 10,
            aug_stall_share: 0.7,
            decode_stall_share: 0.1,
            ..Signals::default()
        }
    }

    fn relief_signals() -> Signals {
        Signals {
            prefetch_pressure: 0.0,
            prefetch_settled: 10,
            store_headroom: 0.8,
            demand_affinity_miss_ratio: 0.0,
            demand_picks: 10,
            aug_stall_share: 0.1,
            decode_stall_share: 0.7,
            ..Signals::default()
        }
    }

    fn hold_signals() -> Signals {
        Signals {
            prefetch_pressure: 0.15,
            prefetch_settled: 10,
            store_headroom: 0.8,
            demand_affinity_miss_ratio: 0.3,
            demand_picks: 10,
            aug_stall_share: 0.4,
            decode_stall_share: 0.4,
            ..Signals::default()
        }
    }

    /// The ISSUE's required deterministic simulated-signal test: drive
    /// every policy through its full hysteresis cycle (raise regime →
    /// dead band → lower regime) and check each converges with exactly
    /// one direction reversal and no decisions inside the dead band.
    #[test]
    fn full_hysteresis_cycle_converges_without_oscillation() {
        let mut c = Controller::new(AutotuneConfig::default(), initial());
        for _ in 0..30 {
            c.tick_with_signals(&pressure_signals());
        }
        let after_raise = c.values();
        assert_eq!(after_raise.prefetch_depth, 8, "raised to the clamp");
        assert_eq!(after_raise.demand_slack, 40, "10 moves x step 4");
        assert_eq!(after_raise.aug_threads, 3, "split max is total - 1");
        assert_eq!(after_raise.decode_threads, 1);

        let moves_before_hold = c.decisions().len();
        for _ in 0..10 {
            c.tick_with_signals(&hold_signals());
        }
        assert_eq!(
            c.decisions().len(),
            moves_before_hold,
            "dead band commits nothing"
        );
        assert_eq!(c.values(), after_raise, "knobs hold in the dead band");

        for _ in 0..40 {
            c.tick_with_signals(&relief_signals());
        }
        let settled = c.values();
        assert_eq!(settled.prefetch_depth, 0, "lowered back to min");
        assert_eq!(settled.demand_slack, 0);
        assert_eq!(settled.aug_threads, 1, "shifted toward decode");
        assert_eq!(settled.decode_threads, 3);
        for (knob, reversals) in c.reversals() {
            assert_eq!(
                reversals,
                1,
                "{}: one regime change = one reversal",
                knob.name()
            );
        }
    }

    #[test]
    fn churn_and_headroom_veto_prefetch_raises() {
        let mut c = Controller::new(AutotuneConfig::default(), initial());
        let mut s = pressure_signals();
        s.store_headroom = 0.05; // below the 0.15 floor
        for _ in 0..6 {
            c.tick_with_signals(&s);
        }
        assert_eq!(
            c.values().prefetch_depth,
            0,
            "no raise without headroom even under pressure"
        );

        // Raise once legitimately, then cancellation churn pulls down
        // despite continued pressure.
        let mut c = Controller::new(AutotuneConfig::default(), initial());
        for _ in 0..6 {
            c.tick_with_signals(&pressure_signals());
        }
        assert!(c.values().prefetch_depth >= 2);
        let mut s = pressure_signals();
        s.prefetch_cancelled = 3;
        for _ in 0..30 {
            c.tick_with_signals(&s);
        }
        assert_eq!(c.values().prefetch_depth, 0, "churn drains the window");
    }

    #[test]
    fn idle_windows_hold_every_knob() {
        let start = KnobValues {
            prefetch_depth: 4,
            demand_slack: 16,
            aug_threads: 2,
            decode_threads: 2,
        };
        let mut c = Controller::new(AutotuneConfig::default(), start);
        for _ in 0..10 {
            let decisions = c.tick_with_signals(&Signals {
                store_headroom: 1.0,
                ..Signals::default()
            });
            assert!(decisions.is_empty(), "no evidence, no movement");
        }
        assert_eq!(c.values(), start);
    }

    #[test]
    fn observe_only_first_snapshot_tick() {
        let r = sand_telemetry::Registry::new();
        let mut c = Controller::new(AutotuneConfig::default(), initial());
        assert!(c.tick(&r.snapshot()).is_empty());
        assert_eq!(c.tick_count(), 1);
        // A second identical snapshot is a zero-delta window: holds.
        assert!(c.tick(&r.snapshot()).is_empty());
        assert_eq!(c.tick_count(), 2);
    }

    #[test]
    fn closed_loop_raises_depth_from_real_snapshots() {
        let r = sand_telemetry::Registry::new();
        let mut c = Controller::new(AutotuneConfig::default(), initial());
        c.tick(&r.snapshot());
        for _ in 0..9 {
            r.counter("prefetch.miss").add(5);
            c.tick(&r.snapshot());
        }
        assert!(
            c.values().prefetch_depth >= 2,
            "sustained misses must deepen the window, got {}",
            c.values().prefetch_depth
        );
    }

    #[test]
    fn split_preserves_the_worker_total() {
        let mut c = Controller::new(AutotuneConfig::default(), initial());
        for _ in 0..30 {
            c.tick_with_signals(&pressure_signals());
        }
        let v = c.values();
        assert_eq!(
            v.aug_threads + v.decode_threads,
            4,
            "split shifts, never grows"
        );
    }

    #[test]
    fn decision_log_is_capped() {
        let cfg = AutotuneConfig {
            prefetch_depth: crate::PolicyConfig {
                min: 0,
                max: u64::MAX,
                step: 1,
                raise_above: 0.25,
                lower_below: 0.05,
                cooldown_ticks: 0,
            },
            ..AutotuneConfig::default()
        };
        let mut c = Controller::new(cfg, initial());
        for _ in 0..1200 {
            c.tick_with_signals(&pressure_signals());
        }
        assert_eq!(c.decisions().len(), 1024, "oldest decisions are dropped");
    }
}
