//! Per-knob hysteresis policy state machines.
//!
//! A policy never reads telemetry and never touches the engine: the
//! [`Controller`](crate::Controller) translates signals into a [`Pull`]
//! each tick, and the policy decides whether acting on it is safe given
//! its hysteresis state. Three mechanisms keep the loop stable:
//!
//! - **Dead band** — [`PolicyConfig::pull_for`] maps a drive value to
//!   `Raise` only above `raise_above` and `Lower` only below
//!   `lower_below`; in between the policy holds. The gap between the two
//!   thresholds is the hysteresis band: a signal hovering around a
//!   single threshold cannot flip the knob back and forth.
//! - **Cooldown** — after every move the policy ignores `cooldown_ticks`
//!   ticks, so the effect of a change is observed before the next one.
//! - **Clamps** — moves saturate at hard `min`/`max` bounds; a move that
//!   would not change the (clamped) value emits no decision.
//!
//! Direction reversals are counted: a well-damped policy reverses at
//! most once per regime change in its input, so callers (the
//! `examples/autotune.rs` CLI, the convergence tests) can bound
//! `reversals()` to detect oscillation.

/// Which engine knob a policy (or a decision) drives.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Knob {
    /// The prefetcher's speculative look-ahead window.
    PrefetchDepth,
    /// The scheduler's bounded-EDF demand affinity window (µs).
    DemandSlack,
    /// The augmentation side of the aug/decode worker split; the decode
    /// side receives whatever the split total leaves over.
    AugThreads,
}

impl Knob {
    /// Stable snake_case name used in metrics, decisions, and lints.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Knob::PrefetchDepth => "prefetch_depth",
            Knob::DemandSlack => "demand_slack",
            Knob::AugThreads => "aug_threads",
        }
    }
}

/// Tuning parameters for one [`HysteresisPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct PolicyConfig {
    /// Hard lower clamp for the knob value.
    pub min: u64,
    /// Hard upper clamp for the knob value.
    pub max: u64,
    /// Step size per decision.
    pub step: u64,
    /// Drive threshold above which the policy wants to raise.
    pub raise_above: f64,
    /// Drive threshold below which the policy wants to lower. Must be
    /// `< raise_above`; the gap is the hysteresis dead band.
    pub lower_below: f64,
    /// Ticks to hold after a move before acting again.
    pub cooldown_ticks: u32,
}

impl PolicyConfig {
    /// Maps a drive value onto the hysteresis band: `Raise` strictly
    /// above `raise_above`, `Lower` strictly below `lower_below`,
    /// `Hold` inside the dead band.
    #[must_use]
    pub fn pull_for(&self, drive: f64) -> Pull {
        if drive > self.raise_above {
            Pull::Raise
        } else if drive < self.lower_below {
            Pull::Lower
        } else {
            Pull::Hold
        }
    }
}

/// The direction a signal pulls a knob this tick.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pull {
    /// Step the knob up (subject to cooldown and the max clamp).
    Raise,
    /// Step the knob down (subject to cooldown and the min clamp).
    Lower,
    /// Inside the dead band (or vetoed): leave the knob alone.
    Hold,
}

/// One committed knob change.
#[derive(Clone, Debug, PartialEq)]
pub struct Decision {
    /// Controller tick that produced the decision.
    pub tick: u64,
    /// The knob changed.
    pub knob: Knob,
    /// Value before the change.
    pub from: u64,
    /// Value after the change (clamped).
    pub to: u64,
    /// Human-readable cause, e.g. `late/miss dominate prefetch window`.
    pub reason: String,
}

impl Decision {
    /// One-line rendering used by the stall-report decision log.
    #[must_use]
    pub fn render(&self) -> String {
        format!(
            "tick {}: {} {} -> {} ({})",
            self.tick,
            self.knob.name(),
            self.from,
            self.to,
            self.reason
        )
    }
}

/// Hysteresis state machine for a single knob.
#[derive(Debug)]
pub struct HysteresisPolicy {
    knob: Knob,
    config: PolicyConfig,
    value: u64,
    cooldown: u32,
    last_direction: Option<Pull>,
    reversals: u64,
    moves: u64,
}

impl HysteresisPolicy {
    /// Creates a policy starting at `initial` (the engine's configured
    /// knob value; clamps constrain *changes*, not the starting point).
    #[must_use]
    pub fn new(knob: Knob, config: PolicyConfig, initial: u64) -> Self {
        HysteresisPolicy {
            knob,
            config,
            value: initial,
            cooldown: 0,
            last_direction: None,
            reversals: 0,
            moves: 0,
        }
    }

    /// The knob this policy drives.
    #[must_use]
    pub fn knob(&self) -> Knob {
        self.knob
    }

    /// Current knob value.
    #[must_use]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Committed decisions so far.
    #[must_use]
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Direction reversals so far (raise→lower or lower→raise). A
    /// policy oscillates when this exceeds the number of regime changes
    /// in its input signal.
    #[must_use]
    pub fn reversals(&self) -> u64 {
        self.reversals
    }

    /// Advances one control tick. Returns the committed decision, or
    /// `None` when holding (dead band, cooldown, or clamp saturation).
    pub fn tick(&mut self, tick: u64, pull: Pull, reason: &str) -> Option<Decision> {
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return None;
        }
        let c = self.config;
        let target = match pull {
            Pull::Hold => return None,
            Pull::Raise => self.value.saturating_add(c.step),
            Pull::Lower => self.value.saturating_sub(c.step),
        }
        .clamp(c.min, c.max);
        if target == self.value {
            return None;
        }
        if let Some(last) = self.last_direction {
            if last != pull {
                self.reversals += 1;
            }
        }
        self.last_direction = Some(pull);
        self.cooldown = c.cooldown_ticks;
        self.moves += 1;
        let decision = Decision {
            tick,
            knob: self.knob,
            from: self.value,
            to: target,
            reason: reason.to_string(),
        };
        self.value = target;
        Some(decision)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PolicyConfig {
        PolicyConfig {
            min: 0,
            max: 4,
            step: 1,
            raise_above: 0.5,
            lower_below: 0.1,
            cooldown_ticks: 0,
        }
    }

    #[test]
    fn pull_maps_the_dead_band() {
        let c = config();
        assert_eq!(c.pull_for(0.6), Pull::Raise);
        assert_eq!(c.pull_for(0.5), Pull::Hold, "threshold itself holds");
        assert_eq!(c.pull_for(0.3), Pull::Hold);
        assert_eq!(c.pull_for(0.1), Pull::Hold, "threshold itself holds");
        assert_eq!(c.pull_for(0.05), Pull::Lower);
    }

    #[test]
    fn raises_to_the_clamp_then_holds() {
        let mut p = HysteresisPolicy::new(Knob::PrefetchDepth, config(), 0);
        for t in 0..10 {
            p.tick(t, Pull::Raise, "up");
        }
        assert_eq!(p.value(), 4, "saturates at max");
        assert_eq!(p.moves(), 4, "no decisions once clamped");
        assert_eq!(p.reversals(), 0);
    }

    #[test]
    fn lower_saturates_at_min() {
        let cfg = PolicyConfig { min: 1, ..config() };
        let mut p = HysteresisPolicy::new(Knob::AugThreads, cfg, 3);
        for t in 0..10 {
            p.tick(t, Pull::Lower, "down");
        }
        assert_eq!(p.value(), 1);
        assert_eq!(p.moves(), 2);
    }

    #[test]
    fn cooldown_spaces_decisions() {
        let cfg = PolicyConfig {
            cooldown_ticks: 2,
            ..config()
        };
        let mut p = HysteresisPolicy::new(Knob::DemandSlack, cfg, 0);
        let committed: Vec<u64> = (0..9)
            .filter_map(|t| p.tick(t, Pull::Raise, "up").map(|d| d.tick))
            .collect();
        assert_eq!(committed, vec![0, 3, 6], "one move per cooldown window");
    }

    #[test]
    fn reversals_count_direction_flips() {
        let mut p = HysteresisPolicy::new(Knob::PrefetchDepth, config(), 2);
        p.tick(0, Pull::Raise, "up");
        p.tick(1, Pull::Raise, "up");
        assert_eq!(p.reversals(), 0);
        p.tick(2, Pull::Lower, "down");
        assert_eq!(p.reversals(), 1);
        p.tick(3, Pull::Lower, "down");
        assert_eq!(p.reversals(), 1, "same direction is not a reversal");
        p.tick(4, Pull::Raise, "up");
        assert_eq!(p.reversals(), 2);
    }

    #[test]
    fn clamped_step_emits_partial_decision() {
        let cfg = PolicyConfig {
            step: 3,
            ..config()
        };
        let mut p = HysteresisPolicy::new(Knob::PrefetchDepth, cfg, 3);
        let d = p.tick(0, Pull::Raise, "up").expect("moves 3 -> 4");
        assert_eq!((d.from, d.to), (3, 4), "step clamps to max");
    }

    #[test]
    fn decision_renders_with_knob_name() {
        let mut p = HysteresisPolicy::new(Knob::PrefetchDepth, config(), 0);
        let d = p.tick(7, Pull::Raise, "late/miss dominate").expect("moves");
        assert_eq!(
            d.render(),
            "tick 7: prefetch_depth 0 -> 1 (late/miss dominate)"
        );
    }
}
