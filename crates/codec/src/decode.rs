//! The decoder, with dependency-aware random access and work metering.
//!
//! Decoding is the expensive operation whose redundancy SAND exists to
//! eliminate. The decoder therefore meters everything it does in a
//! [`DecodeStats`] record: how many frames were *requested* versus how many
//! were actually *decoded* (including the keyframe-to-target runs that real
//! codec dependencies force), split by frame kind, plus bytes touched and
//! abstract compute cost.
//!
//! Because the codec uses closed GOPs, the frames between two consecutive
//! keyframes form an independent decode unit: no reconstruction crosses a
//! keyframe boundary backwards. [`Decoder::decode_indices`] exploits this by
//! grouping sorted targets into keyframe segments and, when configured with
//! more than one thread, decoding the segments concurrently on a scoped
//! thread pool. Stats are accumulated per worker and merged after the join
//! (every counter is a commutative sum, so the result is identical to a
//! sequential decode, bit for bit).
//!
//! For single-frame demand reads, [`WarmDecoder`] keeps the newest
//! reconstructed anchor of the last GOP it walked, so a subsequent read
//! that lands *forward* in the same GOP resumes the anchor chain instead of
//! re-decoding from the keyframe.

use crate::container::{EncodedVideo, FrameKind};
use crate::encode::{q, unfilter_rows};
use crate::{CodecError, Result};
use sand_frame::cost::{per_pixel_cost, units, OpCost};
use sand_frame::wire::{get_varint, rle_unpack};
use sand_frame::{Frame, FrameMeta};
use std::collections::HashMap;
use std::sync::Arc;

/// Work counters accumulated by a [`Decoder`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodeStats {
    /// Frames the caller asked for.
    pub frames_requested: u64,
    /// Frames actually decoded (>= requested due to GOP dependencies).
    pub frames_decoded: u64,
    /// Of the decoded frames, how many were I-frames.
    pub i_frames_decoded: u64,
    /// Of the decoded frames, how many were P-frames.
    pub p_frames_decoded: u64,
    /// Of the decoded frames, how many were B-frames.
    pub b_frames_decoded: u64,
    /// Decoded frames that were *not* requested (pure dependency overhead).
    pub frames_discarded: u64,
    /// Compressed payload bytes consumed.
    pub payload_bytes: u64,
    /// Raw pixel bytes produced (including discarded frames).
    pub pixel_bytes: u64,
    /// [`WarmDecoder`] reads that resumed a live anchor chain (the
    /// keyframe re-decode was skipped).
    pub warm_hits: u64,
    /// [`WarmDecoder`] reads that had to restart from a keyframe.
    pub cold_starts: u64,
}

impl DecodeStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: &DecodeStats) {
        self.frames_requested += other.frames_requested;
        self.frames_decoded += other.frames_decoded;
        self.i_frames_decoded += other.i_frames_decoded;
        self.p_frames_decoded += other.p_frames_decoded;
        self.b_frames_decoded += other.b_frames_decoded;
        self.frames_discarded += other.frames_discarded;
        self.payload_bytes += other.payload_bytes;
        self.pixel_bytes += other.pixel_bytes;
        self.warm_hits += other.warm_hits;
        self.cold_starts += other.cold_starts;
    }

    /// Ratio of decoded to requested frames (the waste factor).
    #[must_use]
    pub fn amplification(&self) -> f64 {
        if self.frames_requested == 0 {
            return 0.0;
        }
        self.frames_decoded as f64 / self.frames_requested as f64
    }
}

/// The anchor whose reconstruction a target needs before it can be
/// produced: itself for I/P, the *following* anchor for B (by which point
/// the preceding anchor is decoded too).
fn needed_anchor(video: &EncodedVideo, target: usize) -> Result<usize> {
    if video.frames[target].kind.is_anchor() {
        Ok(target)
    } else {
        video.anchor_after(target)?.ok_or(CodecError::Corrupt {
            what: "b-frame run with no following anchor",
        })
    }
}

/// Wraps a raw pixel buffer into a [`Frame`] with provenance metadata.
fn wrap_frame(video: &EncodedVideo, index: usize, pixels: Vec<u8>) -> Result<Frame> {
    let h = &video.header;
    let mut frame = Frame::from_vec(h.width, h.height, h.format, pixels)?;
    frame.meta = FrameMeta {
        index: index as u64,
        timestamp_us: h.timestamp_us(index),
        video_id: h.video_id,
        aug_depth: 0,
    };
    Ok(frame)
}

/// Walks one keyframe segment's anchor chain, decoding frames and
/// metering work. Owns the B-frame predictor scratch buffer so averaging
/// two anchors never allocates per frame.
struct ChainWalker<'v> {
    video: &'v EncodedVideo,
    stats: DecodeStats,
    scratch: Vec<u8>,
}

impl<'v> ChainWalker<'v> {
    fn new(video: &'v EncodedVideo) -> Self {
        ChainWalker {
            video,
            stats: DecodeStats::default(),
            scratch: Vec::new(),
        }
    }

    /// Decodes the I-frame at `index`.
    fn decode_intra(&mut self, index: usize) -> Result<Vec<u8>> {
        let h = &self.video.header;
        let expected = h.width * h.height * h.format.channels();
        let stride = h.width * h.format.channels();
        let f = &self.video.frames[index];
        self.stats.frames_decoded += 1;
        self.stats.i_frames_decoded += 1;
        self.stats.payload_bytes += f.payload.len() as u64;
        self.stats.pixel_bytes += expected as u64;
        let mut buckets = rle_unpack(&f.payload, expected).map_err(|_| CodecError::Corrupt {
            what: "bad i-frame payload",
        })?;
        if stride == 0 {
            return Err(CodecError::Corrupt {
                what: "zero stride",
            });
        }
        unfilter_rows(&mut buckets, stride);
        let qv = u16::from(h.quantizer);
        Ok(buckets
            .into_iter()
            .map(|b| q::dequantize_intra(b, qv))
            .collect())
    }

    /// Decodes a residual-coded frame at `index` against `predictor`.
    fn decode_residual(&mut self, index: usize, predictor: &[u8]) -> Result<Vec<u8>> {
        let h = &self.video.header;
        let expected = h.width * h.height * h.format.channels();
        let f = &self.video.frames[index];
        self.stats.frames_decoded += 1;
        match f.kind {
            FrameKind::Predicted => self.stats.p_frames_decoded += 1,
            FrameKind::Bidirectional => self.stats.b_frames_decoded += 1,
            FrameKind::Intra => {
                return Err(CodecError::Corrupt {
                    what: "intra frame in residual path",
                })
            }
        }
        self.stats.payload_bytes += f.payload.len() as u64;
        self.stats.pixel_bytes += expected as u64;
        let mut pos = 0usize;
        let stream_len = get_varint(&f.payload, &mut pos).map_err(|_| CodecError::Corrupt {
            what: "bad residual stream length",
        })? as usize;
        let stream =
            rle_unpack(&f.payload[pos..], stream_len).map_err(|_| CodecError::Corrupt {
                what: "bad residual payload",
            })?;
        let qi = i16::from(h.quantizer);
        let mut out = Vec::with_capacity(expected);
        let mut spos = 0usize;
        for &p in predictor.iter() {
            let steps = q::get_steps(&stream, &mut spos).ok_or(CodecError::Corrupt {
                what: "truncated residual stream",
            })?;
            // Widen: corrupted escape-coded streams can carry step counts
            // near i16::MAX, which would overflow in i16 arithmetic.
            let v = i32::from(p) + i32::from(steps) * i32::from(qi);
            out.push(v.clamp(0, 255) as u8);
        }
        if spos != stream.len() {
            return Err(CodecError::Corrupt {
                what: "residual stream length mismatch",
            });
        }
        Ok(out)
    }

    /// Decodes the B-frame at `index` predicted from the average of two
    /// anchor reconstructions, reusing the walker's scratch buffer for the
    /// averaged predictor.
    fn decode_b(&mut self, index: usize, pa: &[u8], pb: &[u8]) -> Result<Vec<u8>> {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        scratch.extend(
            pa.iter()
                .zip(pb.iter())
                .map(|(&x, &y)| ((u16::from(x) + u16::from(y)) / 2) as u8),
        );
        let out = self.decode_residual(index, &scratch);
        self.scratch = scratch;
        out
    }

    /// Decodes every target of one keyframe segment (`targets` sorted,
    /// deduplicated, all sharing `keyframe_before`). `requested` is the
    /// full sorted request set across *all* segments: discard accounting
    /// checks membership there, so parallel per-segment decodes count
    /// exactly what a sequential pass would.
    ///
    /// The walk keeps a single chain tip plus only the anchors that a
    /// still-pending target needs (counted up front), dropping every other
    /// reconstruction as soon as the chain moves past it, and moves — not
    /// copies — buffers into the output where possible.
    fn decode_segment(
        &mut self,
        targets: &[usize],
        requested: &[usize],
    ) -> Result<Vec<(usize, Vec<u8>)>> {
        let video = self.video;
        let first = match targets.first() {
            Some(&t) => t,
            None => return Ok(Vec::new()),
        };
        // Outstanding-use counts per anchor reconstruction.
        let mut needs: HashMap<usize, u32> = HashMap::new();
        for &t in targets {
            if video.frames[t].kind.is_anchor() {
                *needs.entry(t).or_insert(0) += 1;
            } else {
                *needs.entry(video.anchor_before(t)?).or_insert(0) += 1;
                *needs.entry(needed_anchor(video, t)?).or_insert(0) += 1;
            }
        }
        let kf = video.keyframe_before(first)?;
        let px = self.decode_intra(kf)?;
        if requested.binary_search(&kf).is_err() {
            self.stats.frames_discarded += 1;
        }
        let mut tip: (usize, Vec<u8>) = (kf, px);
        // Anchors the chain has passed that a later target still needs.
        let mut saved: HashMap<usize, Vec<u8>> = HashMap::new();
        let mut out = Vec::with_capacity(targets.len());
        for (ti, &target) in targets.iter().enumerate() {
            let needed = needed_anchor(video, target)?;
            while tip.0 < needed {
                let next = video.anchor_after(tip.0)?.ok_or(CodecError::Corrupt {
                    what: "anchor chain ends early",
                })?;
                // A trailing B-run's following anchor can be the next
                // GOP's I-frame, which decodes independently.
                let px = if video.frames[next].kind == FrameKind::Intra {
                    self.decode_intra(next)?
                } else {
                    self.decode_residual(next, &tip.1)?
                };
                if requested.binary_search(&next).is_err() {
                    self.stats.frames_discarded += 1;
                }
                let (old_idx, old_px) = std::mem::replace(&mut tip, (next, px));
                if needs.get(&old_idx).is_some_and(|&n| n > 0) {
                    saved.insert(old_idx, old_px);
                }
                // Otherwise `old_px` drops here: dead anchors are freed as
                // soon as the chain moves past them.
            }
            let last = ti + 1 == targets.len();
            let pixels = if video.frames[target].kind.is_anchor() {
                // Targets are sorted, so `needed` is monotone and the tip
                // is exactly this anchor.
                if let Some(n) = needs.get_mut(&target) {
                    *n = n.saturating_sub(1);
                }
                if last {
                    std::mem::take(&mut tip.1)
                } else {
                    tip.1.clone()
                }
            } else {
                let before = video.anchor_before(target)?;
                let produced = {
                    let pa = saved.get(&before).ok_or(CodecError::Corrupt {
                        what: "preceding anchor not decoded",
                    })?;
                    self.decode_b(target, pa, &tip.1)?
                };
                for a in [before, needed] {
                    if let Some(n) = needs.get_mut(&a) {
                        *n = n.saturating_sub(1);
                        if *n == 0 {
                            saved.remove(&a);
                        }
                    }
                }
                produced
            };
            out.push((target, pixels));
        }
        Ok(out)
    }
}

/// One worker's output: produced `(index, pixels)` pairs plus its stats.
type SegmentOutput = (Vec<(usize, Vec<u8>)>, DecodeStats);

/// A decoder bound to one encoded video.
#[derive(Debug)]
pub struct Decoder<'a> {
    video: &'a EncodedVideo,
    stats: DecodeStats,
    threads: usize,
    /// Optional telemetry: per-GOP-segment decode timing. `None` (the
    /// default) takes no timestamps at all.
    metrics: Option<sand_telemetry::CodecMetrics>,
}

impl<'a> Decoder<'a> {
    /// Creates a single-threaded decoder over `video`.
    #[must_use]
    pub fn new(video: &'a EncodedVideo) -> Self {
        Self::with_threads(video, 1)
    }

    /// Creates a decoder that may use up to `threads` worker threads to
    /// decode independent keyframe segments concurrently. `0` is treated
    /// as `1`.
    #[must_use]
    pub fn with_threads(video: &'a EncodedVideo, threads: usize) -> Self {
        Decoder {
            video,
            stats: DecodeStats::default(),
            threads: threads.max(1),
            metrics: None,
        }
    }

    /// Attaches telemetry (builder-style): each decoded GOP segment is
    /// timed into `decode.segment_us`.
    #[must_use]
    pub fn with_metrics(mut self, metrics: Option<sand_telemetry::CodecMetrics>) -> Self {
        self.metrics = metrics;
        self
    }

    /// Changes the segment-parallelism level for subsequent decodes.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub const fn stats(&self) -> &DecodeStats {
        &self.stats
    }

    /// Resets the work counters.
    pub fn reset_stats(&mut self) {
        self.stats = DecodeStats::default();
    }

    /// Abstract compute cost of decoding one frame of the given kind at
    /// this video's dimensions (used as graph edge weight).
    #[must_use]
    pub fn frame_cost(&self, kind: FrameKind) -> OpCost {
        let h = &self.video.header;
        let pixels = (h.width * h.height) as u64;
        let ch = h.format.channels() as u64;
        let unit = match kind {
            FrameKind::Intra => units::DECODE_I,
            FrameKind::Predicted | FrameKind::Bidirectional => units::DECODE_P,
        };
        per_pixel_cost(pixels, ch, unit, pixels * ch)
    }

    /// Decodes exactly the frames at `indices` (display order, need not be
    /// sorted or unique), paying the full codec-dependency cost: anchors
    /// chain back to the GOP keyframe, B-frames additionally require the
    /// following anchor.
    ///
    /// Closed GOPs make each keyframe segment independent, so with more
    /// than one configured thread the segments are decoded concurrently;
    /// results and stats are identical to a sequential decode.
    ///
    /// Returns frames in the order requested. The stats record counts every
    /// intermediate frame that had to be decoded to reach the targets.
    pub fn decode_indices(&mut self, indices: &[usize]) -> Result<Vec<Frame>> {
        let len = self.video.frames.len();
        for &i in indices {
            if i >= len {
                return Err(CodecError::FrameOutOfRange { index: i, len });
            }
        }
        self.stats.frames_requested += indices.len() as u64;
        // Process targets in sorted order so one pass through each GOP's
        // anchor chain serves all targets inside it.
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        // Group the sorted targets into keyframe segments (contiguous runs
        // sharing `keyframe_before`).
        let mut segments: Vec<Vec<usize>> = Vec::new();
        let mut cur_kf: Option<usize> = None;
        for &t in &sorted {
            let kf = self.video.keyframe_before(t)?;
            if cur_kf != Some(kf) {
                segments.push(Vec::new());
                cur_kf = Some(kf);
            }
            if let Some(seg) = segments.last_mut() {
                seg.push(t);
            }
        }
        let mut produced: HashMap<usize, Vec<u8>> = HashMap::with_capacity(sorted.len());
        if self.threads <= 1 || segments.len() <= 1 {
            let mut walker = ChainWalker::new(self.video);
            for seg in &segments {
                let t0 = self.metrics.as_ref().map(|_| std::time::Instant::now());
                produced.extend(walker.decode_segment(seg, &sorted)?);
                if let (Some(m), Some(t0)) = (&self.metrics, t0) {
                    m.segment_us.observe_duration(t0.elapsed());
                    m.segments.inc();
                }
            }
            self.stats.merge(&walker.stats);
        } else {
            let workers = self.threads.min(segments.len());
            let video = self.video;
            let sorted_ref = &sorted;
            let segments_ref = &segments;
            let metrics = self.metrics.clone();
            let results: Vec<Result<SegmentOutput>> = std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|w| {
                        let metrics = metrics.clone();
                        s.spawn(move || {
                            let mut walker = ChainWalker::new(video);
                            let mut pairs = Vec::new();
                            for seg in segments_ref.iter().skip(w).step_by(workers) {
                                let t0 = metrics.as_ref().map(|_| std::time::Instant::now());
                                pairs.extend(walker.decode_segment(seg, sorted_ref)?);
                                if let (Some(m), Some(t0)) = (&metrics, t0) {
                                    m.segment_us.observe_duration(t0.elapsed());
                                    m.segments.inc();
                                }
                            }
                            Ok((pairs, walker.stats))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        h.join().unwrap_or(Err(CodecError::Corrupt {
                            what: "decode worker panicked",
                        }))
                    })
                    .collect()
            });
            for r in results {
                let (pairs, stats) = r?;
                produced.extend(pairs);
                self.stats.merge(&stats);
            }
        }
        // Restore the caller's order (with possible duplicates), moving
        // each buffer out of the map on its last use.
        let mut remaining: HashMap<usize, usize> = HashMap::with_capacity(sorted.len());
        for &i in indices {
            *remaining.entry(i).or_insert(0) += 1;
        }
        let mut out = Vec::with_capacity(indices.len());
        for &i in indices {
            let uses = remaining.get_mut(&i).ok_or(CodecError::Corrupt {
                what: "request bookkeeping out of sync",
            })?;
            *uses -= 1;
            let pixels = if *uses == 0 {
                produced.remove(&i)
            } else {
                produced.get(&i).cloned()
            }
            .ok_or(CodecError::Corrupt {
                what: "target not decoded",
            })?;
            out.push(wrap_frame(self.video, i, pixels)?);
        }
        Ok(out)
    }

    /// Decodes every frame of the video in display order.
    pub fn decode_all(&mut self) -> Result<Vec<Frame>> {
        let all: Vec<usize> = (0..self.video.frames.len()).collect();
        self.decode_indices(&all)
    }

    /// Number of frames that would be decoded to satisfy `indices`,
    /// without doing any work. Used by planners for cost estimates.
    pub fn decode_span(&self, indices: &[usize]) -> Result<usize> {
        let len = self.video.frames.len();
        let mut sorted: Vec<usize> = indices.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let mut touched = 0usize;
        let mut chain_kf: Option<usize> = None;
        let mut chain_last: Option<usize> = None;
        for &target in &sorted {
            if target >= len {
                return Err(CodecError::FrameOutOfRange { index: target, len });
            }
            let kf = self.video.keyframe_before(target)?;
            let needed = needed_anchor(self.video, target)?;
            if chain_kf != Some(kf) {
                chain_kf = Some(kf);
                chain_last = None;
            }
            let mut at = match chain_last {
                Some(a) => a,
                None => {
                    touched += 1;
                    chain_last = Some(kf);
                    kf
                }
            };
            while at < needed {
                at = self.video.anchor_after(at)?.ok_or(CodecError::Corrupt {
                    what: "anchor chain ends early",
                })?;
                touched += 1;
                chain_last = Some(at);
            }
            if !self.video.frames[target].kind.is_anchor() {
                touched += 1;
            }
        }
        Ok(touched)
    }
}

/// A long-lived, owning decode session for single-frame demand reads.
///
/// Keeps the newest reconstructed anchor of the GOP it last walked. A read
/// that lands forward in the same GOP resumes the anchor chain from that
/// tip — zero keyframe re-decodes — while a read in a different GOP (or
/// behind the tip) falls back to a cold walk from the keyframe. Pixels are
/// bit-identical to a cold [`Decoder::decode_indices`] call either way.
#[derive(Debug)]
pub struct WarmDecoder {
    video: Arc<EncodedVideo>,
    /// Index + reconstruction of the live chain's newest anchor.
    tip: Option<(usize, Vec<u8>)>,
    stats: DecodeStats,
}

impl WarmDecoder {
    /// Creates a cold session over `video`.
    #[must_use]
    pub fn new(video: Arc<EncodedVideo>) -> Self {
        WarmDecoder {
            video,
            tip: None,
            stats: DecodeStats::default(),
        }
    }

    /// The video this session decodes.
    #[must_use]
    pub fn video(&self) -> &Arc<EncodedVideo> {
        &self.video
    }

    /// Work counters accumulated so far.
    #[must_use]
    pub const fn stats(&self) -> &DecodeStats {
        &self.stats
    }

    /// Returns the accumulated counters, resetting them to zero (so a
    /// caller can merge session work into a global meter incrementally).
    pub fn take_stats(&mut self) -> DecodeStats {
        std::mem::take(&mut self.stats)
    }

    /// Approximate resident size of the warm state in bytes.
    #[must_use]
    pub fn resident_bytes(&self) -> usize {
        self.tip.as_ref().map_or(0, |(_, px)| px.len())
    }

    /// Decodes the single frame at `index`, resuming the live anchor chain
    /// when the request lands at or ahead of the tip in the same GOP.
    pub fn decode_frame(&mut self, index: usize) -> Result<Frame> {
        let video = Arc::clone(&self.video);
        let len = video.frames.len();
        if index >= len {
            return Err(CodecError::FrameOutOfRange { index, len });
        }
        self.stats.frames_requested += 1;
        let kf = video.keyframe_before(index)?;
        let needed = needed_anchor(&video, index)?;
        let is_anchor = video.frames[index].kind.is_anchor();
        let before = if is_anchor {
            None
        } else {
            Some(video.anchor_before(index)?)
        };
        // Warm iff the tip sits in the target's GOP at or before every
        // anchor the target still needs (for a B-frame the chain must
        // still pass its *preceding* anchor to capture it).
        let resume_limit = before.unwrap_or(index);
        let warm = match &self.tip {
            Some((t, _)) => *t <= resume_limit && video.keyframe_before(*t)? == kf,
            None => false,
        };
        if warm {
            self.stats.warm_hits += 1;
        } else {
            self.stats.cold_starts += 1;
        }
        let mut walker = ChainWalker::new(&video);
        let mut tip = if warm {
            self.tip.take().ok_or(CodecError::Corrupt {
                what: "warm tip vanished",
            })?
        } else {
            let px = walker.decode_intra(kf)?;
            if kf != index {
                walker.stats.frames_discarded += 1;
            }
            (kf, px)
        };
        let mut saved_before: Option<Vec<u8>> = None;
        while tip.0 < needed {
            let next = video.anchor_after(tip.0)?.ok_or(CodecError::Corrupt {
                what: "anchor chain ends early",
            })?;
            let px = if video.frames[next].kind == FrameKind::Intra {
                walker.decode_intra(next)?
            } else {
                walker.decode_residual(next, &tip.1)?
            };
            if next != index {
                walker.stats.frames_discarded += 1;
            }
            let old = std::mem::replace(&mut tip, (next, px));
            if Some(old.0) == before {
                saved_before = Some(old.1);
            }
        }
        let pixels = if is_anchor {
            tip.1.clone()
        } else {
            let pa = saved_before.as_deref().ok_or(CodecError::Corrupt {
                what: "preceding anchor not decoded",
            })?;
            walker.decode_b(index, pa, &tip.1)?
        };
        self.tip = Some(tip);
        self.stats.merge(&walker.stats);
        wrap_frame(&video, index, pixels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{Encoder, EncoderConfig};
    use sand_frame::{Frame, PixelFormat};

    fn gradient_video(frames: usize, w: usize, h: usize) -> Vec<Frame> {
        (0..frames)
            .map(|t| {
                let mut f = Frame::zeroed(w, h, PixelFormat::Gray8).unwrap();
                for y in 0..h {
                    for x in 0..w {
                        let v = ((x * 4 + y * 2 + t * 8) % 256) as u8;
                        f.set_pixel(x, y, &[v]).unwrap();
                    }
                }
                f
            })
            .collect()
    }

    fn encode(frames: &[Frame], gop: usize, q: u8) -> EncodedVideo {
        Encoder::new(EncoderConfig {
            gop_size: gop,
            quantizer: q,
            fps_milli: 30_000,
            b_frames: 0,
        })
        .unwrap()
        .encode(frames, 7, 2)
        .unwrap()
    }

    #[test]
    fn full_decode_error_bounded_by_quantizer() {
        let src = gradient_video(24, 16, 16);
        for q in [1u8, 2, 4, 8] {
            let v = encode(&src, 8, q);
            let mut dec = Decoder::new(&v);
            let out = dec.decode_all().unwrap();
            for (a, b) in src.iter().zip(out.iter()) {
                let mad = a.mean_abs_diff(b).unwrap();
                assert!(mad <= f64::from(q), "q={q} mad={mad}");
            }
        }
    }

    #[test]
    fn lossless_at_q1() {
        let src = gradient_video(12, 8, 8);
        let v = encode(&src, 6, 1);
        let mut dec = Decoder::new(&v);
        let out = dec.decode_all().unwrap();
        for (a, b) in src.iter().zip(out.iter()) {
            assert_eq!(a.as_bytes(), b.as_bytes());
        }
    }

    #[test]
    fn random_access_matches_sequential() {
        let src = gradient_video(30, 8, 8);
        let v = encode(&src, 10, 2);
        let mut dec_all = Decoder::new(&v);
        let all = dec_all.decode_all().unwrap();
        let mut dec = Decoder::new(&v);
        let picks = [25usize, 3, 17];
        let out = dec.decode_indices(&picks).unwrap();
        for (k, &i) in picks.iter().enumerate() {
            assert_eq!(out[k].as_bytes(), all[i].as_bytes(), "frame {i}");
            assert_eq!(out[k].meta.index, i as u64);
        }
    }

    #[test]
    fn dependency_amplification_measured() {
        let src = gradient_video(40, 8, 8);
        let v = encode(&src, 10, 2);
        let mut dec = Decoder::new(&v);
        // Frame 9 is the last of GOP 0: needs frames 0..=9.
        dec.decode_indices(&[9]).unwrap();
        assert_eq!(dec.stats().frames_requested, 1);
        assert_eq!(dec.stats().frames_decoded, 10);
        assert_eq!(dec.stats().frames_discarded, 9);
        assert!((dec.stats().amplification() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn keyframe_access_is_cheap() {
        let src = gradient_video(40, 8, 8);
        let v = encode(&src, 10, 2);
        let mut dec = Decoder::new(&v);
        dec.decode_indices(&[20]).unwrap(); // a keyframe
        assert_eq!(dec.stats().frames_decoded, 1);
        assert_eq!(dec.stats().frames_discarded, 0);
    }

    #[test]
    fn same_gop_targets_share_one_pass() {
        let src = gradient_video(40, 8, 8);
        let v = encode(&src, 10, 2);
        let mut dec = Decoder::new(&v);
        dec.decode_indices(&[12, 15, 18]).unwrap();
        // One pass 10..=18 decodes 9 frames.
        assert_eq!(dec.stats().frames_decoded, 9);
        assert_eq!(dec.stats().frames_discarded, 6);
    }

    #[test]
    fn decode_span_predicts_decode_work() {
        let src = gradient_video(40, 8, 8);
        let v = encode(&src, 10, 2);
        for picks in [vec![9usize], vec![20], vec![12, 15, 18], vec![3, 33]] {
            let mut dec = Decoder::new(&v);
            let predicted = dec.decode_span(&picks).unwrap();
            dec.decode_indices(&picks).unwrap();
            assert_eq!(
                predicted as u64,
                dec.stats().frames_decoded,
                "picks {picks:?}"
            );
        }
    }

    #[test]
    fn duplicate_and_unsorted_requests_served_in_order() {
        let src = gradient_video(20, 8, 8);
        let v = encode(&src, 5, 2);
        let mut dec = Decoder::new(&v);
        let out = dec.decode_indices(&[7, 2, 7]).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].meta.index, 7);
        assert_eq!(out[1].meta.index, 2);
        assert_eq!(out[0].as_bytes(), out[2].as_bytes());
    }

    #[test]
    fn out_of_range_rejected() {
        let src = gradient_video(10, 8, 8);
        let v = encode(&src, 5, 2);
        let mut dec = Decoder::new(&v);
        assert!(matches!(
            dec.decode_indices(&[10]),
            Err(CodecError::FrameOutOfRange { index: 10, len: 10 })
        ));
    }

    fn encode_b(frames: &[Frame], gop: usize, q: u8, b: usize) -> EncodedVideo {
        Encoder::new(EncoderConfig {
            gop_size: gop,
            quantizer: q,
            fps_milli: 30_000,
            b_frames: b,
        })
        .unwrap()
        .encode(frames, 7, 2)
        .unwrap()
    }

    #[test]
    fn b_frame_full_decode_error_bounded() {
        let src = gradient_video(24, 16, 16);
        for q in [1u8, 2, 4] {
            let v = encode_b(&src, 12, q, 2);
            let mut dec = Decoder::new(&v);
            let out = dec.decode_all().unwrap();
            for (a, b) in src.iter().zip(out.iter()) {
                let mad = a.mean_abs_diff(b).unwrap();
                // B-frames compound intra + anchor + own quantization.
                assert!(mad <= 2.0 * f64::from(q), "q={q} mad={mad}");
            }
            assert!(dec.stats().b_frames_decoded > 0);
        }
    }

    #[test]
    fn b_frame_random_access_decodes_anchor_chain() {
        let src = gradient_video(24, 8, 8);
        let v = encode_b(&src, 12, 2, 2);
        // Frame 4 is a B between anchors 3 and 6: needs I(0), P(3), P(6),
        // and itself = 4 decodes.
        let mut dec = Decoder::new(&v);
        dec.decode_indices(&[4]).unwrap();
        assert_eq!(dec.stats().frames_decoded, 4);
        assert_eq!(dec.stats().i_frames_decoded, 1);
        assert_eq!(dec.stats().p_frames_decoded, 2);
        assert_eq!(dec.stats().b_frames_decoded, 1);
        assert_eq!(dec.stats().frames_discarded, 3);
    }

    #[test]
    fn b_frame_skips_other_b_frames() {
        // Accessing a far P anchor never decodes intervening B-frames.
        let src = gradient_video(24, 8, 8);
        let v = encode_b(&src, 12, 2, 2);
        let mut dec = Decoder::new(&v);
        dec.decode_indices(&[9]).unwrap(); // P anchor at position 9
        assert_eq!(dec.stats().b_frames_decoded, 0);
        assert_eq!(dec.stats().frames_decoded, 4); // I0, P3, P6, P9
    }

    #[test]
    fn b_frame_decode_span_matches_work() {
        let src = gradient_video(36, 8, 8);
        let v = encode_b(&src, 12, 2, 2);
        for picks in [vec![4usize], vec![9], vec![4, 5], vec![1, 13, 26]] {
            let mut dec = Decoder::new(&v);
            let predicted = dec.decode_span(&picks).unwrap();
            dec.decode_indices(&picks).unwrap();
            assert_eq!(
                predicted as u64,
                dec.stats().frames_decoded,
                "picks {picks:?}"
            );
        }
    }

    #[test]
    fn b_frame_random_access_matches_full_decode() {
        let src = gradient_video(24, 8, 8);
        let v = encode_b(&src, 12, 2, 2);
        let mut dec_all = Decoder::new(&v);
        let all = dec_all.decode_all().unwrap();
        let mut dec = Decoder::new(&v);
        let picks = [4usize, 10, 13, 22];
        let out = dec.decode_indices(&picks).unwrap();
        for (k, &i) in picks.iter().enumerate() {
            assert_eq!(out[k].as_bytes(), all[i].as_bytes(), "frame {i}");
        }
    }

    #[test]
    fn parallel_decode_is_bit_identical_to_sequential() {
        let src = gradient_video(60, 8, 8);
        for b in [0usize, 2] {
            let v = encode_b(&src, 10, 2, b);
            let picks = [3usize, 7, 14, 14, 29, 31, 42, 58, 5];
            let mut seq = Decoder::new(&v);
            let seq_out = seq.decode_indices(&picks).unwrap();
            let mut par = Decoder::with_threads(&v, 4);
            let par_out = par.decode_indices(&picks).unwrap();
            assert_eq!(seq_out.len(), par_out.len());
            for (a, p) in seq_out.iter().zip(par_out.iter()) {
                assert_eq!(a.as_bytes(), p.as_bytes());
                assert_eq!(a.meta, p.meta);
            }
            assert_eq!(seq.stats(), par.stats(), "b_frames={b}");
        }
    }

    #[test]
    fn parallel_full_decode_matches_sequential() {
        let src = gradient_video(36, 8, 8);
        let v = encode_b(&src, 12, 2, 2);
        let mut seq = Decoder::new(&v);
        let seq_out = seq.decode_all().unwrap();
        let mut par = Decoder::with_threads(&v, 3);
        let par_out = par.decode_all().unwrap();
        for (a, p) in seq_out.iter().zip(par_out.iter()) {
            assert_eq!(a.as_bytes(), p.as_bytes());
        }
        assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn warm_forward_read_skips_keyframe_redecode() {
        let src = gradient_video(40, 8, 8);
        let v = Arc::new(encode(&src, 10, 2));
        let mut warm = WarmDecoder::new(Arc::clone(&v));
        warm.decode_frame(12).unwrap();
        assert_eq!(warm.stats().i_frames_decoded, 1);
        assert_eq!(warm.stats().frames_decoded, 3); // 10, 11, 12
        warm.decode_frame(15).unwrap();
        // Forward in the same GOP: resumes at 12, decodes 13..=15 only.
        assert_eq!(warm.stats().i_frames_decoded, 1);
        assert_eq!(warm.stats().frames_decoded, 6);
        // Re-reading the tip itself decodes nothing.
        warm.decode_frame(15).unwrap();
        assert_eq!(warm.stats().frames_decoded, 6);
    }

    #[test]
    fn warm_backward_or_cross_gop_read_restarts_cold() {
        let src = gradient_video(40, 8, 8);
        let v = Arc::new(encode(&src, 10, 2));
        let mut warm = WarmDecoder::new(Arc::clone(&v));
        warm.decode_frame(15).unwrap();
        let base = warm.stats().frames_decoded;
        warm.decode_frame(12).unwrap(); // behind the tip: cold walk 10..=12
        assert_eq!(warm.stats().frames_decoded, base + 3);
        assert_eq!(warm.stats().i_frames_decoded, 2);
        warm.decode_frame(25).unwrap(); // different GOP: cold walk 20..=25
        assert_eq!(warm.stats().i_frames_decoded, 3);
    }

    #[test]
    fn warm_reads_match_cold_pixels() {
        let src = gradient_video(36, 8, 8);
        let v = Arc::new(encode_b(&src, 12, 2, 2));
        let mut dec_all = Decoder::new(&v);
        let all = dec_all.decode_all().unwrap();
        let mut warm = WarmDecoder::new(Arc::clone(&v));
        // A mix of warm resumes, B-frames, and cold restarts.
        for i in [0usize, 4, 6, 9, 10, 13, 2, 35] {
            let f = warm.decode_frame(i).unwrap();
            assert_eq!(f.as_bytes(), all[i].as_bytes(), "frame {i}");
            assert_eq!(f.meta.index, i as u64);
        }
    }

    #[test]
    fn warm_session_counts_hits_and_cold_starts() {
        let src = gradient_video(40, 8, 8);
        let v = Arc::new(encode(&src, 10, 2));
        let mut warm = WarmDecoder::new(Arc::clone(&v));
        warm.decode_frame(12).unwrap(); // first read: cold
        warm.decode_frame(15).unwrap(); // forward same GOP: warm
        warm.decode_frame(15).unwrap(); // tip itself: warm
        warm.decode_frame(12).unwrap(); // behind the tip: cold
        warm.decode_frame(25).unwrap(); // other GOP: cold
        assert_eq!(warm.stats().warm_hits, 2);
        assert_eq!(warm.stats().cold_starts, 3);
    }

    #[test]
    fn segment_timing_counts_gop_segments() {
        let telemetry = sand_telemetry::Telemetry::new(sand_telemetry::TelemetryConfig::default());
        let metrics = sand_telemetry::CodecMetrics::register(&telemetry).unwrap();
        let src = gradient_video(40, 8, 8);
        let v = encode(&src, 10, 2);
        for threads in [1usize, 3] {
            // Targets span three distinct GOPs → three timed segments.
            let mut dec = Decoder::with_threads(&v, threads).with_metrics(Some(metrics.clone()));
            dec.decode_indices(&[3, 15, 27]).unwrap();
        }
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.counter("decode.segments"), Some(6));
        assert_eq!(
            snap.histogram("decode.segment_us").map(|h| h.count),
            Some(6)
        );
    }

    #[test]
    fn warm_out_of_range_rejected() {
        let src = gradient_video(10, 8, 8);
        let v = Arc::new(encode(&src, 5, 2));
        let mut warm = WarmDecoder::new(v);
        assert!(matches!(
            warm.decode_frame(10),
            Err(CodecError::FrameOutOfRange { index: 10, len: 10 })
        ));
    }

    #[test]
    fn stats_merge_adds_counters() {
        let mut a = DecodeStats {
            frames_requested: 1,
            frames_decoded: 2,
            ..Default::default()
        };
        let b = DecodeStats {
            frames_requested: 3,
            frames_decoded: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.frames_requested, 4);
        assert_eq!(a.frames_decoded, 6);
    }

    #[test]
    fn p_frame_cost_exceeds_i_frame_cost() {
        let src = gradient_video(5, 8, 8);
        let v = encode(&src, 5, 2);
        let dec = Decoder::new(&v);
        assert!(
            dec.frame_cost(FrameKind::Predicted).compute_units
                > dec.frame_cost(FrameKind::Intra).compute_units
        );
    }

    #[test]
    fn container_roundtrip_preserves_decodability() {
        let src = gradient_video(15, 8, 8);
        let v = encode(&src, 5, 2);
        let v2 = EncodedVideo::from_bytes(&v.to_bytes()).unwrap();
        let mut dec = Decoder::new(&v2);
        let out = dec.decode_all().unwrap();
        assert_eq!(out.len(), 15);
    }
}
