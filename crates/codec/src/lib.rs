//! A complete, self-contained toy video codec with GOP structure.
//!
//! SAND's central systems claim — that sparse random frame selection forces
//! decoding (and discarding) many extra frames every epoch — depends on one
//! codec property: **inter-frame prediction**. Frames are grouped into GOPs
//! (groups of pictures); the first frame of each GOP is an *I-frame* coded
//! independently, and every following frame is a *P-frame* coded as a
//! quantized residual against the previous *reconstructed* frame. Decoding
//! frame `n` therefore requires decoding every frame from the preceding
//! keyframe, which this crate enforces and meters.
//!
//! The pipeline per frame is: closed-loop prediction → uniform residual
//! quantization → up-filter → run-length/varint entropy packing (shared
//! with `sand-frame`'s cache format). The codec is lossy with error bounded
//! by half the quantizer step, which mirrors real video codecs closely
//! enough for every experiment in the paper.
//!
//! The crate also provides:
//!
//! - [`container`]: a self-describing `.svid` byte/file format with a frame
//!   index enabling keyframe-aligned random access,
//! - [`synth`]: a procedural video generator whose motion statistics depend
//!   on a class label (so the tiny model in `sand-train` can learn),
//! - [`dataset`]: generation and loading of whole synthetic datasets.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod container;
pub mod dataset;
pub mod decode;
pub mod encode;
pub mod stream;
pub mod synth;

pub use container::{ContainerHeader, EncodedFrame, EncodedVideo, FrameKind};
pub use dataset::{Dataset, DatasetSpec, VideoEntry};
pub use decode::{DecodeStats, Decoder, WarmDecoder};
pub use encode::{Encoder, EncoderConfig};
pub use stream::{StreamAccumulator, VideoStream};
pub use synth::{SynthSpec, VideoSynthesizer};

use std::fmt;

/// Errors produced by the codec layer.
#[derive(Debug)]
pub enum CodecError {
    /// The container bytes were malformed or truncated.
    Corrupt {
        /// Human-readable description of the corruption.
        what: &'static str,
    },
    /// A frame index was outside the video.
    FrameOutOfRange {
        /// Requested frame index.
        index: usize,
        /// Number of frames in the video.
        len: usize,
    },
    /// Invalid encoder or synthesis parameters.
    InvalidConfig {
        /// Human-readable description of the invalid parameter.
        what: &'static str,
    },
    /// An underlying frame-buffer operation failed.
    Frame(sand_frame::FrameError),
    /// Filesystem I/O failed.
    Io(std::io::Error),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Corrupt { what } => write!(f, "corrupt video data: {what}"),
            CodecError::FrameOutOfRange { index, len } => {
                write!(f, "frame {index} out of range (video has {len} frames)")
            }
            CodecError::InvalidConfig { what } => write!(f, "invalid codec config: {what}"),
            CodecError::Frame(e) => write!(f, "frame error: {e}"),
            CodecError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for CodecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CodecError::Frame(e) => Some(e),
            CodecError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sand_frame::FrameError> for CodecError {
    fn from(e: sand_frame::FrameError) -> Self {
        CodecError::Frame(e)
    }
}

impl From<std::io::Error> for CodecError {
    fn from(e: std::io::Error) -> Self {
        CodecError::Io(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CodecError>;
