//! Streaming video sources.
//!
//! The paper's configuration selects between `file` and `streaming` input
//! sources; streaming covers online-learning settings where videos arrive
//! continuously (live ingest, content platforms). This module provides a
//! [`VideoStream`]: a lazily synthesized, rate-limited source of encoded
//! videos. Training against it proceeds in *generations*: the consumer
//! snapshots the accumulated videos into a [`Dataset`] whenever enough
//! have arrived, and plans the next epochs over that snapshot.

use crate::dataset::{video_name, Dataset, DatasetSpec, VideoEntry};
use crate::encode::Encoder;
use crate::synth::VideoSynthesizer;
use crate::Result;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A rate-limited source of synthesized encoded videos.
#[derive(Debug)]
pub struct VideoStream {
    spec: DatasetSpec,
    encoder: Encoder,
    next_id: u64,
    started: Instant,
    /// Modeled arrival interval between consecutive videos.
    interval: Duration,
}

impl VideoStream {
    /// Creates a stream producing videos shaped by `spec` (its
    /// `num_videos` bounds the stream length), one every `interval`.
    pub fn new(spec: DatasetSpec, interval: Duration) -> Result<Self> {
        spec.validate()?;
        Ok(VideoStream {
            encoder: Encoder::new(spec.encoder)?,
            spec,
            next_id: 0,
            started: Instant::now(),
            interval,
        })
    }

    /// Total videos this stream will ever produce.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        (self.spec.num_videos as u64).saturating_sub(self.next_id)
    }

    /// Arrival time of the video with id `id`.
    fn arrival(&self, id: u64) -> Instant {
        self.started + self.interval * (id as u32 + 1)
    }

    /// Produces (synthesizes + encodes) the next video, unconditionally.
    fn produce(&mut self) -> Result<VideoEntry> {
        let vid = self.next_id;
        self.next_id += 1;
        let synth = VideoSynthesizer::new(self.spec.synth_spec(vid))?;
        let frames = synth.render_all()?;
        let class_id = (vid % u64::from(self.spec.num_classes)) as u32;
        let encoded = self.encoder.encode(&frames, vid, class_id)?;
        Ok(VideoEntry {
            video_id: vid,
            class_id,
            name: video_name(vid),
            encoded: Arc::new(encoded),
        })
    }

    /// Returns the next video if it has "arrived", without blocking.
    pub fn poll(&mut self) -> Result<Option<VideoEntry>> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        if Instant::now() >= self.arrival(self.next_id) {
            Ok(Some(self.produce()?))
        } else {
            Ok(None)
        }
    }

    /// Blocks (sleeping the arrival gap) until the next video arrives;
    /// `None` when the stream is exhausted.
    pub fn wait_next(&mut self) -> Result<Option<VideoEntry>> {
        if self.remaining() == 0 {
            return Ok(None);
        }
        let due = self.arrival(self.next_id);
        let now = Instant::now();
        if due > now {
            std::thread::sleep(due - now);
        }
        Ok(Some(self.produce()?))
    }

    /// Drains every video that has already arrived.
    pub fn collect_available(&mut self) -> Result<Vec<VideoEntry>> {
        let mut out = Vec::new();
        while let Some(v) = self.poll()? {
            out.push(v);
        }
        Ok(out)
    }
}

/// Accumulates streamed videos and cuts dataset snapshots ("generations")
/// for the training engine.
#[derive(Debug, Default)]
pub struct StreamAccumulator {
    videos: Vec<VideoEntry>,
}

impl StreamAccumulator {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        StreamAccumulator::default()
    }

    /// Adds an arrived video.
    pub fn push(&mut self, video: VideoEntry) {
        self.videos.push(video);
    }

    /// Videos accumulated so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// True when nothing has arrived yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Cuts a dataset snapshot over everything accumulated so far.
    #[must_use]
    pub fn snapshot(&self) -> Dataset {
        Dataset::from_videos(self.videos.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;

    fn spec(n: usize) -> DatasetSpec {
        DatasetSpec {
            num_videos: n,
            width: 16,
            height: 16,
            frames_per_video: 8,
            ..Default::default()
        }
    }

    #[test]
    fn stream_produces_in_order_and_ends() {
        let mut s = VideoStream::new(spec(3), Duration::ZERO).unwrap();
        let mut seen = Vec::new();
        while let Some(v) = s.wait_next().unwrap() {
            seen.push(v.video_id);
        }
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(s.wait_next().unwrap().is_none());
    }

    #[test]
    fn streamed_videos_match_batch_generation() {
        // Streaming and batch generation produce identical encodings for
        // the same spec and seed.
        let sp = spec(2);
        let batch = Dataset::generate(&sp).unwrap();
        let mut s = VideoStream::new(sp, Duration::ZERO).unwrap();
        for expected in batch.videos() {
            let v = s.wait_next().unwrap().unwrap();
            assert_eq!(*v.encoded, *expected.encoded);
        }
    }

    #[test]
    fn poll_respects_arrival_times() {
        let mut s = VideoStream::new(spec(2), Duration::from_secs(3600)).unwrap();
        // Nothing has arrived yet on an hour-long interval.
        assert!(s.poll().unwrap().is_none());
        assert_eq!(s.remaining(), 2);
    }

    #[test]
    fn accumulator_snapshots_grow() {
        let mut s = VideoStream::new(spec(3), Duration::ZERO).unwrap();
        let mut acc = StreamAccumulator::new();
        acc.push(s.wait_next().unwrap().unwrap());
        let snap1 = acc.snapshot();
        assert_eq!(snap1.len(), 1);
        acc.push(s.wait_next().unwrap().unwrap());
        acc.push(s.wait_next().unwrap().unwrap());
        let snap2 = acc.snapshot();
        assert_eq!(snap2.len(), 3);
        // Snapshots decode fine.
        let mut dec = Decoder::new(&snap2.videos()[2].encoded);
        assert_eq!(dec.decode_all().unwrap().len(), 8);
    }
}
