//! The encoder: closed-loop GOP encoding with residual quantization.

use crate::container::{ContainerHeader, EncodedFrame, EncodedVideo, FrameKind};
use crate::{CodecError, Result};
use sand_frame::wire::rle_pack;
use sand_frame::Frame;

/// Encoder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncoderConfig {
    /// Group-of-pictures size: one I-frame every `gop_size` frames.
    pub gop_size: usize,
    /// Uniform quantizer step (1 = lossless, larger = lossier/smaller).
    pub quantizer: u8,
    /// Frames per second in millihertz.
    pub fps_milli: u32,
    /// Number of B-frames between consecutive anchors (0 = IPPP streams).
    ///
    /// With `b_frames = 2` a GOP looks like `I B B P B B P ...` in
    /// display order: anchors every 3 frames, bidirectionally predicted
    /// frames in between. B-frames reference both surrounding anchors
    /// and are never referenced themselves.
    pub b_frames: usize,
}

impl Default for EncoderConfig {
    fn default() -> Self {
        EncoderConfig {
            gop_size: 12,
            quantizer: 4,
            fps_milli: 30_000,
            b_frames: 0,
        }
    }
}

impl EncoderConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.gop_size == 0 {
            return Err(CodecError::InvalidConfig {
                what: "gop_size must be >= 1",
            });
        }
        if self.quantizer == 0 {
            return Err(CodecError::InvalidConfig {
                what: "quantizer must be >= 1",
            });
        }
        if self.b_frames + 1 >= self.gop_size && self.gop_size > 1 {
            return Err(CodecError::InvalidConfig {
                what: "b_frames must leave room for at least one P anchor per GOP",
            });
        }
        Ok(())
    }

    /// Anchor spacing in display order (`b_frames + 1`).
    #[must_use]
    pub const fn anchor_spacing(&self) -> usize {
        self.b_frames + 1
    }
}

/// A GOP-structured video encoder.
///
/// Encoding is *closed-loop*: residuals for P-frames are computed against
/// the frame the decoder will reconstruct (not the pristine source), so
/// quantization error never accumulates across a GOP — reconstruction error
/// stays bounded by `quantizer / 2` per pixel.
#[derive(Debug, Clone)]
pub struct Encoder {
    config: EncoderConfig,
}

/// Escape marker in the residual stream: the next two bytes carry a raw
/// little-endian `i16` step count for residuals too large for one byte.
pub(crate) const RESIDUAL_ESCAPE: u8 = 255;

/// Quantizes a signed residual into step counts with a dead zone.
///
/// Truncation toward zero (rather than round-to-nearest) leaves residuals
/// smaller than one step at zero. This avoids the classic limit-cycle
/// artifact where a static region's intra quantization error oscillates
/// forever between +1 and -1 steps, and it is what keeps P-frames of
/// static content all-zero (and therefore tiny after RLE). The price is a
/// per-pixel error bound of `q - 1` instead of `q / 2`.
fn residual_steps(residual: i16, q: i16) -> i16 {
    residual / q
}

/// Appends the escape-coded representation of `steps` to `stream`.
///
/// Common steps (|steps| <= 126) take one biased byte (2..=254); rare large
/// steps take the [`RESIDUAL_ESCAPE`] marker plus two raw bytes. Zero
/// residuals map to byte 128, so static regions RLE-compress tightly.
fn put_steps(stream: &mut Vec<u8>, steps: i16) {
    if (-126..=126).contains(&steps) {
        stream.push((steps + 128) as u8);
    } else {
        stream.push(RESIDUAL_ESCAPE);
        stream.extend_from_slice(&steps.to_le_bytes());
    }
}

/// Reads one escape-coded step count from `stream` at `pos`.
pub(crate) fn get_steps(stream: &[u8], pos: &mut usize) -> Option<i16> {
    let b = *stream.get(*pos)?;
    *pos += 1;
    if b == RESIDUAL_ESCAPE {
        let lo = *stream.get(*pos)?;
        let hi = *stream.get(*pos + 1)?;
        *pos += 2;
        Some(i16::from_le_bytes([lo, hi]))
    } else {
        Some(i16::from(b) - 128)
    }
}

/// Quantizes an intra pixel value, returning the quantization bucket.
fn quantize_intra(v: u8, q: u16) -> u8 {
    // The bucket index always fits in u8: (255 + q/2) / q <= 255 for q >= 1.
    ((u16::from(v) + q / 2) / q) as u8
}

/// Reverses [`quantize_intra`].
pub(crate) fn dequantize_intra(bucket: u8, q: u16) -> u8 {
    (u16::from(bucket) * q).min(255) as u8
}

impl Encoder {
    /// Creates an encoder after validating the configuration.
    pub fn new(config: EncoderConfig) -> Result<Self> {
        config.validate()?;
        Ok(Encoder { config })
    }

    /// The active configuration.
    #[must_use]
    pub const fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// Encodes a sequence of same-shaped frames into a video.
    ///
    /// `video_id` and `class_id` are carried verbatim into the header.
    pub fn encode(&self, frames: &[Frame], video_id: u64, class_id: u32) -> Result<EncodedVideo> {
        let first = frames.first().ok_or(CodecError::InvalidConfig {
            what: "cannot encode an empty video",
        })?;
        for f in frames {
            if !f.same_shape(first) {
                return Err(CodecError::InvalidConfig {
                    what: "all frames must share a shape",
                });
            }
        }
        let q = u16::from(self.config.quantizer);
        let qi = i16::from(self.config.quantizer);
        let gop = self.config.gop_size;
        let spacing = self.config.anchor_spacing();
        // Display-order frame kinds: I at GOP starts, anchors (P) every
        // `spacing` frames within the GOP, B in between. A GOP's trailing
        // frames past the last anchor become P-chained so no B-run ends a
        // stream without a following anchor.
        let kind_of = |i: usize| -> FrameKind {
            let pos = i % gop;
            if pos == 0 {
                FrameKind::Intra
            } else if pos.is_multiple_of(spacing) {
                FrameKind::Predicted
            } else {
                // Is there an anchor after this frame within the GOP (or
                // does the next GOP's I-frame follow the run)?
                let gop_start = i - pos;
                let gop_end = (gop_start + gop).min(frames.len());
                let next_anchor_in_gop =
                    (i + 1..gop_end).any(|k| (k - gop_start).is_multiple_of(spacing));
                let next_gop_follows = gop_end < frames.len();
                if next_anchor_in_gop || next_gop_follows {
                    FrameKind::Bidirectional
                } else {
                    FrameKind::Predicted
                }
            }
        };
        // Encode the residual of `src` against `predictor`, closed-loop;
        // returns (payload, reconstruction).
        let encode_residual = |src: &[u8], predictor: &[u8]| -> (Vec<u8>, Vec<u8>) {
            let mut stream = Vec::with_capacity(src.len());
            let mut recon = Vec::with_capacity(src.len());
            for (&v, &p) in src.iter().zip(predictor.iter()) {
                let residual = i16::from(v) - i16::from(p);
                let steps = residual_steps(residual, qi);
                put_steps(&mut stream, steps);
                recon.push((i16::from(p) + steps * qi).clamp(0, 255) as u8);
            }
            let mut payload = Vec::with_capacity(stream.len() / 2 + 8);
            sand_frame::wire::put_varint(&mut payload, stream.len() as u64);
            payload.extend_from_slice(&rle_pack(&stream));
            (payload, recon)
        };
        // Pass 1: anchors in display order (B slots left empty).
        let mut encoded: Vec<Option<EncodedFrame>> = vec![None; frames.len()];
        let mut anchor_recons: Vec<Option<Vec<u8>>> = vec![None; frames.len()];
        let mut prev_anchor: Option<usize> = None;
        for (i, frame) in frames.iter().enumerate() {
            match kind_of(i) {
                FrameKind::Intra => {
                    let src = frame.as_bytes();
                    let buckets: Vec<u8> = src.iter().map(|&v| quantize_intra(v, q)).collect();
                    let recon: Vec<u8> = buckets.iter().map(|&b| dequantize_intra(b, q)).collect();
                    let payload = rle_pack(&filter_rows(&buckets, frame.stride()));
                    encoded[i] = Some(EncodedFrame {
                        kind: FrameKind::Intra,
                        payload,
                    });
                    anchor_recons[i] = Some(recon);
                    prev_anchor = Some(i);
                }
                FrameKind::Predicted => {
                    let prev = prev_anchor.expect("P-frame always has a prior anchor");
                    let predictor = anchor_recons[prev].as_ref().expect("anchor recon kept");
                    let (payload, recon) = encode_residual(frame.as_bytes(), predictor);
                    encoded[i] = Some(EncodedFrame {
                        kind: FrameKind::Predicted,
                        payload,
                    });
                    anchor_recons[i] = Some(recon);
                    prev_anchor = Some(i);
                }
                FrameKind::Bidirectional => {}
            }
        }
        // Pass 2: B-frames predicted from the average of their anchors.
        for (i, frame) in frames.iter().enumerate() {
            if encoded[i].is_some() {
                continue;
            }
            let before = (0..i).rev().find(|&k| anchor_recons[k].is_some());
            let after = (i + 1..frames.len()).find(|&k| anchor_recons[k].is_some());
            let (before, after) = match (before, after) {
                (Some(b), Some(a)) => (b, a),
                _ => unreachable!("kind_of guarantees anchors around every B-frame"),
            };
            let pa = anchor_recons[before].as_ref().expect("anchor recon");
            let pb = anchor_recons[after].as_ref().expect("anchor recon");
            let predictor: Vec<u8> = pa
                .iter()
                .zip(pb.iter())
                .map(|(&a, &b)| ((u16::from(a) + u16::from(b)) / 2) as u8)
                .collect();
            let (payload, _) = encode_residual(frame.as_bytes(), &predictor);
            encoded[i] = Some(EncodedFrame {
                kind: FrameKind::Bidirectional,
                payload,
            });
        }
        let encoded: Vec<EncodedFrame> = encoded
            .into_iter()
            .map(|f| f.expect("all frames encoded"))
            .collect();
        Ok(EncodedVideo {
            header: ContainerHeader {
                video_id,
                class_id,
                width: first.width(),
                height: first.height(),
                fps_milli: self.config.fps_milli,
                gop_size: self.config.gop_size,
                format: first.format(),
                quantizer: self.config.quantizer,
            },
            frames: encoded,
        })
    }
}

/// Row-delta filter applied to I-frame buckets before entropy packing.
fn filter_rows(data: &[u8], stride: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    out.extend_from_slice(&data[..stride.min(data.len())]);
    for y in 1..data.len() / stride {
        for x in 0..stride {
            out.push(data[y * stride + x].wrapping_sub(data[(y - 1) * stride + x]));
        }
    }
    out
}

/// Inverse of [`filter_rows`]; used by the decoder.
pub(crate) fn unfilter_rows(data: &mut [u8], stride: usize) {
    for y in 1..data.len() / stride {
        for x in 0..stride {
            let prev = data[(y - 1) * stride + x];
            data[y * stride + x] = data[y * stride + x].wrapping_add(prev);
        }
    }
}

/// Internal quantization hooks shared with the decoder.
pub(crate) mod q {
    pub(crate) use super::{dequantize_intra, get_steps};
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_frame::PixelFormat;

    fn flat(v: u8) -> Frame {
        let mut f = Frame::zeroed(8, 8, PixelFormat::Gray8).unwrap();
        for b in f.as_bytes_mut() {
            *b = v;
        }
        f
    }

    #[test]
    fn config_validation() {
        assert!(Encoder::new(EncoderConfig {
            gop_size: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Encoder::new(EncoderConfig {
            quantizer: 0,
            ..Default::default()
        })
        .is_err());
        assert!(Encoder::new(EncoderConfig::default()).is_ok());
    }

    #[test]
    fn empty_video_rejected() {
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        assert!(enc.encode(&[], 0, 0).is_err());
    }

    #[test]
    fn mixed_shapes_rejected() {
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        let a = Frame::zeroed(8, 8, PixelFormat::Gray8).unwrap();
        let b = Frame::zeroed(4, 4, PixelFormat::Gray8).unwrap();
        assert!(enc.encode(&[a, b], 0, 0).is_err());
    }

    #[test]
    fn gop_structure_is_periodic() {
        let enc = Encoder::new(EncoderConfig {
            gop_size: 4,
            quantizer: 2,
            fps_milli: 30_000,
            b_frames: 0,
        })
        .unwrap();
        let frames: Vec<Frame> = (0..10).map(|i| flat(i * 10)).collect();
        let v = enc.encode(&frames, 1, 0).unwrap();
        for (i, f) in v.frames.iter().enumerate() {
            let expect = if i % 4 == 0 {
                FrameKind::Intra
            } else {
                FrameKind::Predicted
            };
            assert_eq!(f.kind, expect, "frame {i}");
        }
    }

    #[test]
    fn quantizer_roundtrip_error_bounded() {
        for q in [1u16, 2, 4, 8] {
            for v in 0..=255u8 {
                let back = dequantize_intra(quantize_intra(v, q), q);
                assert!(
                    u16::from(v.abs_diff(back)) <= q / 2 + 1,
                    "q={q} v={v} back={back}"
                );
            }
        }
    }

    #[test]
    fn residual_steps_roundtrip_via_escape_coding() {
        for q in [1i16, 2, 4, 8] {
            for r in [-255i16, -200, -100, -3, 0, 3, 100, 200, 255] {
                let steps = residual_steps(r, q);
                let mut stream = Vec::new();
                put_steps(&mut stream, steps);
                let mut pos = 0;
                assert_eq!(get_steps(&stream, &mut pos), Some(steps));
                assert_eq!(pos, stream.len());
                let back = steps * q;
                assert!((r - back).abs() < q, "q={q} r={r} back={back}");
            }
        }
    }

    #[test]
    fn escape_marker_used_only_for_large_steps() {
        let mut small = Vec::new();
        put_steps(&mut small, 126);
        assert_eq!(small.len(), 1);
        let mut large = Vec::new();
        put_steps(&mut large, 127);
        assert_eq!(large.len(), 3);
        assert_eq!(large[0], RESIDUAL_ESCAPE);
        let mut pos = 0;
        assert_eq!(get_steps(&large, &mut pos), Some(127));
    }

    #[test]
    fn b_frame_gop_pattern() {
        let enc = Encoder::new(EncoderConfig {
            gop_size: 12,
            quantizer: 2,
            fps_milli: 30_000,
            b_frames: 2,
        })
        .unwrap();
        let frames: Vec<Frame> = (0..14).map(|i| flat(i * 9)).collect();
        let v = enc.encode(&frames, 1, 0).unwrap();
        use FrameKind::{Bidirectional as B, Intra as I, Predicted as P};
        let kinds: Vec<FrameKind> = v.frames.iter().map(|f| f.kind).collect();
        // GOP 0: I B B P B B P B B P B B | GOP 1: I, then a trailing frame
        // with no following anchor becomes P.
        assert_eq!(kinds, vec![I, B, B, P, B, B, P, B, B, P, B, B, I, P]);
    }

    #[test]
    fn b_frames_must_leave_room_for_anchors() {
        assert!(Encoder::new(EncoderConfig {
            gop_size: 4,
            quantizer: 2,
            fps_milli: 30_000,
            b_frames: 3,
        })
        .is_err());
        assert!(Encoder::new(EncoderConfig {
            gop_size: 1,
            quantizer: 2,
            fps_milli: 30_000,
            b_frames: 0,
        })
        .is_ok());
    }

    #[test]
    fn static_video_compresses_tightly() {
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        let frames: Vec<Frame> = (0..24).map(|_| flat(100)).collect();
        let v = enc.encode(&frames, 1, 0).unwrap();
        // P-frames of a static scene are all-zero residuals -> tiny.
        let p_sizes: Vec<usize> = v
            .frames
            .iter()
            .filter(|f| f.kind == FrameKind::Predicted)
            .map(|f| f.payload.len())
            .collect();
        assert!(
            p_sizes.iter().all(|&s| s < 16),
            "p-frame sizes: {p_sizes:?}"
        );
    }
}
