//! Procedural video synthesis.
//!
//! Experiments need datasets whose *structure* matches real VDL corpora:
//! many videos, temporal coherence (so P-frames compress), per-video
//! variety (so frames differ), and a learnable class signal (so the tiny
//! model in `sand-train` converges and the Fig. 20 loss-curve experiment is
//! meaningful).
//!
//! Each video is a static per-video background (a column-wise pattern plus
//! a fixed grain field, both of which the closed-loop P-frame coder cancels
//! out) with a set of moving blobs on top. Blob count, size, and velocity
//! are functions of the class label, so temporal-difference statistics
//! separate the classes linearly. Everything is seeded: the same spec
//! always yields identical pixels.

use crate::{CodecError, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sand_frame::{Frame, PixelFormat};

/// Parameters for synthesizing one video.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthSpec {
    /// Identifier baked into frame metadata and the pattern phase.
    pub video_id: u64,
    /// Class label controlling the motion signature.
    pub class_id: u32,
    /// Number of distinct classes in the dataset.
    pub num_classes: u32,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Number of frames to render.
    pub frames: usize,
    /// Pixel format of the rendered frames.
    pub format: PixelFormat,
    /// Amplitude of the static per-video grain, in pixel levels.
    pub noise_level: u8,
    /// Base random seed; combined with `video_id` per video.
    pub seed: u64,
}

impl Default for SynthSpec {
    fn default() -> Self {
        SynthSpec {
            video_id: 0,
            class_id: 0,
            num_classes: 4,
            width: 64,
            height: 64,
            frames: 48,
            format: PixelFormat::Rgb8,
            noise_level: 4,
            seed: 0x5eed,
        }
    }
}

impl SynthSpec {
    /// Validates the specification.
    pub fn validate(&self) -> Result<()> {
        if self.width == 0 || self.height == 0 {
            return Err(CodecError::InvalidConfig {
                what: "synth dimensions must be nonzero",
            });
        }
        if self.frames == 0 {
            return Err(CodecError::InvalidConfig {
                what: "synth frame count must be nonzero",
            });
        }
        if self.num_classes == 0 {
            return Err(CodecError::InvalidConfig {
                what: "num_classes must be nonzero",
            });
        }
        Ok(())
    }
}

/// One moving blob.
#[derive(Debug, Clone, Copy)]
struct Blob {
    x0: f64,
    y0: f64,
    vx: f64,
    vy: f64,
    half: f64,
    color: [u8; 3],
}

/// Renders frames for one [`SynthSpec`].
#[derive(Debug)]
pub struct VideoSynthesizer {
    spec: SynthSpec,
    /// Per-column background values (one per channel).
    background: Vec<[u8; 3]>,
    /// Static grain field, one signed offset per pixel.
    grain: Vec<i8>,
    blobs: Vec<Blob>,
}

impl VideoSynthesizer {
    /// Creates a synthesizer, deriving background, grain, and blob motion
    /// from the spec.
    pub fn new(spec: SynthSpec) -> Result<Self> {
        spec.validate()?;
        let mut rng = StdRng::seed_from_u64(spec.seed ^ spec.video_id.wrapping_mul(0x9e37_79b9));
        let c = f64::from(spec.class_id % spec.num_classes);
        // Column-wise background: smooth sinusoid, identical down each
        // column so I-frame row-delta filtering zeroes it out.
        let phase: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let freq: f64 = rng.gen_range(0.04..0.12);
        let background: Vec<[u8; 3]> = (0..spec.width)
            .map(|x| {
                let base = 120.0 + 70.0 * (freq * x as f64 + phase).sin();
                [
                    base.clamp(0.0, 255.0) as u8,
                    (base * 0.8 + 20.0).clamp(0.0, 255.0) as u8,
                    (base * 0.6 + 40.0).clamp(0.0, 255.0) as u8,
                ]
            })
            .collect();
        // Static grain: per-pixel signed offsets fixed for the whole video.
        let amp = i16::from(spec.noise_level);
        let grain: Vec<i8> = (0..spec.width * spec.height)
            .map(|_| {
                if amp > 0 {
                    rng.gen_range(-amp..=amp) as i8
                } else {
                    0
                }
            })
            .collect();
        // Class-dependent blobs: count, speed, and size all scale with the
        // class index, giving linearly separable temporal statistics.
        let blob_count = 2 + (spec.class_id % spec.num_classes) as usize;
        let speed = 0.8 + 1.1 * c;
        let blobs: Vec<Blob> = (0..blob_count)
            .map(|_| {
                let dir: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
                Blob {
                    x0: rng.gen_range(0.0..spec.width as f64),
                    y0: rng.gen_range(0.0..spec.height as f64),
                    vx: speed * dir.cos(),
                    vy: speed * dir.sin(),
                    half: rng.gen_range(2.0..4.0) + 1.2 * c,
                    color: [rng.gen(), rng.gen(), rng.gen()],
                }
            })
            .collect();
        Ok(VideoSynthesizer {
            spec,
            background,
            grain,
            blobs,
        })
    }

    /// The underlying spec.
    #[must_use]
    pub const fn spec(&self) -> &SynthSpec {
        &self.spec
    }

    /// Renders frame `t`.
    pub fn render_frame(&self, t: usize) -> Result<Frame> {
        let s = &self.spec;
        let mut frame = Frame::zeroed(s.width, s.height, s.format)?;
        let ch = s.format.channels();
        let tf = t as f64;
        {
            let buf = frame.as_bytes_mut();
            // Background + grain.
            for y in 0..s.height {
                for x in 0..s.width {
                    let g = i16::from(self.grain[y * s.width + x]);
                    let off = (y * s.width + x) * ch;
                    for k in 0..ch {
                        let v = i16::from(self.background[x][k]) + g;
                        buf[off + k] = v.clamp(0, 255) as u8;
                    }
                }
            }
            // Blobs, wrapping around the frame edges.
            let (wf, hf) = (s.width as f64, s.height as f64);
            for b in &self.blobs {
                let cx = (b.x0 + b.vx * tf).rem_euclid(wf);
                let cy = (b.y0 + b.vy * tf).rem_euclid(hf);
                let r = b.half as isize;
                for dy in -r..=r {
                    for dx in -r..=r {
                        let px = (cx as isize + dx).rem_euclid(s.width as isize) as usize;
                        let py = (cy as isize + dy).rem_euclid(s.height as isize) as usize;
                        let off = (py * s.width + px) * ch;
                        for k in 0..ch {
                            buf[off + k] = b.color[k.min(2)];
                        }
                    }
                }
            }
        }
        frame.meta.index = t as u64;
        frame.meta.video_id = s.video_id;
        Ok(frame)
    }

    /// Renders the whole video.
    pub fn render_all(&self) -> Result<Vec<Frame>> {
        (0..self.spec.frames)
            .map(|t| self.render_frame(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_rendering() {
        let spec = SynthSpec {
            video_id: 9,
            class_id: 1,
            ..Default::default()
        };
        let a = VideoSynthesizer::new(spec)
            .unwrap()
            .render_frame(5)
            .unwrap();
        let b = VideoSynthesizer::new(spec)
            .unwrap()
            .render_frame(5)
            .unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn different_videos_differ() {
        let a = VideoSynthesizer::new(SynthSpec {
            video_id: 1,
            ..Default::default()
        })
        .unwrap()
        .render_frame(0)
        .unwrap();
        let b = VideoSynthesizer::new(SynthSpec {
            video_id: 2,
            ..Default::default()
        })
        .unwrap()
        .render_frame(0)
        .unwrap();
        assert_ne!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn consecutive_frames_are_correlated() {
        let s = VideoSynthesizer::new(SynthSpec::default()).unwrap();
        let f0 = s.render_frame(0).unwrap();
        let f1 = s.render_frame(1).unwrap();
        let f20 = s.render_frame(20).unwrap();
        let near = f0.mean_abs_diff(&f1).unwrap();
        let far = f0.mean_abs_diff(&f20).unwrap();
        assert!(near < far, "temporal coherence: near={near} far={far}");
    }

    #[test]
    fn frames_change_over_time() {
        let s = VideoSynthesizer::new(SynthSpec::default()).unwrap();
        let f0 = s.render_frame(0).unwrap();
        let f1 = s.render_frame(1).unwrap();
        assert_ne!(f0.as_bytes(), f1.as_bytes());
    }

    #[test]
    fn classes_have_distinct_motion() {
        // Mean temporal difference grows with class index (faster, bigger,
        // and more blobs).
        let diff_for = |class_id: u32| {
            let s = VideoSynthesizer::new(SynthSpec {
                class_id,
                video_id: 3,
                noise_level: 0,
                ..Default::default()
            })
            .unwrap();
            let a = s.render_frame(0).unwrap();
            let b = s.render_frame(2).unwrap();
            a.mean_abs_diff(&b).unwrap()
        };
        assert!(diff_for(3) > diff_for(0));
    }

    #[test]
    fn invalid_specs_rejected() {
        assert!(VideoSynthesizer::new(SynthSpec {
            width: 0,
            ..Default::default()
        })
        .is_err());
        assert!(VideoSynthesizer::new(SynthSpec {
            frames: 0,
            ..Default::default()
        })
        .is_err());
        assert!(VideoSynthesizer::new(SynthSpec {
            num_classes: 0,
            ..Default::default()
        })
        .is_err());
    }

    #[test]
    fn metadata_carried() {
        let s = VideoSynthesizer::new(SynthSpec {
            video_id: 42,
            ..Default::default()
        })
        .unwrap();
        let f = s.render_frame(7).unwrap();
        assert_eq!(f.meta.video_id, 42);
        assert_eq!(f.meta.index, 7);
    }

    #[test]
    fn render_all_length() {
        let s = VideoSynthesizer::new(SynthSpec {
            frames: 5,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(s.render_all().unwrap().len(), 5);
    }

    #[test]
    fn gray_format_supported() {
        let s = VideoSynthesizer::new(SynthSpec {
            format: PixelFormat::Gray8,
            ..Default::default()
        })
        .unwrap();
        let f = s.render_frame(0).unwrap();
        assert_eq!(f.channels(), 1);
    }
}
