//! The `.svid` container format.
//!
//! Layout (all integers LEB128 varints unless noted):
//!
//! ```text
//! magic "SVID" (4 bytes)
//! version (1 byte)
//! video_id, class_id, width, height, fps_milli, gop_size, format tag (1 byte)
//! frame_count
//! frame_count x { kind (1 byte), payload_len }      <- the frame index
//! concatenated frame payloads
//! ```
//!
//! The frame index lets a decoder locate the keyframe preceding any target
//! frame and skip directly to its payload, mirroring the seek tables of
//! real containers.

use crate::{CodecError, Result};
use sand_frame::wire::{get_varint, put_varint};
use sand_frame::PixelFormat;

/// Magic bytes identifying a SAND video ("SVID").
pub const MAGIC: [u8; 4] = *b"SVID";

/// Container format version understood by this build.
pub const VERSION: u8 = 1;

/// How a coded frame is predicted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FrameKind {
    /// Intra-coded keyframe: decodable on its own.
    Intra,
    /// Predicted frame: requires the previous reconstructed *anchor*
    /// (the I- or P-frame before it in display order).
    Predicted,
    /// Bidirectionally predicted frame: requires both the surrounding
    /// anchors. B-frames are never used as references themselves.
    Bidirectional,
}

impl FrameKind {
    /// Stable numeric tag for the container.
    #[must_use]
    pub const fn tag(self) -> u8 {
        match self {
            FrameKind::Intra => 0,
            FrameKind::Predicted => 1,
            FrameKind::Bidirectional => 2,
        }
    }

    /// Inverse of [`FrameKind::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        match tag {
            0 => Ok(FrameKind::Intra),
            1 => Ok(FrameKind::Predicted),
            2 => Ok(FrameKind::Bidirectional),
            _ => Err(CodecError::Corrupt {
                what: "unknown frame kind",
            }),
        }
    }

    /// True for frames other frames may reference (I and P).
    #[must_use]
    pub const fn is_anchor(self) -> bool {
        matches!(self, FrameKind::Intra | FrameKind::Predicted)
    }
}

/// One coded frame: kind plus entropy-packed payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedFrame {
    /// Keyframe or predicted.
    pub kind: FrameKind,
    /// Entropy-coded payload bytes.
    pub payload: Vec<u8>,
}

/// Stream-level metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContainerHeader {
    /// Identifier of this video within its dataset.
    pub video_id: u64,
    /// Ground-truth class label (used by the synthetic datasets).
    pub class_id: u32,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frames per second, in millihertz (e.g. 30000 = 30 fps).
    pub fps_milli: u32,
    /// Group-of-pictures size used at encode time.
    pub gop_size: usize,
    /// Pixel format of the decoded frames.
    pub format: PixelFormat,
    /// Quantizer step used at encode time.
    pub quantizer: u8,
}

impl ContainerHeader {
    /// Presentation timestamp of frame `index`, in microseconds.
    #[must_use]
    pub fn timestamp_us(&self, index: usize) -> u64 {
        if self.fps_milli == 0 {
            return 0;
        }
        (index as u64) * 1_000_000_000 / u64::from(self.fps_milli)
    }
}

/// A fully encoded video: header plus indexed frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedVideo {
    /// Stream metadata.
    pub header: ContainerHeader,
    /// Coded frames in display order.
    pub frames: Vec<EncodedFrame>,
}

impl EncodedVideo {
    /// Number of frames in the video.
    #[must_use]
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Total size of the encoded representation in bytes.
    #[must_use]
    pub fn encoded_size(&self) -> u64 {
        let payload: usize = self.frames.iter().map(|f| f.payload.len()).sum();
        (payload + 64 + self.frames.len() * 3) as u64
    }

    /// Index of the keyframe at or before `index`.
    ///
    /// This is where any decode targeting `index` must start.
    pub fn keyframe_before(&self, index: usize) -> Result<usize> {
        if index >= self.frames.len() {
            return Err(CodecError::FrameOutOfRange {
                index,
                len: self.frames.len(),
            });
        }
        let mut k = index;
        loop {
            if self.frames[k].kind == FrameKind::Intra {
                return Ok(k);
            }
            if k == 0 {
                // Malformed stream: no leading keyframe.
                return Err(CodecError::Corrupt {
                    what: "stream does not start with a keyframe",
                });
            }
            k -= 1;
        }
    }

    /// Index of the anchor (I or P) at or before `index`.
    pub fn anchor_before(&self, index: usize) -> Result<usize> {
        if index >= self.frames.len() {
            return Err(CodecError::FrameOutOfRange {
                index,
                len: self.frames.len(),
            });
        }
        let mut k = index;
        loop {
            if self.frames[k].kind.is_anchor() {
                return Ok(k);
            }
            if k == 0 {
                return Err(CodecError::Corrupt {
                    what: "stream does not start with an anchor",
                });
            }
            k -= 1;
        }
    }

    /// Index of the anchor strictly after `index`, if any.
    ///
    /// Required to decode a B-frame at `index`; `None` for a trailing
    /// B-run (which a well-formed encoder never emits).
    pub fn anchor_after(&self, index: usize) -> Result<Option<usize>> {
        if index >= self.frames.len() {
            return Err(CodecError::FrameOutOfRange {
                index,
                len: self.frames.len(),
            });
        }
        Ok(self.frames[index + 1..]
            .iter()
            .position(|f| f.kind.is_anchor())
            .map(|off| index + 1 + off))
    }

    /// Serializes the video to container bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.encoded_size() as usize);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        let h = &self.header;
        put_varint(&mut out, h.video_id);
        put_varint(&mut out, u64::from(h.class_id));
        put_varint(&mut out, h.width as u64);
        put_varint(&mut out, h.height as u64);
        put_varint(&mut out, u64::from(h.fps_milli));
        put_varint(&mut out, h.gop_size as u64);
        out.push(h.format.tag());
        out.push(h.quantizer);
        put_varint(&mut out, self.frames.len() as u64);
        for f in &self.frames {
            out.push(f.kind.tag());
            put_varint(&mut out, f.payload.len() as u64);
        }
        for f in &self.frames {
            out.extend_from_slice(&f.payload);
        }
        out
    }

    /// Parses container bytes back into an [`EncodedVideo`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        if bytes.len() < 5 || bytes[..4] != MAGIC {
            return Err(CodecError::Corrupt {
                what: "bad container magic",
            });
        }
        if bytes[4] != VERSION {
            return Err(CodecError::Corrupt {
                what: "unsupported container version",
            });
        }
        let mut pos = 5;
        let gv = |pos: &mut usize| -> Result<u64> {
            get_varint(bytes, pos).map_err(|_| CodecError::Corrupt {
                what: "truncated header",
            })
        };
        let video_id = gv(&mut pos)?;
        let class_id = gv(&mut pos)? as u32;
        let width = gv(&mut pos)? as usize;
        let height = gv(&mut pos)? as usize;
        let fps_milli = gv(&mut pos)? as u32;
        let gop_size = gv(&mut pos)? as usize;
        let format = PixelFormat::from_tag(*bytes.get(pos).ok_or(CodecError::Corrupt {
            what: "truncated format",
        })?)
        .map_err(|_| CodecError::Corrupt {
            what: "bad pixel format",
        })?;
        pos += 1;
        let quantizer = *bytes.get(pos).ok_or(CodecError::Corrupt {
            what: "truncated quantizer",
        })?;
        pos += 1;
        let count = gv(&mut pos)? as usize;
        if count > 1 << 24 {
            return Err(CodecError::Corrupt {
                what: "implausible frame count",
            });
        }
        let mut kinds = Vec::with_capacity(count);
        let mut lens = Vec::with_capacity(count);
        for _ in 0..count {
            let kind = FrameKind::from_tag(*bytes.get(pos).ok_or(CodecError::Corrupt {
                what: "truncated frame index",
            })?)?;
            pos += 1;
            let len = gv(&mut pos)? as usize;
            kinds.push(kind);
            lens.push(len);
        }
        let mut frames = Vec::with_capacity(count);
        for i in 0..count {
            let end = pos.checked_add(lens[i]).ok_or(CodecError::Corrupt {
                what: "payload length overflow",
            })?;
            if end > bytes.len() {
                return Err(CodecError::Corrupt {
                    what: "truncated frame payload",
                });
            }
            frames.push(EncodedFrame {
                kind: kinds[i],
                payload: bytes[pos..end].to_vec(),
            });
            pos = end;
        }
        Ok(EncodedVideo {
            header: ContainerHeader {
                video_id,
                class_id,
                width,
                height,
                fps_milli,
                gop_size,
                format,
                quantizer,
            },
            frames,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EncodedVideo {
        EncodedVideo {
            header: ContainerHeader {
                video_id: 12,
                class_id: 3,
                width: 64,
                height: 48,
                fps_milli: 30_000,
                gop_size: 8,
                format: PixelFormat::Rgb8,
                quantizer: 4,
            },
            frames: vec![
                EncodedFrame {
                    kind: FrameKind::Intra,
                    payload: vec![1, 2, 3],
                },
                EncodedFrame {
                    kind: FrameKind::Predicted,
                    payload: vec![4, 5],
                },
                EncodedFrame {
                    kind: FrameKind::Predicted,
                    payload: vec![],
                },
                EncodedFrame {
                    kind: FrameKind::Intra,
                    payload: vec![6],
                },
            ],
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let v = sample();
        let parsed = EncodedVideo::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(parsed, v);
    }

    #[test]
    fn keyframe_before_walks_back() {
        let v = sample();
        assert_eq!(v.keyframe_before(0).unwrap(), 0);
        assert_eq!(v.keyframe_before(2).unwrap(), 0);
        assert_eq!(v.keyframe_before(3).unwrap(), 3);
        assert!(v.keyframe_before(4).is_err());
    }

    #[test]
    fn missing_leading_keyframe_detected() {
        let mut v = sample();
        v.frames[0].kind = FrameKind::Predicted;
        assert!(matches!(
            v.keyframe_before(1),
            Err(CodecError::Corrupt { .. })
        ));
    }

    #[test]
    fn truncation_rejected() {
        let b = sample().to_bytes();
        for cut in [0, 3, 5, 10, b.len() - 1] {
            assert!(EncodedVideo::from_bytes(&b[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut b = sample().to_bytes();
        b[0] = b'Z';
        assert!(EncodedVideo::from_bytes(&b).is_err());
        let mut b2 = sample().to_bytes();
        b2[4] = 99;
        assert!(EncodedVideo::from_bytes(&b2).is_err());
    }

    #[test]
    fn timestamps_follow_fps() {
        let h = sample().header;
        assert_eq!(h.timestamp_us(0), 0);
        assert_eq!(h.timestamp_us(30), 1_000_000);
    }

    #[test]
    fn zero_fps_timestamp_is_zero() {
        let mut h = sample().header;
        h.fps_milli = 0;
        assert_eq!(h.timestamp_us(10), 0);
    }
}
