//! Synthetic dataset generation and loading.
//!
//! A dataset is a directory of `.svid` files (or an in-memory equivalent)
//! plus a manifest. It plays the role of Kinetics-400 / HD-VILA in the
//! paper's experiments: many videos, each belonging to a class, each
//! encoded with GOP structure.

use crate::container::EncodedVideo;
use crate::encode::{Encoder, EncoderConfig};
use crate::synth::{SynthSpec, VideoSynthesizer};
use crate::{CodecError, Result};
use sand_frame::PixelFormat;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Parameters describing a whole synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetSpec {
    /// Number of videos to generate.
    pub num_videos: usize,
    /// Number of classes; video `i` gets class `i % num_classes`.
    pub num_classes: u32,
    /// Frame width in pixels.
    pub width: usize,
    /// Frame height in pixels.
    pub height: usize,
    /// Frames per video.
    pub frames_per_video: usize,
    /// Pixel format.
    pub format: PixelFormat,
    /// Encoder parameters (GOP size, quantizer, fps).
    pub encoder: EncoderConfig,
    /// Additive noise amplitude for synthesis.
    pub noise_level: u8,
    /// Base random seed.
    pub seed: u64,
}

impl Default for DatasetSpec {
    fn default() -> Self {
        DatasetSpec {
            num_videos: 16,
            num_classes: 4,
            width: 64,
            height: 64,
            frames_per_video: 48,
            format: PixelFormat::Rgb8,
            encoder: EncoderConfig::default(),
            noise_level: 6,
            seed: 0x5eed,
        }
    }
}

impl DatasetSpec {
    /// Validates the specification.
    pub fn validate(&self) -> Result<()> {
        if self.num_videos == 0 {
            return Err(CodecError::InvalidConfig {
                what: "num_videos must be nonzero",
            });
        }
        self.encoder.validate()?;
        SynthSpec {
            video_id: 0,
            class_id: 0,
            num_classes: self.num_classes,
            width: self.width,
            height: self.height,
            frames: self.frames_per_video,
            format: self.format,
            noise_level: self.noise_level,
            seed: self.seed,
        }
        .validate()
    }

    /// The synthesis spec for video `video_id` of this dataset.
    #[must_use]
    pub fn synth_spec(&self, video_id: u64) -> SynthSpec {
        SynthSpec {
            video_id,
            class_id: (video_id % u64::from(self.num_classes)) as u32,
            num_classes: self.num_classes,
            width: self.width,
            height: self.height,
            frames: self.frames_per_video,
            format: self.format,
            noise_level: self.noise_level,
            seed: self.seed,
        }
    }
}

/// One video of a dataset: id, class, and the encoded stream.
#[derive(Debug, Clone)]
pub struct VideoEntry {
    /// Video identifier (equals its index in the dataset).
    pub video_id: u64,
    /// Ground-truth class label.
    pub class_id: u32,
    /// Stable name used in view paths, e.g. `video0007`.
    pub name: String,
    /// The encoded video (shared; decoding never mutates it).
    pub encoded: Arc<EncodedVideo>,
}

/// A loaded dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    videos: Vec<VideoEntry>,
    spec: Option<DatasetSpec>,
}

/// Canonical `.svid` file name for a video id.
#[must_use]
pub fn video_file_name(video_id: u64) -> String {
    format!("video{video_id:04}.svid")
}

/// Canonical view name (no extension) for a video id.
#[must_use]
pub fn video_name(video_id: u64) -> String {
    format!("video{video_id:04}")
}

impl Dataset {
    /// Generates a dataset fully in memory.
    pub fn generate(spec: &DatasetSpec) -> Result<Self> {
        spec.validate()?;
        let encoder = Encoder::new(spec.encoder)?;
        let mut videos = Vec::with_capacity(spec.num_videos);
        for vid in 0..spec.num_videos as u64 {
            let synth = VideoSynthesizer::new(spec.synth_spec(vid))?;
            let frames = synth.render_all()?;
            let class_id = (vid % u64::from(spec.num_classes)) as u32;
            let encoded = encoder.encode(&frames, vid, class_id)?;
            videos.push(VideoEntry {
                video_id: vid,
                class_id,
                name: video_name(vid),
                encoded: Arc::new(encoded),
            });
        }
        Ok(Dataset {
            videos,
            spec: Some(*spec),
        })
    }

    /// Generates a dataset and writes each video as a `.svid` file in `dir`.
    pub fn generate_to_dir(spec: &DatasetSpec, dir: &Path) -> Result<Self> {
        let ds = Dataset::generate(spec)?;
        fs::create_dir_all(dir)?;
        for v in &ds.videos {
            fs::write(dir.join(video_file_name(v.video_id)), v.encoded.to_bytes())?;
        }
        Ok(ds)
    }

    /// Loads every `.svid` file from `dir`, sorted by file name.
    pub fn open_dir(dir: &Path) -> Result<Self> {
        let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|e| e == "svid"))
            .collect();
        paths.sort();
        if paths.is_empty() {
            return Err(CodecError::InvalidConfig {
                what: "no .svid files in dataset dir",
            });
        }
        let mut videos = Vec::with_capacity(paths.len());
        for p in paths {
            let bytes = fs::read(&p)?;
            let encoded = EncodedVideo::from_bytes(&bytes)?;
            videos.push(VideoEntry {
                video_id: encoded.header.video_id,
                class_id: encoded.header.class_id,
                name: video_name(encoded.header.video_id),
                encoded: Arc::new(encoded),
            });
        }
        Ok(Dataset { videos, spec: None })
    }

    /// Builds a dataset from pre-encoded videos (used by tests).
    #[must_use]
    pub fn from_videos(videos: Vec<VideoEntry>) -> Self {
        Dataset { videos, spec: None }
    }

    /// All videos in id order.
    #[must_use]
    pub fn videos(&self) -> &[VideoEntry] {
        &self.videos
    }

    /// Number of videos.
    #[must_use]
    pub fn len(&self) -> usize {
        self.videos.len()
    }

    /// True when the dataset holds no videos.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.videos.is_empty()
    }

    /// Looks up a video by id.
    #[must_use]
    pub fn get(&self, video_id: u64) -> Option<&VideoEntry> {
        self.videos.iter().find(|v| v.video_id == video_id)
    }

    /// Looks up a video by its view name (e.g. `video0003`).
    #[must_use]
    pub fn get_by_name(&self, name: &str) -> Option<&VideoEntry> {
        self.videos.iter().find(|v| v.name == name)
    }

    /// The generating spec, when the dataset was synthesized in-process.
    #[must_use]
    pub const fn spec(&self) -> Option<&DatasetSpec> {
        self.spec.as_ref()
    }

    /// Total encoded size in bytes (what "dataset size on disk" means).
    #[must_use]
    pub fn encoded_size(&self) -> u64 {
        self.videos.iter().map(|v| v.encoded.encoded_size()).sum()
    }

    /// Total decoded size in bytes if every frame were materialized raw.
    #[must_use]
    pub fn decoded_size(&self) -> u64 {
        self.videos
            .iter()
            .map(|v| {
                let h = &v.encoded.header;
                (h.width * h.height * h.format.channels() * v.encoded.frame_count()) as u64
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::Decoder;

    fn small_spec() -> DatasetSpec {
        DatasetSpec {
            num_videos: 4,
            num_classes: 2,
            width: 16,
            height: 16,
            frames_per_video: 12,
            encoder: EncoderConfig {
                gop_size: 6,
                quantizer: 4,
                fps_milli: 30_000,
                b_frames: 0,
            },
            ..Default::default()
        }
    }

    #[test]
    fn generate_assigns_round_robin_classes() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        assert_eq!(ds.len(), 4);
        let classes: Vec<u32> = ds.videos().iter().map(|v| v.class_id).collect();
        assert_eq!(classes, vec![0, 1, 0, 1]);
    }

    #[test]
    fn generated_videos_decode() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        for v in ds.videos() {
            let mut dec = Decoder::new(&v.encoded);
            let frames = dec.decode_all().unwrap();
            assert_eq!(frames.len(), 12);
        }
    }

    #[test]
    fn dir_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sand_ds_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let ds = Dataset::generate_to_dir(&small_spec(), &dir).unwrap();
        let loaded = Dataset::open_dir(&dir).unwrap();
        assert_eq!(loaded.len(), ds.len());
        for (a, b) in ds.videos().iter().zip(loaded.videos().iter()) {
            assert_eq!(a.video_id, b.video_id);
            assert_eq!(a.class_id, b.class_id);
            assert_eq!(*a.encoded, *b.encoded);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_empty_dir_fails() {
        let dir = std::env::temp_dir().join(format!("sand_empty_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        assert!(Dataset::open_dir(&dir).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn lookup_by_id_and_name() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        assert_eq!(ds.get(2).unwrap().name, "video0002");
        assert_eq!(ds.get_by_name("video0003").unwrap().video_id, 3);
        assert!(ds.get(99).is_none());
        assert!(ds.get_by_name("nope").is_none());
    }

    #[test]
    fn compression_actually_compresses() {
        let ds = Dataset::generate(&small_spec()).unwrap();
        assert!(
            ds.encoded_size() < ds.decoded_size() / 2,
            "encoded {} vs decoded {}",
            ds.encoded_size(),
            ds.decoded_size()
        );
    }

    #[test]
    fn zero_videos_rejected() {
        let spec = DatasetSpec {
            num_videos: 0,
            ..small_spec()
        };
        assert!(Dataset::generate(&spec).is_err());
    }
}
