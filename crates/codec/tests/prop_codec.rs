//! Property-based tests for the codec: round trips, dependency semantics,
//! and container robustness.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_codec::{
    Dataset, DatasetSpec, Decoder, EncodedVideo, Encoder, EncoderConfig, WarmDecoder,
};
use sand_frame::{Frame, PixelFormat};
use std::sync::Arc;

/// Strategy producing a small raw video (frames share one shape).
fn arb_video() -> impl Strategy<Value = Vec<Frame>> {
    (2usize..14, 4usize..14, 4usize..14).prop_flat_map(|(n, w, h)| {
        prop::collection::vec(prop::collection::vec(any::<u8>(), w * h..=w * h), n..=n).prop_map(
            move |bufs| {
                bufs.into_iter()
                    .map(|b| Frame::from_vec(w, h, PixelFormat::Gray8, b).expect("shape"))
                    .collect()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decode_error_bounded(frames in arb_video(), gop in 1usize..8, quant in 1u8..9, b in 0usize..3) {
        prop_assume!(b + 1 < gop || gop == 1);
        let b = if gop == 1 { 0 } else { b };
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: quant, fps_milli: 30_000, b_frames: b }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let mut dec = Decoder::new(&v);
        let out = dec.decode_all().unwrap();
        prop_assert_eq!(out.len(), frames.len());
        for (a, x) in frames.iter().zip(out.iter()) {
            // Dead-zone residual quantization bounds error by q - 1; intra
            // quantization by q / 2; B-frames compound one more level.
            let base = f64::from(quant.max(1) - 1).max(f64::from(quant) / 2.0);
            let worst = if b == 0 { base } else { 2.0 * f64::from(quant) };
            prop_assert!(a.mean_abs_diff(x).unwrap() <= worst + 1e-9);
        }
    }

    #[test]
    fn b_frame_random_access_equals_sequential(frames in arb_video(), quant in 1u8..5, picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6)) {
        prop_assume!(frames.len() >= 4);
        let enc = Encoder::new(EncoderConfig { gop_size: 8, quantizer: quant, fps_milli: 30_000, b_frames: 2 }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let mut dec_all = Decoder::new(&v);
        let all = dec_all.decode_all().unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(frames.len())).collect();
        let mut dec = Decoder::new(&v);
        let out = dec.decode_indices(&indices).unwrap();
        for (k, &i) in indices.iter().enumerate() {
            prop_assert_eq!(out[k].as_bytes(), all[i].as_bytes());
        }
    }

    #[test]
    fn b_frame_decode_span_matches(frames in arb_video(), picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6)) {
        prop_assume!(frames.len() >= 4);
        let enc = Encoder::new(EncoderConfig { gop_size: 8, quantizer: 2, fps_milli: 30_000, b_frames: 2 }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(frames.len())).collect();
        let mut dec = Decoder::new(&v);
        let predicted = dec.decode_span(&indices).unwrap();
        dec.decode_indices(&indices).unwrap();
        prop_assert_eq!(predicted as u64, dec.stats().frames_decoded);
    }

    #[test]
    fn q1_is_lossless(frames in arb_video(), gop in 1usize..8) {
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: 1, fps_milli: 30_000, b_frames: 0 }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let mut dec = Decoder::new(&v);
        let out = dec.decode_all().unwrap();
        for (a, b) in frames.iter().zip(out.iter()) {
            prop_assert_eq!(a.as_bytes(), b.as_bytes());
        }
    }

    #[test]
    fn container_bytes_roundtrip(frames in arb_video(), gop in 1usize..8, quant in 1u8..9) {
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: quant, fps_milli: 30_000, b_frames: 0 }).unwrap();
        let v = enc.encode(&frames, 3, 2).unwrap();
        let parsed = EncodedVideo::from_bytes(&v.to_bytes()).unwrap();
        prop_assert_eq!(parsed, v);
    }

    #[test]
    fn container_never_panics_on_corruption(frames in arb_video(), idx in any::<prop::sample::Index>(), bit in 0u8..8) {
        let enc = Encoder::new(EncoderConfig::default()).unwrap();
        let v = enc.encode(&frames, 3, 2).unwrap();
        let mut bytes = v.to_bytes();
        let i = idx.index(bytes.len());
        bytes[i] ^= 1 << bit;
        // Parsing and decoding must fail gracefully or succeed, never panic.
        if let Ok(parsed) = EncodedVideo::from_bytes(&bytes) {
            let mut dec = Decoder::new(&parsed);
            let _ = dec.decode_all();
        }
    }

    #[test]
    fn random_access_equals_sequential(frames in arb_video(), gop in 1usize..8, picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6)) {
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: 2, fps_milli: 30_000, b_frames: 0 }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let mut dec_all = Decoder::new(&v);
        let all = dec_all.decode_all().unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(frames.len())).collect();
        let mut dec = Decoder::new(&v);
        let out = dec.decode_indices(&indices).unwrap();
        for (k, &i) in indices.iter().enumerate() {
            prop_assert_eq!(out[k].as_bytes(), all[i].as_bytes());
        }
    }

    #[test]
    fn decode_span_matches_actual_work(frames in arb_video(), gop in 1usize..8, picks in prop::collection::vec(any::<prop::sample::Index>(), 1..6)) {
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: 2, fps_milli: 30_000, b_frames: 0 }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(frames.len())).collect();
        let mut dec = Decoder::new(&v);
        let predicted = dec.decode_span(&indices).unwrap();
        dec.decode_indices(&indices).unwrap();
        prop_assert_eq!(predicted as u64, dec.stats().frames_decoded);
    }

    #[test]
    fn parallel_decode_bit_identical_to_sequential(
        frames in arb_video(),
        gop in 1usize..8,
        quant in 1u8..5,
        b in 0usize..3,
        threads in 2usize..6,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..12),
    ) {
        prop_assume!(b + 1 < gop || gop == 1);
        let b = if gop == 1 { 0 } else { b };
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: quant, fps_milli: 30_000, b_frames: b }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let indices: Vec<usize> = picks.iter().map(|p| p.index(frames.len())).collect();
        let mut seq = Decoder::new(&v);
        let seq_out = seq.decode_indices(&indices).unwrap();
        let mut par = Decoder::with_threads(&v, threads);
        let par_out = par.decode_indices(&indices).unwrap();
        prop_assert_eq!(seq_out.len(), par_out.len());
        for (a, p) in seq_out.iter().zip(par_out.iter()) {
            prop_assert_eq!(a.as_bytes(), p.as_bytes());
            prop_assert_eq!(&a.meta, &p.meta);
        }
        // Work metering must be identical too, not just the pixels.
        prop_assert_eq!(seq.stats(), par.stats());
    }

    #[test]
    fn warm_session_reads_match_cold_decodes(
        frames in arb_video(),
        gop in 1usize..8,
        b in 0usize..3,
        picks in prop::collection::vec(any::<prop::sample::Index>(), 1..12),
    ) {
        prop_assume!(b + 1 < gop || gop == 1);
        let b = if gop == 1 { 0 } else { b };
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: 2, fps_milli: 30_000, b_frames: b }).unwrap();
        let v = Arc::new(enc.encode(&frames, 1, 0).unwrap());
        let mut warm = WarmDecoder::new(Arc::clone(&v));
        let mut cold_total = 0u64;
        for p in &picks {
            let i = p.index(frames.len());
            let got = warm.decode_frame(i).unwrap();
            let mut cold = Decoder::new(&v);
            let want = cold.decode_indices(&[i]).unwrap();
            cold_total += cold.stats().frames_decoded;
            prop_assert_eq!(got.as_bytes(), want[0].as_bytes());
            prop_assert_eq!(&got.meta, &want[0].meta);
        }
        // The warm session never does more total work than the same reads
        // served by fresh cold decoders.
        prop_assert!(warm.stats().frames_decoded <= cold_total);
    }

    #[test]
    fn amplification_at_least_one(frames in arb_video(), gop in 1usize..8, pick in any::<prop::sample::Index>()) {
        let enc = Encoder::new(EncoderConfig { gop_size: gop, quantizer: 2, fps_milli: 30_000, b_frames: 0 }).unwrap();
        let v = enc.encode(&frames, 1, 0).unwrap();
        let mut dec = Decoder::new(&v);
        dec.decode_indices(&[pick.index(frames.len())]).unwrap();
        prop_assert!(dec.stats().amplification() >= 1.0);
        // And bounded by the GOP size.
        prop_assert!(dec.stats().frames_decoded <= gop as u64);
    }
}

#[test]
fn dataset_generation_is_deterministic() {
    let spec = DatasetSpec {
        num_videos: 3,
        width: 16,
        height: 16,
        frames_per_video: 8,
        ..Default::default()
    };
    let a = Dataset::generate(&spec).unwrap();
    let b = Dataset::generate(&spec).unwrap();
    for (va, vb) in a.videos().iter().zip(b.videos().iter()) {
        assert_eq!(*va.encoded, *vb.encoded);
    }
}
