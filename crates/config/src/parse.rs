//! Conversion from parsed YAML to the typed configuration model.

use crate::condition::Condition;
use crate::types::{
    AugOp, Branch, BranchArm, BranchType, ExecutionConfig, InputSource, SamplingConfig, TaskConfig,
};
use crate::yaml::{self, Value};
use crate::{ConfigError, Result};

/// Fetches a required string field.
fn req_str(v: &Value, field: &str) -> Result<String> {
    v.get(field)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| ConfigError::MissingField {
            field: field.to_string(),
        })
}

/// Fetches a required positive integer field.
fn req_usize(v: &Value, field: &str) -> Result<usize> {
    let i = v
        .get(field)
        .and_then(Value::as_int)
        .ok_or_else(|| ConfigError::MissingField {
            field: field.to_string(),
        })?;
    usize::try_from(i).map_err(|_| ConfigError::InvalidField {
        field: field.to_string(),
        what: "must be non-negative".into(),
    })
}

/// Fetches a list of strings.
fn str_list(v: &Value, field: &str) -> Result<Vec<String>> {
    let list = v
        .get(field)
        .and_then(Value::as_list)
        .ok_or_else(|| ConfigError::MissingField {
            field: field.to_string(),
        })?;
    list.iter()
        .map(|item| {
            item.as_str()
                .map(str::to_string)
                .ok_or_else(|| ConfigError::InvalidField {
                    field: field.to_string(),
                    what: "expected string entries".into(),
                })
        })
        .collect()
}

/// Parses a `[w, h]` shape list.
fn shape_pair(v: &Value, field: &str) -> Result<(usize, usize)> {
    let list = v.as_list().ok_or_else(|| ConfigError::InvalidField {
        field: field.to_string(),
        what: "expected `[w, h]`".into(),
    })?;
    if list.len() != 2 {
        return Err(ConfigError::InvalidField {
            field: field.to_string(),
            what: "expected exactly two entries".into(),
        });
    }
    let get = |i: usize| -> Result<usize> {
        list[i]
            .as_int()
            .and_then(|x| usize::try_from(x).ok())
            .ok_or_else(|| ConfigError::InvalidField {
                field: field.to_string(),
                what: "entries must be non-negative integers".into(),
            })
    };
    Ok((get(0)?, get(1)?))
}

/// Parses one op map such as `{resize: {shape: [256, 320], ...}}`.
fn parse_op(v: &Value) -> Result<AugOp> {
    let map = v.as_map().ok_or_else(|| ConfigError::InvalidField {
        field: "config".into(),
        what: "each op must be a single-key map".into(),
    })?;
    if map.len() != 1 {
        return Err(ConfigError::InvalidField {
            field: "config".into(),
            what: "each op must be a single-key map".into(),
        });
    }
    let (name, body) = map.iter().next().expect("len checked");
    let op = match name.as_str() {
        "resize" => {
            let shape = body.get("shape").ok_or(ConfigError::MissingField {
                field: "resize.shape".into(),
            })?;
            let (w, h) = shape_pair(shape, "resize.shape")?;
            // The paper writes `interpolation: ["bilinear"]`; accept both a
            // one-element list and a bare string.
            let interp = match body.get("interpolation") {
                Some(Value::Str(s)) => s.clone(),
                Some(Value::List(l)) if l.len() == 1 => l[0]
                    .as_str()
                    .ok_or_else(|| ConfigError::InvalidField {
                        field: "resize.interpolation".into(),
                        what: "expected a string".into(),
                    })?
                    .to_string(),
                None => "bilinear".to_string(),
                _ => {
                    return Err(ConfigError::InvalidField {
                        field: "resize.interpolation".into(),
                        what: "expected a string or one-element list".into(),
                    })
                }
            };
            AugOp::Resize {
                w,
                h,
                interpolation: interp,
            }
        }
        "random_crop" => {
            let shape = body.get("shape").ok_or(ConfigError::MissingField {
                field: "random_crop.shape".into(),
            })?;
            let (w, h) = shape_pair(shape, "random_crop.shape")?;
            AugOp::RandomCrop { w, h }
        }
        "center_crop" => {
            let shape = body.get("shape").ok_or(ConfigError::MissingField {
                field: "center_crop.shape".into(),
            })?;
            let (w, h) = shape_pair(shape, "center_crop.shape")?;
            AugOp::CenterCrop { w, h }
        }
        "flip" => {
            let prob = body
                .get("flip_prob")
                .and_then(Value::as_float)
                .unwrap_or(0.5);
            AugOp::Flip { prob }
        }
        "color_jitter" => AugOp::ColorJitter {
            brightness: body
                .get("brightness")
                .and_then(Value::as_float)
                .unwrap_or(0.0),
            contrast: body
                .get("contrast")
                .and_then(Value::as_float)
                .unwrap_or(0.0),
            saturation: body
                .get("saturation")
                .and_then(Value::as_float)
                .unwrap_or(0.0),
        },
        "rotate" => {
            let angles = body
                .get("angles")
                .and_then(Value::as_list)
                .ok_or(ConfigError::MissingField {
                    field: "rotate.angles".into(),
                })?
                .iter()
                .map(|a| {
                    a.as_int()
                        .and_then(|x| u32::try_from(x).ok())
                        .ok_or_else(|| ConfigError::InvalidField {
                            field: "rotate.angles".into(),
                            what: "angles must be positive integers".into(),
                        })
                })
                .collect::<Result<Vec<u32>>>()?;
            AugOp::Rotate { angles }
        }
        "inv_sample" => AugOp::Invert,
        "custom" => {
            let name =
                body.get("name")
                    .and_then(Value::as_str)
                    .ok_or(ConfigError::MissingField {
                        field: "custom.name".into(),
                    })?;
            AugOp::Custom {
                name: name.to_string(),
            }
        }
        "blur" => {
            let radius = body
                .get("radius")
                .and_then(Value::as_int)
                .and_then(|r| usize::try_from(r).ok())
                .ok_or(ConfigError::MissingField {
                    field: "blur.radius".into(),
                })?;
            AugOp::Blur { radius }
        }
        "normalize" => {
            let floats = |field: &str| -> Result<Vec<f64>> {
                body.get(field)
                    .and_then(Value::as_list)
                    .ok_or_else(|| ConfigError::MissingField {
                        field: format!("normalize.{field}"),
                    })?
                    .iter()
                    .map(|x| {
                        x.as_float().ok_or_else(|| ConfigError::InvalidField {
                            field: format!("normalize.{field}"),
                            what: "expected numbers".into(),
                        })
                    })
                    .collect()
            };
            AugOp::Normalize {
                mean: floats("mean")?,
                std: floats("std")?,
            }
        }
        other => {
            return Err(ConfigError::InvalidField {
                field: "config".into(),
                what: format!("unknown op `{other}`"),
            })
        }
    };
    op.validate()?;
    Ok(op)
}

/// Parses an op list (`config:` value), treating `None`/missing as empty.
fn parse_ops(v: Option<&Value>) -> Result<Vec<AugOp>> {
    match v {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::List(items)) => items.iter().map(parse_op).collect(),
        // `- inv_sample: true` inside conditional arms parses as a list of
        // maps whose value is `true`; normalize that spelling too.
        Some(other) => Err(ConfigError::InvalidField {
            field: "config".into(),
            what: format!("expected a list of ops, got {other:?}"),
        }),
    }
}

/// Parses one op entry that may use the boolean spelling `inv_sample: true`.
fn parse_op_lenient(v: &Value) -> Result<AugOp> {
    if let Some(map) = v.as_map() {
        if map.len() == 1 {
            let (name, body) = map.iter().next().expect("len checked");
            if name == "inv_sample" && body.as_bool() == Some(true) {
                return Ok(AugOp::Invert);
            }
        }
    }
    parse_op(v)
}

/// Parses a `config:` list leniently (boolean op spellings allowed).
fn parse_ops_lenient(v: Option<&Value>) -> Result<Vec<AugOp>> {
    match v {
        None | Some(Value::Null) => Ok(Vec::new()),
        Some(Value::List(items)) => items.iter().map(parse_op_lenient).collect(),
        Some(other) => Err(ConfigError::InvalidField {
            field: "config".into(),
            what: format!("expected a list of ops, got {other:?}"),
        }),
    }
}

/// Parses one augmentation stage.
fn parse_branch(v: &Value) -> Result<Branch> {
    let name = req_str(v, "name")?;
    let branch_type = BranchType::parse(&req_str(v, "branch_type")?)?;
    let inputs = str_list(v, "inputs")?;
    let outputs = str_list(v, "outputs")?;
    let arms =
        match branch_type {
            BranchType::Single | BranchType::Merge => {
                vec![BranchArm {
                    condition: None,
                    prob: None,
                    ops: parse_ops(v.get("config"))?,
                }]
            }
            BranchType::Conditional => {
                let items = v.get("branches").and_then(Value::as_list).ok_or(
                    ConfigError::MissingField {
                        field: "branches".into(),
                    },
                )?;
                items
                    .iter()
                    .map(|arm| {
                        let cond = Condition::parse(&req_str(arm, "condition")?)?;
                        Ok(BranchArm {
                            condition: Some(cond),
                            prob: None,
                            ops: parse_ops_lenient(arm.get("config"))?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?
            }
            BranchType::Random => {
                let items = v.get("branches").and_then(Value::as_list).ok_or(
                    ConfigError::MissingField {
                        field: "branches".into(),
                    },
                )?;
                items
                    .iter()
                    .map(|arm| {
                        let prob = arm.get("prob").and_then(Value::as_float).ok_or(
                            ConfigError::MissingField {
                                field: "prob".into(),
                            },
                        )?;
                        Ok(BranchArm {
                            condition: None,
                            prob: Some(prob),
                            ops: parse_ops_lenient(arm.get("config"))?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?
            }
            BranchType::Multi => {
                let items = v.get("branches").and_then(Value::as_list).ok_or(
                    ConfigError::MissingField {
                        field: "branches".into(),
                    },
                )?;
                items
                    .iter()
                    .map(|arm| {
                        Ok(BranchArm {
                            condition: None,
                            prob: None,
                            ops: parse_ops_lenient(arm.get("config"))?,
                        })
                    })
                    .collect::<Result<Vec<_>>>()?
            }
        };
    Ok(Branch {
        name,
        branch_type,
        inputs,
        outputs,
        arms,
    })
}

/// Parses a complete task configuration from YAML text.
///
/// The document must have a single top-level `dataset:` section as in the
/// paper's Fig. 9.
///
/// # Examples
///
/// ```
/// let text = r#"
/// dataset:
///   tag: "train"
///   input_source: file
///   video_dataset_path: /dataset/train
///   sampling:
///     videos_per_batch: 8
///     frames_per_video: 8
///     frame_stride: 4
///     samples_per_video: 1
/// "#;
/// let cfg = sand_config::parse_task_config(text).unwrap();
/// assert_eq!(cfg.sampling.videos_per_batch, 8);
/// ```
pub fn parse_task_config(text: &str) -> Result<TaskConfig> {
    let doc = yaml::parse(text)?;
    let ds = doc.get("dataset").ok_or(ConfigError::MissingField {
        field: "dataset".into(),
    })?;
    let sampling_v = ds.get("sampling").ok_or(ConfigError::MissingField {
        field: "dataset.sampling".into(),
    })?;
    let sampling = SamplingConfig {
        videos_per_batch: req_usize(sampling_v, "videos_per_batch")?,
        frames_per_video: req_usize(sampling_v, "frames_per_video")?,
        frame_stride: req_usize(sampling_v, "frame_stride")?,
        samples_per_video: match sampling_v.get("samples_per_video") {
            None => 1,
            Some(_) => req_usize(sampling_v, "samples_per_video")?,
        },
    };
    let augmentation = match ds.get("augmentation") {
        None | Some(Value::Null) => Vec::new(),
        Some(Value::List(items)) => items.iter().map(parse_branch).collect::<Result<Vec<_>>>()?,
        Some(_) => {
            return Err(ConfigError::InvalidField {
                field: "dataset.augmentation".into(),
                what: "expected a list of branches".into(),
            })
        }
    };
    let execution = match ds.get("execution") {
        None | Some(Value::Null) => ExecutionConfig::default(),
        Some(ex) => ExecutionConfig {
            aug_threads: match ex.get("aug_threads") {
                None => 0,
                Some(_) => req_usize(ex, "aug_threads")?,
            },
            sticky_affinity: match ex.get("sticky_affinity") {
                None => true,
                Some(v) => v.as_bool().ok_or_else(|| ConfigError::InvalidField {
                    field: "execution.sticky_affinity".into(),
                    what: "expected a boolean".into(),
                })?,
            },
        },
    };
    let cfg = TaskConfig {
        tag: req_str(ds, "tag")?,
        input_source: InputSource::parse(&req_str(ds, "input_source")?)?,
        video_dataset_path: req_str(ds, "video_dataset_path")?,
        sampling,
        augmentation,
        execution,
    };
    cfg.validate()?;
    Ok(cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The complete Fig. 9 example from the paper.
    const FIG9: &str = r#"
# dataset configuration in YAML format
dataset:
  tag: "train"
  # identify the input source
  input_source: file # or streaming
  video_dataset_path: /dataset/train
  # options for decoding and selection
  sampling:
    videos_per_batch: 8
    frames_per_video: 8
    frame_stride: 4
    samples_per_video: 2
  # defining augmentation steps
  augmentation:
    - name: "augment_resize"
      branch_type: "single"
      inputs: ["frame"]
      outputs: ["augmented_frame_0"]
      config:
        - resize:
            shape: [256, 320]
            interpolation: ["bilinear"]
    - name: "conditional branch"
      branch_type: "conditional"
      inputs: ["augmented_frame_0"]
      outputs: ["augmented_frame_1"]
      branches:
        - condition: "iteration > 10000"
          config:
            - inv_sample: true
        - condition: "else"
          config: None
    - name: "random_branch"
      branch_type: "random"
      inputs: ["augmented_frame_1"]
      outputs: ["augmented_frame_2"]
      branches:
        - prob: 0.5
          config:
            - flip:
                flip_prob: 0.5
        - prob: 0.5
          config: None
"#;

    #[test]
    fn fig9_parses_and_validates() {
        let cfg = parse_task_config(FIG9).unwrap();
        assert_eq!(cfg.tag, "train");
        assert_eq!(cfg.input_source, InputSource::File);
        assert_eq!(cfg.video_dataset_path, "/dataset/train");
        assert_eq!(cfg.sampling.videos_per_batch, 8);
        assert_eq!(cfg.sampling.samples_per_video, 2);
        assert_eq!(cfg.augmentation.len(), 3);
        assert_eq!(cfg.augmentation[0].branch_type, BranchType::Single);
        assert_eq!(
            cfg.augmentation[0].arms[0].ops,
            vec![AugOp::Resize {
                w: 256,
                h: 320,
                interpolation: "bilinear".into()
            }]
        );
        assert_eq!(cfg.augmentation[1].branch_type, BranchType::Conditional);
        assert_eq!(cfg.augmentation[1].arms[0].ops, vec![AugOp::Invert]);
        assert_eq!(cfg.augmentation[1].arms[1].ops, vec![]);
        assert_eq!(cfg.augmentation[2].branch_type, BranchType::Random);
        assert_eq!(cfg.augmentation[2].arms[0].prob, Some(0.5));
        assert_eq!(
            cfg.terminal_streams(),
            vec!["augmented_frame_2".to_string()]
        );
    }

    #[test]
    fn samples_per_video_defaults_to_one() {
        let text = r#"
dataset:
  tag: t
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
"#;
        let cfg = parse_task_config(text).unwrap();
        assert_eq!(cfg.sampling.samples_per_video, 1);
    }

    #[test]
    fn missing_dataset_section() {
        assert!(matches!(
            parse_task_config("other: 1\n"),
            Err(ConfigError::MissingField { .. })
        ));
    }

    #[test]
    fn missing_sampling_fields() {
        let text = "dataset:\n  tag: t\n  input_source: file\n  video_dataset_path: /d\n  sampling:\n    videos_per_batch: 2\n";
        assert!(parse_task_config(text).is_err());
    }

    #[test]
    fn unknown_op_rejected() {
        let text = r#"
dataset:
  tag: t
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 1
    frames_per_video: 1
    frame_stride: 1
  augmentation:
    - name: x
      branch_type: single
      inputs: ["frame"]
      outputs: ["a"]
      config:
        - sharpen:
            radius: 3
"#;
        assert!(matches!(
            parse_task_config(text),
            Err(ConfigError::InvalidField { .. })
        ));
    }

    #[test]
    fn unknown_branch_type_rejected() {
        let text = r#"
dataset:
  tag: t
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 1
    frames_per_video: 1
    frame_stride: 1
  augmentation:
    - name: x
      branch_type: loop
      inputs: ["frame"]
      outputs: ["a"]
      config: None
"#;
        assert!(parse_task_config(text).is_err());
    }

    #[test]
    fn all_op_kinds_parse() {
        let text = r#"
dataset:
  tag: t
  input_source: streaming
  video_dataset_path: /d
  sampling:
    videos_per_batch: 1
    frames_per_video: 1
    frame_stride: 1
  augmentation:
    - name: everything
      branch_type: single
      inputs: ["frame"]
      outputs: ["a"]
      config:
        - resize:
            shape: [64, 64]
            interpolation: nearest
        - random_crop:
            shape: [32, 32]
        - center_crop:
            shape: [16, 16]
        - flip:
            flip_prob: 0.3
        - color_jitter:
            brightness: 0.2
            contrast: 0.1
            saturation: 0.05
        - rotate:
            angles: [90, 180]
        - inv_sample:
        - blur:
            radius: 2
        - normalize:
            mean: [0.45, 0.45, 0.45]
            std: [0.225, 0.225, 0.225]
"#;
        let cfg = parse_task_config(text).unwrap();
        let ops = &cfg.augmentation[0].arms[0].ops;
        assert_eq!(ops.len(), 9);
        assert_eq!(ops[0].name(), "resize");
        assert_eq!(ops[3], AugOp::Flip { prob: 0.3 });
        assert_eq!(ops[6], AugOp::Invert);
        assert_eq!(ops[7], AugOp::Blur { radius: 2 });
    }

    #[test]
    fn multi_merge_pipeline_parses() {
        let text = r#"
dataset:
  tag: t
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 1
    frames_per_video: 1
    frame_stride: 1
  augmentation:
    - name: split
      branch_type: multi
      inputs: ["frame"]
      outputs: ["x", "y"]
      branches:
        - config: None
        - config:
            - inv_sample: true
    - name: join
      branch_type: merge
      inputs: ["x", "y"]
      outputs: ["z"]
      config: None
"#;
        let cfg = parse_task_config(text).unwrap();
        assert_eq!(cfg.augmentation[0].branch_type, BranchType::Multi);
        assert_eq!(cfg.augmentation[0].arms.len(), 2);
        assert_eq!(cfg.terminal_streams(), vec!["z".to_string()]);
    }

    #[test]
    fn execution_section_defaults_when_absent() {
        let cfg = parse_task_config(FIG9).unwrap();
        assert_eq!(cfg.execution, ExecutionConfig::default());
        assert_eq!(cfg.execution.aug_threads, 0);
        assert!(cfg.execution.sticky_affinity);
    }

    #[test]
    fn execution_section_parses() {
        let text = r#"
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 8
    frames_per_video: 8
    frame_stride: 4
  execution:
    aug_threads: 4
    sticky_affinity: false
"#;
        let cfg = parse_task_config(text).unwrap();
        assert_eq!(cfg.execution.aug_threads, 4);
        assert!(!cfg.execution.sticky_affinity);
    }

    #[test]
    fn execution_fanout_cap_enforced() {
        let text = r#"
dataset:
  tag: "train"
  input_source: file
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 8
    frames_per_video: 8
    frame_stride: 4
  execution:
    aug_threads: 4096
"#;
        let err = parse_task_config(text).unwrap_err();
        assert!(err.to_string().contains("execution.aug_threads"), "{err}");
    }
}
