//! A dependency-free parser for the YAML subset SAND configs use.
//!
//! Supported constructs:
//!
//! - indentation-nested maps (`key:` followed by a deeper block),
//! - scalar entries (`key: value`),
//! - block lists (`- item`, including `- key: value` starting an inline
//!   map item whose remaining keys sit on deeper lines),
//! - inline lists (`[a, b, c]`),
//! - scalars with type inference: integers, floats, booleans, null,
//!   quoted and bare strings,
//! - `#` comments and blank lines.
//!
//! Anchors, aliases, multi-document streams, flow maps, and block scalars
//! are intentionally out of scope.

use crate::{ConfigError, Result};
use std::collections::BTreeMap;

/// A parsed YAML value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / absent.
    Null,
    /// Boolean scalar.
    Bool(bool),
    /// Integer scalar.
    Int(i64),
    /// Floating-point scalar.
    Float(f64),
    /// String scalar.
    Str(String),
    /// Ordered list.
    List(Vec<Value>),
    /// Map with stable (sorted) key order.
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Returns the map form, if this value is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the list form, if this value is a list.
    #[must_use]
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the string form, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the value as an integer if it is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the value as a float, widening integers.
    #[must_use]
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Returns the value as a boolean if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Map field lookup; `None` when this is not a map or lacks the key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map().and_then(|m| m.get(key))
    }
}

/// One meaningful source line.
#[derive(Debug)]
struct Line {
    /// 1-based source line number (for error reporting).
    number: usize,
    /// Leading spaces.
    indent: usize,
    /// Content with indentation stripped.
    content: String,
}

/// Strips a trailing comment that is not inside quotes.
fn strip_comment(s: &str) -> &str {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in s.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            '#' if !in_single && !in_double
                // A comment must be at the start or preceded by whitespace.
                && (i == 0 || s[..i].ends_with(' ')) =>
            {
                return &s[..i];
            }
            _ => {}
        }
    }
    s
}

/// Splits the text into meaningful lines.
fn lex(text: &str) -> Result<Vec<Line>> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        if raw.contains('\t') {
            return Err(ConfigError::Syntax {
                line: idx + 1,
                what: "tabs are not allowed; use spaces".into(),
            });
        }
        let no_comment = strip_comment(raw);
        let trimmed_end = no_comment.trim_end();
        let content = trimmed_end.trim_start();
        if content.is_empty() {
            continue;
        }
        let indent = trimmed_end.len() - content.len();
        out.push(Line {
            number: idx + 1,
            indent,
            content: content.to_string(),
        });
    }
    Ok(out)
}

/// Parses a scalar token with type inference.
fn parse_scalar(token: &str) -> Value {
    let t = token.trim();
    if t.is_empty() || t == "~" || t == "null" || t == "None" {
        return Value::Null;
    }
    if let Some(stripped) = t
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .or_else(|| t.strip_prefix('\'').and_then(|s| s.strip_suffix('\'')))
    {
        return Value::Str(stripped.to_string());
    }
    match t {
        "true" | "True" => return Value::Bool(true),
        "false" | "False" => return Value::Bool(false),
        _ => {}
    }
    if let Ok(i) = t.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = t.parse::<f64>() {
        return Value::Float(f);
    }
    Value::Str(t.to_string())
}

/// Parses an inline list `[a, b, c]`.
fn parse_inline_list(s: &str, line: usize) -> Result<Value> {
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or_else(|| ConfigError::Syntax {
            line,
            what: "malformed inline list".into(),
        })?;
    let inner = inner.trim();
    if inner.is_empty() {
        return Ok(Value::List(Vec::new()));
    }
    // No nesting inside inline lists — split on top-level commas.
    Ok(Value::List(inner.split(',').map(parse_scalar).collect()))
}

/// Parses a right-hand-side value appearing after `key:` on one line.
fn parse_rhs(s: &str, line: usize) -> Result<Value> {
    let t = s.trim();
    if t.starts_with('[') {
        parse_inline_list(t, line)
    } else {
        Ok(parse_scalar(t))
    }
}

/// Splits `key: value` at the first colon not inside quotes.
fn split_key(content: &str) -> Option<(&str, &str)> {
    let mut in_single = false;
    let mut in_double = false;
    for (i, c) in content.char_indices() {
        match c {
            '\'' if !in_double => in_single = !in_single,
            '"' if !in_single => in_double = !in_double,
            ':' if !in_single && !in_double => {
                let rest = &content[i + 1..];
                if rest.is_empty() || rest.starts_with(' ') {
                    return Some((content[..i].trim(), rest.trim()));
                }
            }
            _ => {}
        }
    }
    None
}

/// Recursive-descent parser over the lexed lines.
struct Parser {
    lines: Vec<Line>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Line> {
        self.lines.get(self.pos)
    }

    /// Parses a block whose lines all have indentation >= `indent`,
    /// anchored at exactly `indent`.
    fn parse_block(&mut self, indent: usize) -> Result<Value> {
        let first = match self.peek() {
            Some(l) if l.indent >= indent => l,
            _ => return Ok(Value::Null),
        };
        let anchor = first.indent;
        if first.content.starts_with("- ") || first.content == "-" {
            self.parse_list(anchor)
        } else {
            self.parse_map(anchor)
        }
    }

    fn parse_list(&mut self, anchor: usize) -> Result<Value> {
        let mut items = Vec::new();
        while let Some(line) = self.peek() {
            if line.indent != anchor || !(line.content.starts_with("- ") || line.content == "-") {
                if line.indent >= anchor {
                    // A non-item line at or below list indentation is an error
                    // only if it is deeper; shallower ends the list.
                    if line.indent > anchor {
                        return Err(ConfigError::Syntax {
                            line: line.number,
                            what: "unexpected indentation inside list".into(),
                        });
                    }
                }
                break;
            }
            let number = line.number;
            let rest = line.content[1..].trim_start().to_string();
            self.pos += 1;
            if rest.is_empty() {
                // `-` alone: the item is the following deeper block.
                items.push(self.parse_block(anchor + 1)?);
            } else if let Some((key, rhs)) = split_key(&rest) {
                // `- key: value` starts a map item; subsequent deeper lines
                // continue it.
                let mut map = BTreeMap::new();
                let first_val = if rhs.is_empty() {
                    // Value is a nested block (deeper than the dash column).
                    self.parse_block(anchor + 2)?
                } else {
                    parse_rhs(rhs, number)?
                };
                map.insert(key.to_string(), first_val);
                // Continuation keys are indented past the dash.
                while let Some(next) = self.peek() {
                    if next.indent <= anchor || next.content.starts_with("- ") {
                        break;
                    }
                    let n2 = next.number;
                    let (k2, rhs2) =
                        split_key(&next.content).ok_or_else(|| ConfigError::Syntax {
                            line: n2,
                            what: "expected `key: value`".into(),
                        })?;
                    let k2 = k2.to_string();
                    let rhs2 = rhs2.to_string();
                    let item_indent = next.indent;
                    self.pos += 1;
                    let v2 = if rhs2.is_empty() {
                        self.parse_block(item_indent + 1)?
                    } else {
                        parse_rhs(&rhs2, n2)?
                    };
                    if map.insert(k2.clone(), v2).is_some() {
                        return Err(ConfigError::Syntax {
                            line: n2,
                            what: format!("duplicate key `{k2}`"),
                        });
                    }
                }
                items.push(Value::Map(map));
            } else {
                items.push(parse_rhs(&rest, number)?);
            }
        }
        Ok(Value::List(items))
    }

    fn parse_map(&mut self, anchor: usize) -> Result<Value> {
        let mut map = BTreeMap::new();
        while let Some(line) = self.peek() {
            if line.indent < anchor {
                break;
            }
            if line.indent > anchor {
                return Err(ConfigError::Syntax {
                    line: line.number,
                    what: "unexpected indentation".into(),
                });
            }
            if line.content.starts_with("- ") {
                break;
            }
            let number = line.number;
            let (key, rhs) = split_key(&line.content).ok_or_else(|| ConfigError::Syntax {
                line: number,
                what: "expected `key: value`".into(),
            })?;
            let key = key.to_string();
            let rhs = rhs.to_string();
            self.pos += 1;
            let value = if rhs.is_empty() {
                // Nested block: any deeper indentation (or a list at the
                // same indentation, which YAML allows).
                match self.peek() {
                    Some(next)
                        if next.indent > anchor
                            || (next.indent == anchor && next.content.starts_with("- ")) =>
                    {
                        let next_indent = next.indent;
                        self.parse_block(next_indent)?
                    }
                    _ => Value::Null,
                }
            } else {
                parse_rhs(&rhs, number)?
            };
            if map.insert(key.clone(), value).is_some() {
                return Err(ConfigError::Syntax {
                    line: number,
                    what: format!("duplicate key `{key}`"),
                });
            }
        }
        Ok(Value::Map(map))
    }
}

/// Parses YAML text into a [`Value`].
pub fn parse(text: &str) -> Result<Value> {
    let lines = lex(text)?;
    if lines.is_empty() {
        return Ok(Value::Null);
    }
    let mut parser = Parser { lines, pos: 0 };
    let v = parser.parse_block(0)?;
    if let Some(extra) = parser.peek() {
        return Err(ConfigError::Syntax {
            line: extra.number,
            what: "trailing content after document".into(),
        });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_infer_types() {
        assert_eq!(parse_scalar("42"), Value::Int(42));
        assert_eq!(parse_scalar("-3"), Value::Int(-3));
        assert_eq!(parse_scalar("2.5"), Value::Float(2.5));
        assert_eq!(parse_scalar("true"), Value::Bool(true));
        assert_eq!(parse_scalar("false"), Value::Bool(false));
        assert_eq!(parse_scalar("null"), Value::Null);
        assert_eq!(parse_scalar("None"), Value::Null);
        assert_eq!(parse_scalar("hello"), Value::Str("hello".into()));
        assert_eq!(parse_scalar("\"8 quoted\""), Value::Str("8 quoted".into()));
        assert_eq!(parse_scalar("'single'"), Value::Str("single".into()));
    }

    #[test]
    fn flat_map() {
        let v = parse("a: 1\nb: two\nc: 3.5\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_int(), Some(1));
        assert_eq!(v.get("b").unwrap().as_str(), Some("two"));
        assert_eq!(v.get("c").unwrap().as_float(), Some(3.5));
    }

    #[test]
    fn nested_maps() {
        let v = parse("outer:\n  inner:\n    x: 7\n  y: 8\n").unwrap();
        assert_eq!(
            v.get("outer")
                .unwrap()
                .get("inner")
                .unwrap()
                .get("x")
                .unwrap()
                .as_int(),
            Some(7)
        );
        assert_eq!(v.get("outer").unwrap().get("y").unwrap().as_int(), Some(8));
    }

    #[test]
    fn block_list_of_scalars() {
        let v = parse("items:\n  - 1\n  - 2\n  - three\n").unwrap();
        let l = v.get("items").unwrap().as_list().unwrap();
        assert_eq!(l.len(), 3);
        assert_eq!(l[2].as_str(), Some("three"));
    }

    #[test]
    fn list_of_maps_with_continuation() {
        let text = "branches:\n  - prob: 0.5\n    config:\n      - flip:\n          flip_prob: 0.5\n  - prob: 0.5\n    config: None\n";
        let v = parse(text).unwrap();
        let l = v.get("branches").unwrap().as_list().unwrap();
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].get("prob").unwrap().as_float(), Some(0.5));
        let cfg = l[0].get("config").unwrap().as_list().unwrap();
        assert_eq!(
            cfg[0]
                .get("flip")
                .unwrap()
                .get("flip_prob")
                .unwrap()
                .as_float(),
            Some(0.5)
        );
        assert_eq!(l[1].get("config").unwrap(), &Value::Null);
    }

    #[test]
    fn inline_lists() {
        let v = parse("shape: [256, 320]\nnames: [a, b]\nempty: []\n").unwrap();
        assert_eq!(
            v.get("shape").unwrap().as_list().unwrap(),
            &[Value::Int(256), Value::Int(320)]
        );
        assert_eq!(v.get("names").unwrap().as_list().unwrap().len(), 2);
        assert!(v.get("empty").unwrap().as_list().unwrap().is_empty());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let v = parse("# leading comment\na: 1  # trailing\n\nb: 2\n").unwrap();
        assert_eq!(v.get("a").unwrap().as_int(), Some(1));
        assert_eq!(v.get("b").unwrap().as_int(), Some(2));
    }

    #[test]
    fn hash_inside_quotes_kept() {
        let v = parse("s: \"a # b\"\n").unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a # b"));
    }

    #[test]
    fn colon_inside_quoted_string() {
        let v = parse("cond: \"iteration > 10000\"\n").unwrap();
        assert_eq!(v.get("cond").unwrap().as_str(), Some("iteration > 10000"));
    }

    #[test]
    fn duplicate_keys_rejected() {
        assert!(matches!(
            parse("a: 1\na: 2\n"),
            Err(ConfigError::Syntax { line: 2, .. })
        ));
    }

    #[test]
    fn tabs_rejected() {
        assert!(parse("a:\n\tb: 1\n").is_err());
    }

    #[test]
    fn empty_document_is_null() {
        assert_eq!(parse("").unwrap(), Value::Null);
        assert_eq!(parse("# only comments\n").unwrap(), Value::Null);
    }

    #[test]
    fn top_level_list() {
        let v = parse("- 1\n- 2\n").unwrap();
        assert_eq!(v.as_list().unwrap().len(), 2);
    }

    #[test]
    fn list_at_same_indent_as_key() {
        // YAML allows list dashes at the key's own indentation.
        let v = parse("aug:\n- resize:\n    shape: [4, 4]\n").unwrap();
        let l = v.get("aug").unwrap().as_list().unwrap();
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn figure9_style_config_parses() {
        let text = r#"
dataset:
  tag: "train"
  input_source: file # or streaming
  video_dataset_path: /dataset/train
  sampling:
    videos_per_batch: 8
    frames_per_video: 8
    frame_stride: 4
    samples_per_video: 2
  augmentation:
    - name: "augment_resize"
      branch_type: "single"
      inputs: ["frame"]
      outputs: ["augmented_frame_0"]
      config:
        - resize:
            shape: [256, 320]
            interpolation: ["bilinear"]
    - name: "conditional branch"
      branch_type: "conditional"
      inputs: ["augmented_frame_0"]
      outputs: ["augmented_frame_1"]
      branches:
        - condition: "iteration > 10000"
          config:
            - inv_sample: true
        - condition: "else"
          config: None
    - name: "random_branch"
      branch_type: "random"
      inputs: ["augmented_frame_1"]
      outputs: ["augmented_frame_2"]
      branches:
        - prob: 0.5
          config:
            - flip:
                flip_prob: 0.5
        - prob: 0.5
          config: None
"#;
        let v = parse(text).unwrap();
        let ds = v.get("dataset").unwrap();
        assert_eq!(ds.get("tag").unwrap().as_str(), Some("train"));
        assert_eq!(
            ds.get("sampling")
                .unwrap()
                .get("videos_per_batch")
                .unwrap()
                .as_int(),
            Some(8)
        );
        let aug = ds.get("augmentation").unwrap().as_list().unwrap();
        assert_eq!(aug.len(), 3);
        assert_eq!(
            aug[1].get("branch_type").unwrap().as_str(),
            Some("conditional")
        );
        let branches = aug[1].get("branches").unwrap().as_list().unwrap();
        assert_eq!(
            branches[0].get("condition").unwrap().as_str(),
            Some("iteration > 10000")
        );
    }
}
