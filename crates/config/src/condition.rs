//! The expression language of conditional branches.
//!
//! A conditional branch arm carries a condition string such as
//! `"iteration > 10000"` or `"else"`. The grammar is deliberately tiny:
//!
//! ```text
//! condition := "else" | var op integer
//! var       := "iteration" | "epoch"
//! op        := "<" | "<=" | ">" | ">=" | "=="
//! ```

use crate::{ConfigError, Result};

/// The variable a condition tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondVar {
    /// Global training iteration counter.
    Iteration,
    /// Epoch counter.
    Epoch,
}

/// The comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CondOp {
    /// Strictly less.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
    /// Equal.
    Eq,
}

/// A parsed condition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Condition {
    /// The fallback arm; matches when no earlier arm did.
    Else,
    /// A comparison against the current iteration or epoch.
    Compare {
        /// Variable under test.
        var: CondVar,
        /// Comparison operator.
        op: CondOp,
        /// Constant to compare against.
        value: u64,
    },
}

impl Condition {
    /// Parses a condition string.
    pub fn parse(s: &str) -> Result<Self> {
        let t = s.trim();
        if t.eq_ignore_ascii_case("else") {
            return Ok(Condition::Else);
        }
        let err = |what: &str| ConfigError::InvalidField {
            field: "condition".into(),
            what: format!("{what} in `{t}`"),
        };
        let tokens: Vec<&str> = t.split_whitespace().collect();
        if tokens.len() != 3 {
            return Err(err("expected `<var> <op> <value>`"));
        }
        let var = match tokens[0] {
            "iteration" => CondVar::Iteration,
            "epoch" => CondVar::Epoch,
            _ => return Err(err("unknown variable")),
        };
        let op = match tokens[1] {
            "<" => CondOp::Lt,
            "<=" => CondOp::Le,
            ">" => CondOp::Gt,
            ">=" => CondOp::Ge,
            "==" => CondOp::Eq,
            _ => return Err(err("unknown operator")),
        };
        let value: u64 = tokens[2]
            .parse()
            .map_err(|_| err("value must be an integer"))?;
        Ok(Condition::Compare { var, op, value })
    }

    /// Evaluates the condition at a training point.
    ///
    /// [`Condition::Else`] evaluates to `true`; arm ordering is the
    /// caller's concern (first matching arm wins).
    #[must_use]
    pub fn eval(&self, iteration: u64, epoch: u64) -> bool {
        match self {
            Condition::Else => true,
            Condition::Compare { var, op, value } => {
                let lhs = match var {
                    CondVar::Iteration => iteration,
                    CondVar::Epoch => epoch,
                };
                match op {
                    CondOp::Lt => lhs < *value,
                    CondOp::Le => lhs <= *value,
                    CondOp::Gt => lhs > *value,
                    CondOp::Ge => lhs >= *value,
                    CondOp::Eq => lhs == *value,
                }
            }
        }
    }

    /// Canonical string form (inverse of [`Condition::parse`]).
    #[must_use]
    pub fn canonical(&self) -> String {
        match self {
            Condition::Else => "else".to_string(),
            Condition::Compare { var, op, value } => {
                let v = match var {
                    CondVar::Iteration => "iteration",
                    CondVar::Epoch => "epoch",
                };
                let o = match op {
                    CondOp::Lt => "<",
                    CondOp::Le => "<=",
                    CondOp::Gt => ">",
                    CondOp::Ge => ">=",
                    CondOp::Eq => "==",
                };
                format!("{v} {o} {value}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_example() {
        let c = Condition::parse("iteration > 10000").unwrap();
        assert!(!c.eval(10_000, 0));
        assert!(c.eval(10_001, 0));
    }

    #[test]
    fn parses_else() {
        assert_eq!(Condition::parse("else").unwrap(), Condition::Else);
        assert_eq!(Condition::parse(" ELSE ").unwrap(), Condition::Else);
        assert!(Condition::Else.eval(0, 0));
    }

    #[test]
    fn all_operators() {
        assert!(Condition::parse("epoch < 5").unwrap().eval(0, 4));
        assert!(!Condition::parse("epoch < 5").unwrap().eval(0, 5));
        assert!(Condition::parse("epoch <= 5").unwrap().eval(0, 5));
        assert!(Condition::parse("epoch >= 5").unwrap().eval(0, 5));
        assert!(Condition::parse("epoch == 5").unwrap().eval(0, 5));
        assert!(!Condition::parse("epoch == 5").unwrap().eval(0, 6));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Condition::parse("").is_err());
        assert!(Condition::parse("iteration >").is_err());
        assert!(Condition::parse("steps > 10").is_err());
        assert!(Condition::parse("iteration ~ 10").is_err());
        assert!(Condition::parse("iteration > ten").is_err());
        assert!(Condition::parse("iteration > 10 extra").is_err());
    }

    #[test]
    fn canonical_roundtrip() {
        for s in ["else", "iteration > 10000", "epoch <= 3", "iteration == 0"] {
            let c = Condition::parse(s).unwrap();
            assert_eq!(Condition::parse(&c.canonical()).unwrap(), c);
        }
    }
}
