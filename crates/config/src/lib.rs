//! Pipeline configuration for SAND.
//!
//! The paper (Fig. 9) configures the entire preprocessing pipeline in a
//! single YAML file with two sections: *video handling* (dataset path,
//! input source, sampling policy) and *augmentation* (a small dataflow
//! graph of augmentation steps built from five branch types: `single`,
//! `conditional`, `random`, `multi`, and `merge`).
//!
//! This crate provides:
//!
//! - [`yaml`]: a dependency-free parser for the YAML subset those configs
//!   use (indentation-based maps and lists, scalars with type inference,
//!   inline `[a, b]` lists, comments),
//! - [`types`]: the typed configuration model ([`TaskConfig`] and friends),
//! - [`parse`]: conversion from parsed YAML to the typed model, with full
//!   validation (branch graph connectivity, probability sums, condition
//!   syntax),
//! - [`condition`]: the tiny `iteration > 10000` expression language used
//!   by conditional branches.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod condition;
pub mod parse;
pub mod types;
pub mod yaml;

pub use condition::Condition;
pub use parse::parse_task_config;
pub use types::{
    AugOp, Branch, BranchArm, BranchType, ExecutionConfig, InputSource, SamplingConfig, TaskConfig,
};
pub use yaml::Value;

use std::fmt;

/// Errors produced while parsing or validating configuration.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// The YAML text was syntactically malformed.
    Syntax {
        /// 1-based line number.
        line: usize,
        /// Human-readable description.
        what: String,
    },
    /// A required field was missing.
    MissingField {
        /// Dotted path of the missing field.
        field: String,
    },
    /// A field had the wrong type or an invalid value.
    InvalidField {
        /// Dotted path of the offending field.
        field: String,
        /// Human-readable description.
        what: String,
    },
    /// The augmentation branch graph is inconsistent.
    InvalidGraph {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Syntax { line, what } => write!(f, "syntax error at line {line}: {what}"),
            ConfigError::MissingField { field } => write!(f, "missing field `{field}`"),
            ConfigError::InvalidField { field, what } => {
                write!(f, "invalid field `{field}`: {what}")
            }
            ConfigError::InvalidGraph { what } => write!(f, "invalid augmentation graph: {what}"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, ConfigError>;
