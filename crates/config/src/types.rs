//! The typed configuration model.

use crate::condition::Condition;
use crate::{ConfigError, Result};

/// Where raw videos come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSource {
    /// A directory of video files.
    File,
    /// A live/remote stream (modelled by the remote storage tier).
    Streaming,
}

impl InputSource {
    /// Parses the canonical string form.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "file" => Ok(InputSource::File),
            "streaming" => Ok(InputSource::Streaming),
            _ => Err(ConfigError::InvalidField {
                field: "input_source".into(),
                what: format!("unknown input source `{s}`"),
            }),
        }
    }
}

/// Temporal sampling policy (the "video handling" half of Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingConfig {
    /// Videos drawn per mini-batch.
    pub videos_per_batch: usize,
    /// Frames selected per video clip.
    pub frames_per_video: usize,
    /// Stride between selected frames (in display-order frames).
    pub frame_stride: usize,
    /// Training samples drawn from each video per epoch (>=1; used by
    /// self-supervised tasks to cut several clips from one video).
    pub samples_per_video: usize,
}

impl SamplingConfig {
    /// Validates the sampling parameters.
    pub fn validate(&self) -> Result<()> {
        let check = |v: usize, field: &str| {
            if v == 0 {
                Err(ConfigError::InvalidField {
                    field: format!("sampling.{field}"),
                    what: "must be >= 1".into(),
                })
            } else {
                Ok(())
            }
        };
        check(self.videos_per_batch, "videos_per_batch")?;
        check(self.frames_per_video, "frames_per_video")?;
        check(self.frame_stride, "frame_stride")?;
        check(self.samples_per_video, "samples_per_video")
    }

    /// Span of display-order frames one clip covers.
    #[must_use]
    pub fn clip_span(&self) -> usize {
        (self.frames_per_video - 1) * self.frame_stride + 1
    }
}

impl Default for SamplingConfig {
    fn default() -> Self {
        SamplingConfig {
            videos_per_batch: 8,
            frames_per_video: 8,
            frame_stride: 4,
            samples_per_video: 1,
        }
    }
}

/// One augmentation operation, as configured (randomness unresolved).
///
/// The planner resolves each stochastic op into a deterministic
/// `sand_frame::ops` instance per (task, video, sample, epoch).
#[derive(Debug, Clone, PartialEq)]
pub enum AugOp {
    /// Resize to `w x h` with the given interpolation name.
    Resize {
        /// Target width.
        w: usize,
        /// Target height.
        h: usize,
        /// Interpolation: `bilinear` or `nearest`.
        interpolation: String,
    },
    /// Random crop of `w x h` (position drawn by the planner).
    RandomCrop {
        /// Crop width.
        w: usize,
        /// Crop height.
        h: usize,
    },
    /// Center crop of `w x h`.
    CenterCrop {
        /// Crop width.
        w: usize,
        /// Crop height.
        h: usize,
    },
    /// Horizontal flip applied with probability `prob`.
    Flip {
        /// Probability of flipping.
        prob: f64,
    },
    /// Color jitter with symmetric ranges around 1.0.
    ColorJitter {
        /// Max brightness deviation (factor in `[1-b, 1+b]`).
        brightness: f64,
        /// Max contrast deviation.
        contrast: f64,
        /// Max saturation deviation.
        saturation: f64,
    },
    /// Rotation by a right angle chosen uniformly from `angles`.
    Rotate {
        /// Allowed angles (each 90, 180, or 270).
        angles: Vec<u32>,
    },
    /// Pixel inversion (`inv_sample` in the paper's example).
    Invert,
    /// Box blur with a fixed radius.
    Blur {
        /// Kernel radius (>= 1).
        radius: usize,
    },
    /// A user-registered custom operation, executed through the engine's
    /// RPC-style augmentation service (Sec. 5.5 of the paper). Custom ops
    /// must preserve frame dimensions.
    Custom {
        /// Registered operation name.
        name: String,
    },
    /// Per-channel normalization into a float tensor (terminal op).
    Normalize {
        /// Per-channel means.
        mean: Vec<f64>,
        /// Per-channel standard deviations.
        std: Vec<f64>,
    },
}

impl AugOp {
    /// True when the op involves randomness that planning must resolve.
    #[must_use]
    pub fn is_stochastic(&self) -> bool {
        matches!(
            self,
            AugOp::RandomCrop { .. }
                | AugOp::Flip { .. }
                | AugOp::ColorJitter { .. }
                | AugOp::Rotate { .. }
        )
    }

    /// Stable operation name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AugOp::Resize { .. } => "resize",
            AugOp::RandomCrop { .. } => "random_crop",
            AugOp::CenterCrop { .. } => "center_crop",
            AugOp::Flip { .. } => "flip",
            AugOp::ColorJitter { .. } => "color_jitter",
            AugOp::Rotate { .. } => "rotate",
            AugOp::Invert => "inv_sample",
            AugOp::Blur { .. } => "blur",
            AugOp::Custom { .. } => "custom",
            AugOp::Normalize { .. } => "normalize",
        }
    }

    /// Validates the op parameters.
    pub fn validate(&self) -> Result<()> {
        let bad = |what: String| {
            Err(ConfigError::InvalidField {
                field: self.name().to_string(),
                what,
            })
        };
        match self {
            AugOp::Resize {
                w,
                h,
                interpolation,
            } => {
                if *w == 0 || *h == 0 {
                    return bad("resize target must be nonzero".into());
                }
                if interpolation != "bilinear" && interpolation != "nearest" {
                    return bad(format!("unknown interpolation `{interpolation}`"));
                }
            }
            AugOp::RandomCrop { w, h } | AugOp::CenterCrop { w, h } => {
                if *w == 0 || *h == 0 {
                    return bad("crop size must be nonzero".into());
                }
            }
            AugOp::Flip { prob } => {
                if !(0.0..=1.0).contains(prob) {
                    return bad("flip probability must be in [0, 1]".into());
                }
            }
            AugOp::ColorJitter {
                brightness,
                contrast,
                saturation,
            } => {
                for (n, v) in [
                    ("brightness", brightness),
                    ("contrast", contrast),
                    ("saturation", saturation),
                ] {
                    if !(0.0..=1.0).contains(v) {
                        return bad(format!("{n} deviation must be in [0, 1]"));
                    }
                }
            }
            AugOp::Rotate { angles } => {
                if angles.is_empty() {
                    return bad("rotate needs at least one angle".into());
                }
                for a in angles {
                    if ![90, 180, 270].contains(a) {
                        return bad(format!("unsupported angle {a}"));
                    }
                }
            }
            AugOp::Invert => {}
            AugOp::Blur { radius } => {
                if *radius == 0 {
                    return bad("blur radius must be >= 1".into());
                }
            }
            AugOp::Custom { name } => {
                if name.is_empty() {
                    return bad("custom op name must be nonempty".into());
                }
            }
            AugOp::Normalize { mean, std } => {
                if mean.is_empty() || mean.len() != std.len() {
                    return bad("mean/std must be same nonzero length".into());
                }
                if std.contains(&0.0) {
                    return bad("std must be nonzero".into());
                }
            }
        }
        Ok(())
    }
}

/// The control-flow type of a branch (the paper's five kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchType {
    /// A straight sequence of ops.
    Single,
    /// Arms guarded by conditions; first match wins.
    Conditional,
    /// One arm chosen with configured probability.
    Random,
    /// Data flow splits into all arms in parallel.
    Multi,
    /// Parallel flows join into one output.
    Merge,
}

impl BranchType {
    /// Parses the canonical string form.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "single" => Ok(BranchType::Single),
            "conditional" => Ok(BranchType::Conditional),
            "random" => Ok(BranchType::Random),
            "multi" => Ok(BranchType::Multi),
            "merge" => Ok(BranchType::Merge),
            _ => Err(ConfigError::InvalidField {
                field: "branch_type".into(),
                what: format!("unknown branch type `{s}`"),
            }),
        }
    }
}

/// One arm of a conditional/random/multi branch.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchArm {
    /// Guard for conditional branches.
    pub condition: Option<Condition>,
    /// Selection probability for random branches.
    pub prob: Option<f64>,
    /// Ops applied when this arm is taken (empty = pass-through).
    pub ops: Vec<AugOp>,
}

/// One named augmentation stage.
#[derive(Debug, Clone, PartialEq)]
pub struct Branch {
    /// Stage name (unique within a task).
    pub name: String,
    /// Control-flow kind.
    pub branch_type: BranchType,
    /// Input stream names.
    pub inputs: Vec<String>,
    /// Output stream names.
    pub outputs: Vec<String>,
    /// Arms; `single` uses exactly one unconditioned arm.
    pub arms: Vec<BranchArm>,
}

/// Engine-execution hints carried by a task config. The task file is the
/// single source of tuning truth in SAND's model, so per-task performance
/// knobs ride along with sampling and augmentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionConfig {
    /// Sub-jobs the engine may fan one video's materialize bucket out
    /// into (`0` = inherit the engine-level `aug_threads` setting).
    pub aug_threads: usize,
    /// Keep a video's pre-materialize jobs on its sticky worker — the
    /// one holding its warm decoder session — instead of pure work
    /// stealing. `false` on any task disables affinity engine-wide.
    pub sticky_affinity: bool,
}

impl Default for ExecutionConfig {
    fn default() -> Self {
        ExecutionConfig {
            aug_threads: 0,
            sticky_affinity: true,
        }
    }
}

impl ExecutionConfig {
    /// Bounds-checks the fan-out hint.
    pub fn validate(&self) -> Result<()> {
        if self.aug_threads > 1024 {
            return Err(ConfigError::InvalidField {
                field: "execution.aug_threads".into(),
                what: format!("{} exceeds the 1024 fan-out cap", self.aug_threads),
            });
        }
        Ok(())
    }
}

/// A complete task configuration (one Fig. 9 file).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskConfig {
    /// Task tag, e.g. `train`.
    pub tag: String,
    /// Input source kind.
    pub input_source: InputSource,
    /// Dataset path (view-root for this task).
    pub video_dataset_path: String,
    /// Temporal sampling policy.
    pub sampling: SamplingConfig,
    /// Augmentation dataflow stages.
    pub augmentation: Vec<Branch>,
    /// Execution hints for the engine's materialize pass.
    pub execution: ExecutionConfig,
}

impl TaskConfig {
    /// Validates the whole config, including the branch graph.
    ///
    /// Graph rules: stream names connect stages; the reserved name `frame`
    /// is the decoded-frame source. Every stage input must be `frame` or a
    /// previously produced output; outputs must be unique; every declared
    /// output except the final one(s) should be consumed; random arm
    /// probabilities must sum to 1; conditional arms must end with a
    /// catch-all (`else`) arm.
    pub fn validate(&self) -> Result<()> {
        if self.tag.is_empty() {
            return Err(ConfigError::InvalidField {
                field: "tag".into(),
                what: "empty".into(),
            });
        }
        if self.video_dataset_path.is_empty() {
            return Err(ConfigError::MissingField {
                field: "video_dataset_path".into(),
            });
        }
        self.sampling.validate()?;
        self.execution.validate()?;
        let mut produced: Vec<&str> = vec!["frame"];
        let mut names: Vec<&str> = Vec::new();
        for b in &self.augmentation {
            if names.contains(&b.name.as_str()) {
                return Err(ConfigError::InvalidGraph {
                    what: format!("duplicate branch name `{}`", b.name),
                });
            }
            names.push(&b.name);
            if b.inputs.is_empty() {
                return Err(ConfigError::InvalidGraph {
                    what: format!("branch `{}` has no inputs", b.name),
                });
            }
            if b.outputs.is_empty() {
                return Err(ConfigError::InvalidGraph {
                    what: format!("branch `{}` has no outputs", b.name),
                });
            }
            for i in &b.inputs {
                if !produced.contains(&i.as_str()) {
                    return Err(ConfigError::InvalidGraph {
                        what: format!("branch `{}` consumes undefined stream `{i}`", b.name),
                    });
                }
            }
            for o in &b.outputs {
                if produced.contains(&o.as_str()) {
                    return Err(ConfigError::InvalidGraph {
                        what: format!("stream `{o}` produced twice"),
                    });
                }
            }
            // Per-type arity rules.
            match b.branch_type {
                BranchType::Single => {
                    if b.arms.len() != 1 || b.inputs.len() != 1 || b.outputs.len() != 1 {
                        return Err(ConfigError::InvalidGraph {
                            what: format!("single branch `{}` must be 1-in/1-out/1-arm", b.name),
                        });
                    }
                }
                BranchType::Conditional => {
                    if b.arms.is_empty() || b.inputs.len() != 1 || b.outputs.len() != 1 {
                        return Err(ConfigError::InvalidGraph {
                            what: format!("conditional branch `{}` must be 1-in/1-out", b.name),
                        });
                    }
                    let n = b.arms.len();
                    for (i, arm) in b.arms.iter().enumerate() {
                        match arm.condition {
                            None => {
                                return Err(ConfigError::InvalidGraph {
                                    what: format!(
                                        "conditional branch `{}` arm {i} lacks a condition",
                                        b.name
                                    ),
                                })
                            }
                            Some(Condition::Else) if i != n - 1 => {
                                return Err(ConfigError::InvalidGraph {
                                    what: format!(
                                        "`else` must be the last arm of branch `{}`",
                                        b.name
                                    ),
                                })
                            }
                            _ => {}
                        }
                    }
                    if b.arms.last().map(|a| a.condition) != Some(Some(Condition::Else)) {
                        return Err(ConfigError::InvalidGraph {
                            what: format!("conditional branch `{}` must end with `else`", b.name),
                        });
                    }
                }
                BranchType::Random => {
                    if b.arms.len() < 2 || b.inputs.len() != 1 || b.outputs.len() != 1 {
                        return Err(ConfigError::InvalidGraph {
                            what: format!("random branch `{}` needs >= 2 arms, 1-in/1-out", b.name),
                        });
                    }
                    let mut sum = 0.0;
                    for (i, arm) in b.arms.iter().enumerate() {
                        let p = arm.prob.ok_or_else(|| ConfigError::InvalidGraph {
                            what: format!("random branch `{}` arm {i} lacks prob", b.name),
                        })?;
                        if !(0.0..=1.0).contains(&p) {
                            return Err(ConfigError::InvalidGraph {
                                what: format!(
                                    "random branch `{}` arm {i} prob out of range",
                                    b.name
                                ),
                            });
                        }
                        sum += p;
                    }
                    if (sum - 1.0).abs() > 1e-6 {
                        return Err(ConfigError::InvalidGraph {
                            what: format!("random branch `{}` probs sum to {sum}, not 1", b.name),
                        });
                    }
                }
                BranchType::Multi => {
                    if b.inputs.len() != 1 || b.outputs.len() < 2 || b.arms.len() != b.outputs.len()
                    {
                        return Err(ConfigError::InvalidGraph {
                            what: format!(
                                "multi branch `{}` needs 1 input and one arm per output",
                                b.name
                            ),
                        });
                    }
                }
                BranchType::Merge => {
                    if b.inputs.len() < 2 || b.outputs.len() != 1 || b.arms.len() != 1 {
                        return Err(ConfigError::InvalidGraph {
                            what: format!(
                                "merge branch `{}` needs >= 2 inputs, 1 output, 1 arm",
                                b.name
                            ),
                        });
                    }
                }
            }
            for arm in &b.arms {
                for op in &arm.ops {
                    op.validate()?;
                }
            }
            for o in &b.outputs {
                produced.push(o);
            }
        }
        Ok(())
    }

    /// Names of streams that are produced but never consumed — the task's
    /// final outputs feeding batch construction.
    #[must_use]
    pub fn terminal_streams(&self) -> Vec<String> {
        let mut produced: Vec<String> = Vec::new();
        let mut consumed: Vec<&String> = Vec::new();
        for b in &self.augmentation {
            consumed.extend(b.inputs.iter());
            produced.extend(b.outputs.iter().cloned());
        }
        if produced.is_empty() {
            return vec!["frame".to_string()];
        }
        produced.retain(|p| !consumed.contains(&p));
        produced
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single(name: &str, input: &str, output: &str, ops: Vec<AugOp>) -> Branch {
        Branch {
            name: name.into(),
            branch_type: BranchType::Single,
            inputs: vec![input.into()],
            outputs: vec![output.into()],
            arms: vec![BranchArm {
                condition: None,
                prob: None,
                ops,
            }],
        }
    }

    fn base_config(aug: Vec<Branch>) -> TaskConfig {
        TaskConfig {
            tag: "train".into(),
            input_source: InputSource::File,
            video_dataset_path: "/data".into(),
            sampling: SamplingConfig::default(),
            augmentation: aug,
            execution: ExecutionConfig::default(),
        }
    }

    #[test]
    fn valid_linear_pipeline() {
        let cfg = base_config(vec![
            single(
                "r",
                "frame",
                "a0",
                vec![AugOp::Resize {
                    w: 64,
                    h: 64,
                    interpolation: "bilinear".into(),
                }],
            ),
            single("c", "a0", "a1", vec![AugOp::RandomCrop { w: 32, h: 32 }]),
        ]);
        cfg.validate().unwrap();
        assert_eq!(cfg.terminal_streams(), vec!["a1".to_string()]);
    }

    #[test]
    fn undefined_input_stream_rejected() {
        let cfg = base_config(vec![single("c", "nope", "a0", vec![])]);
        assert!(matches!(
            cfg.validate(),
            Err(ConfigError::InvalidGraph { .. })
        ));
    }

    #[test]
    fn duplicate_output_rejected() {
        let cfg = base_config(vec![
            single("a", "frame", "x", vec![]),
            single("b", "frame", "x", vec![]),
        ]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn duplicate_branch_name_rejected() {
        let cfg = base_config(vec![
            single("a", "frame", "x", vec![]),
            single("a", "x", "y", vec![]),
        ]);
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn random_probs_must_sum_to_one() {
        let mk = |p1: f64, p2: f64| {
            base_config(vec![Branch {
                name: "r".into(),
                branch_type: BranchType::Random,
                inputs: vec!["frame".into()],
                outputs: vec!["a".into()],
                arms: vec![
                    BranchArm {
                        condition: None,
                        prob: Some(p1),
                        ops: vec![],
                    },
                    BranchArm {
                        condition: None,
                        prob: Some(p2),
                        ops: vec![],
                    },
                ],
            }])
        };
        assert!(mk(0.5, 0.5).validate().is_ok());
        assert!(mk(0.6, 0.6).validate().is_err());
    }

    #[test]
    fn conditional_needs_trailing_else() {
        let mk = |conds: Vec<Condition>| {
            base_config(vec![Branch {
                name: "c".into(),
                branch_type: BranchType::Conditional,
                inputs: vec!["frame".into()],
                outputs: vec!["a".into()],
                arms: conds
                    .into_iter()
                    .map(|c| BranchArm {
                        condition: Some(c),
                        prob: None,
                        ops: vec![],
                    })
                    .collect(),
            }])
        };
        let gt = Condition::parse("iteration > 10").unwrap();
        assert!(mk(vec![gt, Condition::Else]).validate().is_ok());
        assert!(mk(vec![gt]).validate().is_err());
        assert!(mk(vec![Condition::Else, gt]).validate().is_err());
    }

    #[test]
    fn merge_arity_enforced() {
        let cfg = base_config(vec![
            Branch {
                name: "m".into(),
                branch_type: BranchType::Multi,
                inputs: vec!["frame".into()],
                outputs: vec!["x".into(), "y".into()],
                arms: vec![
                    BranchArm {
                        condition: None,
                        prob: None,
                        ops: vec![],
                    },
                    BranchArm {
                        condition: None,
                        prob: None,
                        ops: vec![AugOp::Invert],
                    },
                ],
            },
            Branch {
                name: "j".into(),
                branch_type: BranchType::Merge,
                inputs: vec!["x".into(), "y".into()],
                outputs: vec!["z".into()],
                arms: vec![BranchArm {
                    condition: None,
                    prob: None,
                    ops: vec![],
                }],
            },
        ]);
        cfg.validate().unwrap();
        assert_eq!(cfg.terminal_streams(), vec!["z".to_string()]);
    }

    #[test]
    fn op_validation() {
        assert!(AugOp::Resize {
            w: 0,
            h: 4,
            interpolation: "bilinear".into()
        }
        .validate()
        .is_err());
        assert!(AugOp::Resize {
            w: 4,
            h: 4,
            interpolation: "cubic".into()
        }
        .validate()
        .is_err());
        assert!(AugOp::Flip { prob: 1.5 }.validate().is_err());
        assert!(AugOp::Rotate { angles: vec![45] }.validate().is_err());
        assert!(AugOp::Rotate { angles: vec![] }.validate().is_err());
        assert!(AugOp::Normalize {
            mean: vec![0.5],
            std: vec![0.0]
        }
        .validate()
        .is_err());
        assert!(AugOp::Normalize {
            mean: vec![0.5],
            std: vec![0.5, 0.5]
        }
        .validate()
        .is_err());
        assert!(AugOp::ColorJitter {
            brightness: 2.0,
            contrast: 0.1,
            saturation: 0.1
        }
        .validate()
        .is_err());
        assert!(AugOp::Invert.validate().is_ok());
    }

    #[test]
    fn sampling_validation_and_span() {
        let mut s = SamplingConfig::default();
        s.validate().unwrap();
        assert_eq!(s.clip_span(), 29);
        s.frame_stride = 0;
        assert!(s.validate().is_err());
    }

    #[test]
    fn empty_augmentation_terminal_is_frame() {
        let cfg = base_config(vec![]);
        cfg.validate().unwrap();
        assert_eq!(cfg.terminal_streams(), vec!["frame".to_string()]);
    }

    #[test]
    fn stochastic_classification() {
        assert!(AugOp::RandomCrop { w: 4, h: 4 }.is_stochastic());
        assert!(AugOp::Flip { prob: 0.5 }.is_stochastic());
        assert!(!AugOp::Resize {
            w: 4,
            h: 4,
            interpolation: "nearest".into()
        }
        .is_stochastic());
        assert!(!AugOp::Invert.is_stochastic());
        assert!(!AugOp::CenterCrop { w: 4, h: 4 }.is_stochastic());
    }
}
