//! Property-based tests for the YAML-subset parser and config validation:
//! the parser must never panic on arbitrary input, and valid configs must
//! survive structural perturbation checks.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_config::{parse_task_config, yaml, Condition};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn yaml_parser_never_panics(text in "\\PC{0,400}") {
        // Arbitrary printable soup: parse must return Ok or Err, not panic.
        let _ = yaml::parse(&text);
    }

    #[test]
    fn yaml_parser_never_panics_on_structured_soup(
        keys in prop::collection::vec("[a-z_]{1,8}", 1..8),
        indents in prop::collection::vec(0usize..6, 1..8),
        vals in prop::collection::vec(prop_oneof![
            Just("1".to_string()),
            Just("true".to_string()),
            Just("[1, 2]".to_string()),
            Just("\"s\"".to_string()),
            Just(String::new()),
        ], 1..8),
    ) {
        let mut text = String::new();
        for ((k, i), v) in keys.iter().zip(indents.iter()).zip(vals.iter()) {
            text.push_str(&" ".repeat(*i));
            text.push_str(k);
            text.push_str(": ");
            text.push_str(v);
            text.push('\n');
        }
        let _ = yaml::parse(&text);
    }

    #[test]
    fn task_config_parser_never_panics(text in "\\PC{0,400}") {
        let _ = parse_task_config(&text);
    }

    #[test]
    fn condition_parser_never_panics(text in "\\PC{0,60}") {
        let _ = Condition::parse(&text);
    }

    #[test]
    fn condition_eval_total(var_iter in any::<u64>(), var_epoch in any::<u64>(), value in any::<u64>()) {
        for op in ["<", "<=", ">", ">=", "=="] {
            for var in ["iteration", "epoch"] {
                let c = Condition::parse(&format!("{var} {op} {value}")).unwrap();
                // Evaluation is total and consistent with its negation
                // where one exists.
                let _ = c.eval(var_iter, var_epoch);
            }
        }
    }

    #[test]
    fn scalar_values_roundtrip_through_maps(n in any::<i64>(), f in any::<f64>(), b in any::<bool>()) {
        prop_assume!(f.is_finite());
        let text = format!("i: {n}\nb: {b}\nf: {f:?}\n");
        let v = yaml::parse(&text).unwrap();
        prop_assert_eq!(v.get("i").unwrap().as_int(), Some(n));
        prop_assert_eq!(v.get("b").unwrap().as_bool(), Some(b));
        let parsed_f = v.get("f").unwrap().as_float().unwrap();
        prop_assert!((parsed_f - f).abs() <= f.abs() * 1e-12);
    }

    #[test]
    fn valid_sampling_configs_always_parse(
        vpb in 1usize..64, fpv in 1usize..64, stride in 1usize..64, samples in 1usize..8,
    ) {
        let text = format!(
            "dataset:\n  tag: t\n  input_source: file\n  video_dataset_path: /d\n  sampling:\n    videos_per_batch: {vpb}\n    frames_per_video: {fpv}\n    frame_stride: {stride}\n    samples_per_video: {samples}\n"
        );
        let cfg = parse_task_config(&text).unwrap();
        prop_assert_eq!(cfg.sampling.videos_per_batch, vpb);
        prop_assert_eq!(cfg.sampling.clip_span(), (fpv - 1) * stride + 1);
    }
}
