//! Property tests: snapshot totals must equal the sum of per-stage
//! increments, including under concurrent recording from many threads.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_telemetry::{Registry, Telemetry, TelemetryConfig};
use std::sync::Arc;
use std::thread;

proptest! {
    /// Concurrent counter increments and histogram observations are
    /// never lost or double-counted: the snapshot totals equal the sums
    /// of what each thread recorded.
    #[test]
    fn concurrent_recording_sums_exactly(
        per_thread in prop::collection::vec(
            prop::collection::vec(0u64..10_000, 1..40),
            1..8,
        ),
    ) {
        let registry = Arc::new(Registry::new());
        let counter = registry.counter("t.events");
        let gauge = registry.gauge("t.level");
        let hist = registry.histogram("t.lat_us", &[100, 1_000, 5_000]);

        let handles: Vec<_> = per_thread
            .iter()
            .cloned()
            .map(|values| {
                let (c, g, h) = (counter.clone(), gauge.clone(), hist.clone());
                thread::spawn(move || {
                    for v in values {
                        c.inc();
                        g.add(v as i64);
                        h.observe(v);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }

        let expected_count: u64 = per_thread.iter().map(|v| v.len() as u64).sum();
        let expected_sum: u64 = per_thread.iter().flatten().sum();

        let snap = registry.snapshot();
        prop_assert_eq!(snap.counter("t.events"), Some(expected_count));
        prop_assert_eq!(snap.gauge("t.level"), Some(expected_sum as i64));
        let h = snap.histogram("t.lat_us").unwrap();
        prop_assert_eq!(h.count, expected_count);
        prop_assert_eq!(h.sum, expected_sum);
        // Bucket counts partition the observations: they sum to count.
        prop_assert_eq!(h.counts.iter().sum::<u64>(), h.count);
        // And each bucket holds exactly the observations its bounds admit.
        let mut by_bucket = vec![0u64; 4];
        for &v in per_thread.iter().flatten() {
            let idx = h.bounds.partition_point(|&b| b < v);
            by_bucket[idx] += 1;
        }
        prop_assert_eq!(&h.counts, &by_bucket);
    }

    /// The JSON-lines export of any snapshot parses line-by-line and
    /// preserves counter values exactly.
    #[test]
    fn snapshot_jsonl_roundtrips(values in prop::collection::vec(0u64..1_000_000, 0..20)) {
        let t = Telemetry::new(TelemetryConfig::default());
        let registry = t.registry().unwrap();
        for (i, v) in values.iter().enumerate() {
            registry.counter(&format!("fam{}.c{}", i % 3, i)).add(*v);
        }
        let snap = t.snapshot().unwrap();
        let lines = sand_telemetry::validate_jsonl(&snap.render_jsonl()).unwrap();
        prop_assert_eq!(lines.len(), values.len());
        for line in &lines {
            let name = line.get("name").and_then(|n| n.as_str()).unwrap();
            let value = line.get("value").and_then(|v| v.as_u64()).unwrap();
            prop_assert_eq!(snap.counter(name), Some(value));
        }
    }
}
