//! Point-in-time metric snapshots and their renderers.

use crate::json::json_escape;

/// A copied-out histogram: `counts` has one entry per bound plus a
/// trailing overflow bucket.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q` (0.0–1.0).
    /// Overflow observations report the last finite bound.
    pub fn quantile_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank.max(1) {
                return self
                    .bounds
                    .get(i)
                    .or(self.bounds.last())
                    .copied()
                    .unwrap_or(0);
            }
        }
        self.bounds.last().copied().unwrap_or(0)
    }
}

#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

#[derive(Clone, Debug, PartialEq)]
pub struct MetricEntry {
    pub name: String,
    pub value: MetricValue,
}

impl MetricEntry {
    /// The dotted prefix of the metric name (`store.disk_hits` → `store`).
    pub fn family(&self) -> &str {
        self.name.split('.').next().unwrap_or(&self.name)
    }

    /// One JSON object on a single line (`"type":"metric"`).
    pub fn render_json(&self) -> String {
        let head = format!(
            "{{\"type\":\"metric\",\"name\":\"{}\",\"family\":\"{}\"",
            json_escape(&self.name),
            json_escape(self.family()),
        );
        match &self.value {
            MetricValue::Counter(v) => format!("{head},\"kind\":\"counter\",\"value\":{v}}}"),
            MetricValue::Gauge(v) => format!("{head},\"kind\":\"gauge\",\"value\":{v}}}"),
            MetricValue::Histogram(h) => {
                let mut s = format!(
                    "{head},\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"buckets\":[",
                    h.count, h.sum
                );
                for (i, c) in h.counts.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    match h.bounds.get(i) {
                        Some(b) => s.push_str(&format!("{{\"le\":{b},\"n\":{c}}}")),
                        None => s.push_str(&format!("{{\"le\":\"inf\",\"n\":{c}}}")),
                    }
                }
                s.push_str("]}");
                s
            }
        }
    }
}

/// Point-in-time copy of every registered metric, sorted by name.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub entries: Vec<MetricEntry>,
}

impl Snapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)? {
            MetricValue::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.get(name)? {
            MetricValue::Histogram(h) => Some(h),
            _ => None,
        }
    }

    /// Distinct metric families present, sorted.
    pub fn families(&self) -> Vec<String> {
        let mut fams: Vec<String> = self
            .entries
            .iter()
            .map(|e| e.family().to_string())
            .collect();
        fams.sort();
        fams.dedup();
        fams
    }

    /// One JSON object per line, one line per metric.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&e.render_json());
            out.push('\n');
        }
        out
    }

    /// Human-readable aligned table. Histograms report count / mean /
    /// p50 / p99 bucket bounds instead of raw buckets.
    pub fn render_table(&self) -> String {
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.len())
            .max()
            .unwrap_or(4)
            .max(4);
        let mut out = format!("{:<name_w$}  {:<9}  value\n", "name", "kind");
        for e in &self.entries {
            match &e.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{:<name_w$}  {:<9}  {}\n", e.name, "counter", v));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("{:<name_w$}  {:<9}  {}\n", e.name, "gauge", v));
                }
                MetricValue::Histogram(h) => {
                    out.push_str(&format!(
                        "{:<name_w$}  {:<9}  count={} mean={:.1} p50<={} p99<={}\n",
                        e.name,
                        "histogram",
                        h.count,
                        h.mean(),
                        h.quantile_bound(0.50),
                        h.quantile_bound(0.99),
                    ));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{parse_json, validate_jsonl, Registry};

    fn sample_registry() -> Registry {
        let r = Registry::new();
        r.counter("store.hits").add(3);
        r.gauge("sched.queue_depth").set(-2);
        let h = r.histogram("engine.serve_us", &[10, 100]);
        h.observe(5);
        h.observe(50);
        h.observe(5000);
        r
    }

    #[test]
    fn jsonl_export_parses_and_carries_families() {
        let snap = sample_registry().snapshot();
        let lines = validate_jsonl(&snap.render_jsonl()).expect("export must parse");
        assert_eq!(lines.len(), 3);
        let fams: Vec<_> = lines
            .iter()
            .filter_map(|l| l.get("family").and_then(|f| f.as_str()))
            .collect();
        assert_eq!(fams, vec!["engine", "sched", "store"]);
        let hist = lines
            .iter()
            .find(|l| l.get("kind").and_then(|k| k.as_str()) == Some("histogram"))
            .expect("histogram line");
        assert_eq!(hist.get("count").and_then(|c| c.as_u64()), Some(3));
        let buckets = hist
            .get("buckets")
            .and_then(|b| b.as_array())
            .expect("buckets");
        assert_eq!(buckets.len(), 3);
        assert_eq!(
            buckets[2].get("le").and_then(|v| v.as_str()),
            Some("inf"),
            "overflow bucket is tagged inf"
        );
    }

    #[test]
    fn negative_gauge_renders_valid_json() {
        let snap = sample_registry().snapshot();
        let line = snap
            .render_jsonl()
            .lines()
            .find(|l| l.contains("queue_depth"))
            .map(String::from)
            .expect("gauge line");
        let v = parse_json(&line).expect("parses");
        assert_eq!(v.get("value").and_then(|n| n.as_f64()), Some(-2.0));
    }

    #[test]
    fn table_lists_every_metric() {
        let snap = sample_registry().snapshot();
        let table = snap.render_table();
        assert!(table.contains("store.hits"));
        assert!(table.contains("sched.queue_depth"));
        assert!(table.contains("engine.serve_us"));
        assert!(table.contains("count=3"));
    }

    #[test]
    fn quantile_bounds_walk_buckets() {
        let snap = sample_registry().snapshot();
        let h = snap.histogram("engine.serve_us").expect("hist");
        assert_eq!(h.quantile_bound(0.01), 10);
        assert_eq!(h.quantile_bound(0.5), 100);
        // p99 falls in the overflow bucket → last finite bound.
        assert_eq!(h.quantile_bound(0.99), 100);
        assert_eq!(snap.families(), vec!["engine", "sched", "store"]);
    }
}
