//! Per-batch critical-path timing and the stall-attribution report.
//!
//! ## The attribution model
//!
//! `serve_batch` fans a batch out as one demand job per sample and then
//! blocks until every tensor arrives, so the batch's serve latency is
//! governed by its **critical-path job** — the demand job that finished
//! last. A [`BatchProbe`] records, per sample and as nanosecond offsets
//! from a single batch-start instant:
//!
//! ```text
//! t0 ----- submit ----- start ---------------- end -------- serve
//!    plan          wait        exec (decode / store I/O /
//!                                    aug / other)           finalize
//! ```
//!
//! The trace for a batch is the timeline of its critical-path job:
//! `plan` (chunk lookup + job submission), `prefetch` (time the serve
//! thread spent waiting on an epoch-ahead prefetched batch that was
//! still in flight — zero when prefetching is off or the batch was
//! ready), `queue_wait` (scheduler queue), `exec` split into `decode`,
//! `store_io` (disk-tier reads), `remote` (cluster-tier RPC fetches and
//! owner pushes — zero on a single node), `persist` (write-through
//! appends to the crash-safe value log), `aug`, and `exec_other`
//! (residual — compression, channel
//! sends, once-claim waits), then `finalize` (collecting the remaining
//! tensors, stacking, consumption bookkeeping). The segments are
//! contiguous offsets of one clock, so they sum **exactly** to the
//! measured serve latency in nanoseconds — the invariant
//! `BatchTrace::breakdown_sum_ns() == serve_ns` is enforced by
//! construction and asserted in tests. The prefetch wait happens on the
//! serve thread before any demand job is submitted, so it is carved out
//! of the pre-submit window: `plan + prefetch` together cover t0 →
//! submit.
//!
//! Stage time inside `exec` is attributed through a thread-local: the
//! job installs its [`StageCells`] with [`with_stage_cells`], and
//! instrumented code anywhere below it (the store's disk I/O, the
//! engine's decode and op-apply paths) calls [`record_stage`]. When no
//! cells are installed — telemetry off, or work running outside a
//! probed job — `record_stage` is a thread-local read and a branch.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::json::json_escape;

/// Stages attributable inside a demand job's execution window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Video decode (warm demand sessions and batched predecode).
    Decode,
    /// Object-store disk-tier reads.
    StoreIo,
    /// Remote-tier network time: consistent-hash owner fetches and
    /// materialized-object pushes over `sand-net` RPC.
    Remote,
    /// Write-through persistence: value-log appends on the `put` path.
    Persist,
    /// Augmentation op application.
    Aug,
}

/// Per-job stage accumulators (nanoseconds). Atomic so the serve thread
/// can read them after the job thread finishes without synchronisation
/// beyond the channel it already waits on.
#[derive(Debug, Default)]
pub struct StageCells {
    decode_ns: AtomicU64,
    store_ns: AtomicU64,
    remote_ns: AtomicU64,
    persist_ns: AtomicU64,
    aug_ns: AtomicU64,
}

impl StageCells {
    #[inline]
    fn add(&self, stage: Stage, ns: u64) {
        let cell = match stage {
            Stage::Decode => &self.decode_ns,
            Stage::StoreIo => &self.store_ns,
            Stage::Remote => &self.remote_ns,
            Stage::Persist => &self.persist_ns,
            Stage::Aug => &self.aug_ns,
        };
        cell.fetch_add(ns, Ordering::Relaxed);
    }
}

thread_local! {
    static ACTIVE_STAGES: RefCell<Option<Arc<StageCells>>> = const { RefCell::new(None) };
}

/// Install `cells` as this thread's stage sink for the duration of `f`.
/// Restores the previous sink on exit (stage scopes nest).
pub fn with_stage_cells<R>(cells: Arc<StageCells>, f: impl FnOnce() -> R) -> R {
    let prev = ACTIVE_STAGES.with(|a| a.replace(Some(cells)));
    let out = f();
    ACTIVE_STAGES.with(|a| *a.borrow_mut() = prev);
    out
}

/// Attribute `d` to `stage` on the currently installed cells, if any.
/// A no-op (one thread-local read) when no probe is active.
#[inline]
pub fn record_stage(stage: Stage, d: Duration) {
    ACTIVE_STAGES.with(|a| {
        if let Some(cells) = a.borrow().as_ref() {
            cells.add(stage, d.as_nanos() as u64);
        }
    });
}

/// Per-sample timeline, all offsets in nanoseconds from the probe's t0.
#[derive(Debug, Default)]
pub struct SampleProbe {
    submit_off_ns: AtomicU64,
    start_off_ns: AtomicU64,
    end_off_ns: AtomicU64,
    stages: Arc<StageCells>,
}

/// Timing probe for one served batch. Created by
/// [`crate::Telemetry::batch_probe`] when telemetry is enabled; shared
/// (via `Arc`) between the serve thread and each demand job.
#[derive(Debug)]
pub struct BatchProbe {
    t0: Instant,
    samples: Vec<SampleProbe>,
    /// Serve-thread wait on an in-flight prefetched batch (ns).
    prefetch_ns: AtomicU64,
}

/// Identity of a served batch, carried into its [`BatchTrace`].
#[derive(Clone, Debug)]
pub struct BatchMeta {
    pub task: String,
    /// Owning tenant id when the engine runs in fleet mode; `None` for
    /// single-tenant engines (the field is then absent from exports).
    pub tenant: Option<String>,
    pub epoch: u64,
    pub iteration: u64,
    pub clock: u64,
}

impl BatchProbe {
    pub fn new(samples: usize) -> Arc<Self> {
        Arc::new(Self {
            t0: Instant::now(),
            samples: (0..samples).map(|_| SampleProbe::default()).collect(),
            prefetch_ns: AtomicU64::new(0),
        })
    }

    #[inline]
    fn off_ns(&self) -> u64 {
        self.t0.elapsed().as_nanos() as u64
    }

    /// Attribute serve-thread time spent waiting for a prefetched batch
    /// that was still materializing when the trainer asked for it.
    pub fn record_prefetch_wait(&self, d: Duration) {
        self.prefetch_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Record that sample `i`'s demand job was just handed to the
    /// scheduler.
    pub fn mark_submitted(&self, i: usize) {
        if let Some(s) = self.samples.get(i) {
            s.submit_off_ns.store(self.off_ns(), Ordering::Relaxed);
        }
    }

    /// Run sample `i`'s materialization under this probe: records the
    /// start/end offsets (queue wait and execution window) and installs
    /// the sample's stage cells so nested instrumentation attributes
    /// decode / store I/O / aug time to this job.
    pub fn run_sample<R>(&self, i: usize, f: impl FnOnce() -> R) -> R {
        let Some(s) = self.samples.get(i) else {
            return f();
        };
        s.start_off_ns.store(self.off_ns(), Ordering::Relaxed);
        let out = with_stage_cells(Arc::clone(&s.stages), f);
        s.end_off_ns.store(self.off_ns(), Ordering::Relaxed);
        out
    }

    /// Close the probe and produce the batch's trace. Called on the
    /// serve thread after the last tensor was collected and bookkeeping
    /// finished; `stall_budget_us` decides the `stalled` flag.
    pub fn finish(&self, meta: BatchMeta, stall_budget_us: u64) -> BatchTrace {
        let serve_ns = self.off_ns();
        // Critical path: the sample that finished last.
        let critical = self
            .samples
            .iter()
            .max_by_key(|s| s.end_off_ns.load(Ordering::Relaxed));
        let (submit, start, end, stages) = match critical {
            Some(s) => (
                s.submit_off_ns.load(Ordering::Relaxed),
                s.start_off_ns.load(Ordering::Relaxed),
                s.end_off_ns.load(Ordering::Relaxed),
                &*s.stages,
            ),
            None => (serve_ns, serve_ns, serve_ns, &EMPTY_CELLS),
        };
        // Offsets are monotone (submit <= start <= end <= serve) on the
        // happy path; saturate defensively so a torn read can't produce
        // a wrapped segment.
        let end = end.min(serve_ns);
        let start = start.min(end);
        let submit = submit.min(start);
        // The prefetch wait is serve-thread time before submission, so
        // it can never exceed the pre-submit window.
        let prefetch_ns = self.prefetch_ns.load(Ordering::Relaxed).min(submit);
        let exec_ns = end - start;
        // Clamp the stage split so it never exceeds the execution
        // window; the residual is exec_other. This keeps the trace's
        // breakdown summing exactly to serve_ns.
        let decode_ns = stages.decode_ns.load(Ordering::Relaxed).min(exec_ns);
        let store_ns = stages
            .store_ns
            .load(Ordering::Relaxed)
            .min(exec_ns - decode_ns);
        let remote_ns = stages
            .remote_ns
            .load(Ordering::Relaxed)
            .min(exec_ns - decode_ns - store_ns);
        let persist_ns = stages
            .persist_ns
            .load(Ordering::Relaxed)
            .min(exec_ns - decode_ns - store_ns - remote_ns);
        let aug_ns = stages
            .aug_ns
            .load(Ordering::Relaxed)
            .min(exec_ns - decode_ns - store_ns - remote_ns - persist_ns);
        BatchTrace {
            task: meta.task,
            tenant: meta.tenant,
            epoch: meta.epoch,
            iteration: meta.iteration,
            clock: meta.clock,
            samples: self.samples.len(),
            serve_ns,
            plan_ns: submit - prefetch_ns,
            prefetch_ns,
            queue_ns: start - submit,
            decode_ns,
            store_ns,
            remote_ns,
            persist_ns,
            aug_ns,
            exec_other_ns: exec_ns - decode_ns - store_ns - remote_ns - persist_ns - aug_ns,
            finalize_ns: serve_ns - end,
            stalled: serve_ns > stall_budget_us.saturating_mul(1_000),
        }
    }
}

static EMPTY_CELLS: StageCells = StageCells {
    decode_ns: AtomicU64::new(0),
    store_ns: AtomicU64::new(0),
    remote_ns: AtomicU64::new(0),
    persist_ns: AtomicU64::new(0),
    aug_ns: AtomicU64::new(0),
};

/// Labels of the ten contiguous segments of a [`BatchTrace`], in
/// timeline order. `BatchTrace::breakdown_ns` yields values in the same
/// order.
pub const STAGE_LABELS: [&str; 10] = [
    "plan",
    "prefetch",
    "queue_wait",
    "decode",
    "store_io",
    "remote",
    "persist",
    "aug",
    "exec_other",
    "finalize",
];

/// One served batch's critical-path timeline. All segment fields are
/// nanoseconds and sum exactly to `serve_ns`.
#[derive(Clone, Debug)]
pub struct BatchTrace {
    pub task: String,
    /// Owning tenant id in fleet mode (see [`BatchMeta::tenant`]).
    pub tenant: Option<String>,
    pub epoch: u64,
    pub iteration: u64,
    pub clock: u64,
    pub samples: usize,
    pub serve_ns: u64,
    pub plan_ns: u64,
    pub prefetch_ns: u64,
    pub queue_ns: u64,
    pub decode_ns: u64,
    pub store_ns: u64,
    pub remote_ns: u64,
    pub persist_ns: u64,
    pub aug_ns: u64,
    pub exec_other_ns: u64,
    pub finalize_ns: u64,
    pub stalled: bool,
}

impl BatchTrace {
    /// Segment values in [`STAGE_LABELS`] order.
    pub fn breakdown_ns(&self) -> [u64; 10] {
        [
            self.plan_ns,
            self.prefetch_ns,
            self.queue_ns,
            self.decode_ns,
            self.store_ns,
            self.remote_ns,
            self.persist_ns,
            self.aug_ns,
            self.exec_other_ns,
            self.finalize_ns,
        ]
    }

    /// Invariant check: the ten segments reassemble the serve latency.
    pub fn breakdown_sum_ns(&self) -> u64 {
        self.breakdown_ns().iter().sum()
    }

    pub fn batch_id(&self) -> String {
        format!("{}/{}/{}", self.task, self.epoch, self.iteration)
    }

    /// One JSON object (single line, `"type":"trace"`). Microsecond
    /// fields are derived from the nanosecond segments by integer
    /// division, so the µs breakdown sums to `serve_us` within one µs
    /// per segment of rounding.
    pub fn render_json(&self) -> String {
        let b = self.breakdown_ns();
        let mut s = format!(
            "{{\"type\":\"trace\",\"batch\":\"{}\",\"clock\":{},\"samples\":{},\"serve_us\":{},\"stalled\":{}",
            json_escape(&self.batch_id()),
            self.clock,
            self.samples,
            self.serve_ns / 1_000,
            self.stalled,
        );
        if let Some(tenant) = &self.tenant {
            s.push_str(&format!(",\"tenant\":\"{}\"", json_escape(tenant)));
        }
        for (label, ns) in STAGE_LABELS.iter().zip(b.iter()) {
            s.push_str(&format!(",\"{}_us\":{}", label, ns / 1_000));
        }
        s.push('}');
        s
    }
}

/// Every retained batch trace plus the stall budget that classified
/// them. Produced by `Telemetry::stall_report` / the engine's
/// `stall_report()` accessor.
#[derive(Clone, Debug)]
pub struct StallReport {
    pub budget_us: u64,
    pub traces: Vec<BatchTrace>,
    /// Rendered autotune decisions, oldest first (empty unless the
    /// adaptive controller is enabled and has committed knob changes).
    pub decisions: Vec<String>,
}

impl StallReport {
    pub fn stalled(&self) -> Vec<&BatchTrace> {
        self.traces.iter().filter(|t| t.stalled).collect()
    }

    /// Traces grouped by tenant, sorted by tenant id. Empty when no
    /// trace carries tenant attribution (single-tenant engines).
    pub fn tenant_sections(&self) -> Vec<(String, Vec<&BatchTrace>)> {
        let mut sections: Vec<(String, Vec<&BatchTrace>)> = Vec::new();
        for t in &self.traces {
            let Some(tenant) = &t.tenant else { continue };
            match sections.iter_mut().find(|(id, _)| id == tenant) {
                Some((_, v)) => v.push(t),
                None => sections.push((tenant.clone(), vec![t])),
            }
        }
        sections.sort_by(|a, b| a.0.cmp(&b.0));
        sections
    }

    /// Per-tenant totals in nanoseconds: `(serve, [ten segments])`,
    /// summed over the tenant's traces. Because every trace's segments
    /// sum exactly to its serve latency, the tenant's segment totals sum
    /// exactly to the tenant's serve total — the per-tenant split keeps
    /// the exact-sum invariant.
    fn tenant_totals(traces: &[&BatchTrace]) -> (u64, [u64; 10]) {
        let mut serve = 0u64;
        let mut segs = [0u64; 10];
        for t in traces {
            serve += t.serve_ns;
            for (acc, v) in segs.iter_mut().zip(t.breakdown_ns()) {
                *acc += v;
            }
        }
        (serve, segs)
    }

    /// Human-readable stall-attribution table: one row per stalled
    /// batch (all batches when the budget is 0), segments in µs.
    pub fn render_table(&self) -> String {
        let rows = self.stalled();
        let mut out = String::new();
        out.push_str(&format!(
            "stall attribution — budget {} µs, {} batch(es) over budget of {} traced\n",
            self.budget_us,
            rows.len(),
            self.traces.len(),
        ));
        out.push_str(&format!(
            "{:<18} {:>6} {:>9} | {:>8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}\n",
            "batch",
            "clock",
            "serve_us",
            "plan",
            "prefetch",
            "queue_wait",
            "decode",
            "store_io",
            "remote",
            "persist",
            "aug",
            "exec_other",
            "finalize",
        ));
        for t in rows {
            let b = t.breakdown_ns();
            out.push_str(&format!(
                "{:<18} {:>6} {:>9} | {:>8} {:>8} {:>10} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10} {:>8}\n",
                t.batch_id(),
                t.clock,
                t.serve_ns / 1_000,
                b[0] / 1_000,
                b[1] / 1_000,
                b[2] / 1_000,
                b[3] / 1_000,
                b[4] / 1_000,
                b[5] / 1_000,
                b[6] / 1_000,
                b[7] / 1_000,
                b[8] / 1_000,
                b[9] / 1_000,
            ));
        }
        let sections = self.tenant_sections();
        if !sections.is_empty() {
            let fleet_serve: u64 = sections
                .iter()
                .map(|(_, ts)| Self::tenant_totals(ts).0)
                .sum();
            out.push_str(&format!("per-tenant attribution ({}):\n", sections.len()));
            for (tenant, traces) in &sections {
                let (serve, segs) = Self::tenant_totals(traces);
                let share = if fleet_serve > 0 {
                    serve as f64 / fleet_serve as f64 * 100.0
                } else {
                    0.0
                };
                let stalled = traces.iter().filter(|t| t.stalled).count();
                out.push_str(&format!(
                    "  {tenant:<12} {:>4} batch(es), {:>9} µs serve ({share:>5.1}%), {stalled} stalled |",
                    traces.len(),
                    serve / 1_000,
                ));
                for (label, ns) in STAGE_LABELS.iter().zip(segs.iter()) {
                    out.push_str(&format!(" {label} {}", ns / 1_000));
                }
                out.push('\n');
            }
        }
        if !self.decisions.is_empty() {
            out.push_str(&format!("autotune decisions ({}):\n", self.decisions.len()));
            for d in &self.decisions {
                out.push_str(&format!("  {d}\n"));
            }
        }
        out
    }

    /// One JSON line per trace (stalled or not; the `stalled` field
    /// carries the classification), followed by one
    /// `"type":"autotune_decision"` line per controller decision when
    /// the adaptive control plane is active.
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for t in &self.traces {
            out.push_str(&t.render_json());
            out.push('\n');
        }
        // Per-tenant rollups in exact nanoseconds: consumers can verify
        // that each tenant's segment totals reassemble its serve total
        // without re-deriving them from the (µs-rounded) trace lines.
        for (tenant, traces) in self.tenant_sections() {
            let (serve, segs) = Self::tenant_totals(&traces);
            let mut line = format!(
                "{{\"type\":\"tenant_summary\",\"tenant\":\"{}\",\"batches\":{},\"serve_ns\":{}",
                json_escape(&tenant),
                traces.len(),
                serve,
            );
            for (label, ns) in STAGE_LABELS.iter().zip(segs.iter()) {
                line.push_str(&format!(",\"{label}_ns\":{ns}"));
            }
            line.push('}');
            out.push_str(&line);
            out.push('\n');
        }
        for d in &self.decisions {
            out.push_str(&format!(
                "{{\"type\":\"autotune_decision\",\"decision\":\"{}\"}}\n",
                json_escape(d)
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn meta() -> BatchMeta {
        BatchMeta {
            task: "train".into(),
            tenant: None,
            epoch: 0,
            iteration: 3,
            clock: 7,
        }
    }

    fn tenant_meta(tenant: &str, iteration: u64) -> BatchMeta {
        BatchMeta {
            task: "train".into(),
            tenant: Some(tenant.into()),
            epoch: 0,
            iteration,
            clock: iteration,
        }
    }

    #[test]
    fn breakdown_sums_exactly_to_serve_latency() {
        let probe = BatchProbe::new(3);
        for i in 0..3 {
            probe.mark_submitted(i);
            probe.run_sample(i, || {
                record_stage(Stage::Decode, Duration::from_micros(200));
                record_stage(Stage::StoreIo, Duration::from_micros(30));
                record_stage(Stage::Remote, Duration::from_micros(20));
                record_stage(Stage::Persist, Duration::from_micros(40));
                record_stage(Stage::Aug, Duration::from_micros(50));
                thread::sleep(Duration::from_millis(1));
            });
        }
        let trace = probe.finish(meta(), 0);
        assert_eq!(trace.breakdown_sum_ns(), trace.serve_ns);
        assert!(trace.serve_ns > 0);
        assert!(trace.decode_ns >= 200_000);
        assert!(trace.stalled, "budget 0 marks every batch stalled");
    }

    #[test]
    fn stage_clamp_preserves_sum_invariant() {
        let probe = BatchProbe::new(1);
        probe.mark_submitted(0);
        probe.run_sample(0, || {
            // Deliberately over-report: stage time far beyond the actual
            // execution window must be clamped, not break the invariant.
            record_stage(Stage::Decode, Duration::from_secs(10));
            record_stage(Stage::StoreIo, Duration::from_secs(10));
            record_stage(Stage::Persist, Duration::from_secs(10));
            record_stage(Stage::Aug, Duration::from_secs(10));
        });
        let trace = probe.finish(meta(), 0);
        assert_eq!(trace.breakdown_sum_ns(), trace.serve_ns);
    }

    #[test]
    fn stages_attribute_to_the_installed_cells_only() {
        let probe = BatchProbe::new(2);
        probe.mark_submitted(0);
        probe.run_sample(0, || {
            record_stage(Stage::Aug, Duration::from_micros(500));
        });
        // No cells installed here: must be dropped, not misattributed.
        record_stage(Stage::Aug, Duration::from_secs(1));
        probe.mark_submitted(1);
        probe.run_sample(1, || {});
        let trace = probe.finish(meta(), 0);
        // Critical sample is #1 (finished last) which recorded nothing.
        assert_eq!(trace.aug_ns, 0);
    }

    #[test]
    fn stage_scopes_nest_and_restore() {
        let outer = Arc::new(StageCells::default());
        let inner = Arc::new(StageCells::default());
        with_stage_cells(Arc::clone(&outer), || {
            record_stage(Stage::Decode, Duration::from_micros(10));
            with_stage_cells(Arc::clone(&inner), || {
                record_stage(Stage::Decode, Duration::from_micros(99));
            });
            record_stage(Stage::Decode, Duration::from_micros(10));
        });
        assert_eq!(outer.decode_ns.load(Ordering::Relaxed), 20_000);
        assert_eq!(inner.decode_ns.load(Ordering::Relaxed), 99_000);
    }

    /// The prefetch segment is carved out of the pre-submit window and
    /// keeps the exact-sum invariant; without a recorded wait it is 0.
    #[test]
    fn prefetch_wait_carves_out_of_plan_and_preserves_sum() {
        let probe = BatchProbe::new(0);
        thread::sleep(Duration::from_millis(2));
        probe.record_prefetch_wait(Duration::from_millis(1));
        let trace = probe.finish(meta(), 0);
        assert!(trace.prefetch_ns >= 1_000_000);
        assert_eq!(trace.breakdown_sum_ns(), trace.serve_ns);
        assert_eq!(trace.plan_ns + trace.prefetch_ns, trace.serve_ns);

        // Over-reported wait clamps to the pre-submit window.
        let probe = BatchProbe::new(1);
        probe.record_prefetch_wait(Duration::from_secs(30));
        probe.mark_submitted(0);
        probe.run_sample(0, || {});
        let trace = probe.finish(meta(), 0);
        assert_eq!(trace.breakdown_sum_ns(), trace.serve_ns);

        // No wait recorded → segment absent from the trace.
        let probe = BatchProbe::new(1);
        probe.mark_submitted(0);
        probe.run_sample(0, || {});
        let trace = probe.finish(meta(), 0);
        assert_eq!(trace.prefetch_ns, 0);
        assert_eq!(trace.breakdown_sum_ns(), trace.serve_ns);
    }

    #[test]
    fn high_stall_budget_unmarks_fast_batches() {
        let probe = BatchProbe::new(1);
        probe.mark_submitted(0);
        probe.run_sample(0, || {});
        let trace = probe.finish(meta(), 60_000_000); // 60 s budget
        assert!(!trace.stalled);
    }

    #[test]
    fn stall_report_renders_the_decision_log() {
        let probe = BatchProbe::new(1);
        probe.mark_submitted(0);
        probe.run_sample(0, || {});
        let report = StallReport {
            budget_us: 0,
            traces: vec![probe.finish(meta(), 0)],
            decisions: vec!["tick 3: prefetch_depth 1 -> 2 (late/miss dominate)".into()],
        };
        let table = report.render_table();
        assert!(table.contains("autotune decisions (1):"));
        assert!(table.contains("prefetch_depth 1 -> 2"));
        let jsonl = report.render_jsonl();
        let decision_line = jsonl
            .lines()
            .find(|l| l.contains("autotune_decision"))
            .expect("decision line present");
        let v = crate::parse_json(decision_line).expect("decision json parses");
        assert_eq!(
            v.get("type").and_then(|t| t.as_str()),
            Some("autotune_decision")
        );

        // Without decisions neither renderer mentions autotune at all.
        let silent = StallReport {
            budget_us: 0,
            traces: Vec::new(),
            decisions: Vec::new(),
        };
        assert!(!silent.render_table().contains("autotune"));
        assert!(!silent.render_jsonl().contains("autotune"));
    }

    /// Tenant attribution: traces group by tenant, the table gains a
    /// per-tenant section, and the JSONL rollup's nanosecond segment
    /// totals reassemble each tenant's serve total exactly.
    #[test]
    fn tenant_sections_split_exactly() {
        let mut traces = Vec::new();
        for (tenant, iters) in [("alpha", 3u64), ("beta", 2)] {
            for i in 0..iters {
                let probe = BatchProbe::new(1);
                probe.mark_submitted(0);
                probe.run_sample(0, || {
                    record_stage(Stage::Aug, Duration::from_micros(120));
                    thread::sleep(Duration::from_micros(300));
                });
                traces.push(probe.finish(tenant_meta(tenant, i), 0));
            }
        }
        // One untenanted trace must stay out of every section.
        let probe = BatchProbe::new(1);
        probe.mark_submitted(0);
        probe.run_sample(0, || {});
        traces.push(probe.finish(meta(), 0));

        let report = StallReport {
            budget_us: 0,
            traces,
            decisions: Vec::new(),
        };
        let sections = report.tenant_sections();
        assert_eq!(sections.len(), 2);
        assert_eq!(sections[0].0, "alpha");
        assert_eq!(sections[0].1.len(), 3);
        assert_eq!(sections[1].0, "beta");
        assert_eq!(sections[1].1.len(), 2);
        assert!(report
            .render_table()
            .contains("per-tenant attribution (2):"));

        let jsonl = report.render_jsonl();
        let summaries: Vec<_> = jsonl
            .lines()
            .filter(|l| l.contains("tenant_summary"))
            .collect();
        assert_eq!(summaries.len(), 2);
        for line in summaries {
            let v = crate::parse_json(line).expect("summary parses");
            let serve = v
                .get("serve_ns")
                .and_then(|x| x.as_u64())
                .expect("serve_ns present");
            let seg_sum: u64 = STAGE_LABELS
                .iter()
                .map(|l| {
                    v.get(&format!("{l}_ns"))
                        .and_then(|x| x.as_u64())
                        .expect("segment present")
                })
                .sum();
            assert_eq!(seg_sum, serve, "tenant split broke exact-sum: {line}");
            assert!(serve > 0);
        }
        // Trace lines carry the tenant field; the untenanted one omits it.
        let with_tenant = jsonl
            .lines()
            .filter(|l| l.contains("\"type\":\"trace\"") && l.contains("\"tenant\":"))
            .count();
        assert_eq!(with_tenant, 5);
    }

    /// Without tenant attribution nothing tenant-flavoured is emitted —
    /// the single-tenant export format is unchanged.
    #[test]
    fn no_tenants_means_no_tenant_sections() {
        let probe = BatchProbe::new(1);
        probe.mark_submitted(0);
        probe.run_sample(0, || {});
        let report = StallReport {
            budget_us: 0,
            traces: vec![probe.finish(meta(), 0)],
            decisions: Vec::new(),
        };
        assert!(report.tenant_sections().is_empty());
        assert!(!report.render_table().contains("per-tenant"));
        assert!(!report.render_jsonl().contains("tenant"));
    }

    #[test]
    fn trace_json_is_one_line_and_parses() {
        let probe = BatchProbe::new(1);
        probe.mark_submitted(0);
        probe.run_sample(0, || {});
        let trace = probe.finish(meta(), 0);
        let line = trace.render_json();
        assert!(!line.contains('\n'));
        let v = crate::parse_json(&line).expect("trace json parses");
        assert_eq!(
            v.get("type").and_then(|t| t.as_str()),
            Some("trace"),
            "line: {line}"
        );
        assert_eq!(v.get("batch").and_then(|t| t.as_str()), Some("train/0/3"));
    }
}
