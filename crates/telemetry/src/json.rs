//! Minimal JSON rendering and parsing helpers.
//!
//! The workspace is offline (no serde); the exporters hand-render JSON
//! and this module provides the matching escape helper plus a small
//! recursive-descent parser. The parser exists so `examples/telemetry.rs
//! --check` and CI can validate that the JSON-lines export actually
//! parses, without shelling out to external tools.

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Numbers are kept as `f64` (sufficient for the
/// metric magnitudes we export; validation, not arithmetic, is the use
/// case).
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, msg)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf8 in number"))?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf8 in string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse_json(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

/// Validate a JSON-lines document: every non-empty line must parse as a
/// standalone JSON value. Returns the parsed lines.
pub fn validate_jsonl(input: &str) -> Result<Vec<JsonValue>, String> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(parse_json(line).map_err(|e| format!("line {}: {}", i + 1, e))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = parse_json(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny","d":null,"e":true}}"#)
            .expect("valid json");
        assert_eq!(
            v.get("a").and_then(|a| a.as_array()).map(|a| a.len()),
            Some(3)
        );
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(|c| c.as_str()),
            Some("x\ny")
        );
        assert_eq!(v.get("b").and_then(|b| b.get("d")), Some(&JsonValue::Null));
    }

    #[test]
    fn escape_then_parse_roundtrips() {
        let nasty = "quote\" backslash\\ newline\n tab\t ünicode";
        let doc = format!("{{\"k\":\"{}\"}}", json_escape(nasty));
        let v = parse_json(&doc).expect("escaped string parses");
        assert_eq!(v.get("k").and_then(|k| k.as_str()), Some(nasty));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,2").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(validate_jsonl("{\"ok\":1}\nnot json\n").is_err());
    }

    #[test]
    fn jsonl_skips_blank_lines() {
        let lines = validate_jsonl("{\"a\":1}\n\n{\"b\":2}\n").expect("valid jsonl");
        assert_eq!(lines.len(), 2);
    }
}
