//! # sand-telemetry — observability for the SAND engine
//!
//! A lock-cheap metrics layer shared by every crate in the workspace:
//!
//! - [`Counter`], [`Gauge`], [`Histogram`] — atomics all the way down.
//!   Handles are `Arc`-backed clones; recording never takes a lock.
//! - [`Registry`] — name → metric map. Registration takes a short lock
//!   (done once at startup per subsystem); the hot path only touches the
//!   handles it was given.
//! - [`Snapshot`] — a point-in-time copy of every registered metric with
//!   JSON-lines export ([`Snapshot::render_jsonl`]) and a human-readable
//!   table ([`Snapshot::render_table`]).
//! - [`Telemetry`] — the cheap-clone facade the engine threads through
//!   the workspace. A disabled handle is a `None` inside: every probe
//!   constructor returns `None`, so instrumented code takes no
//!   timestamps, allocates nothing, and adds no atomic traffic.
//! - [`BatchProbe`] / [`BatchTrace`] / [`StallReport`] — per-batch
//!   critical-path timing used for stall attribution (see `report`).
//!
//! The overriding design rule: **when telemetry is off, the instrumented
//! binary must be bit-identical in behaviour and free of measurable
//! overhead** (pinned by `crates/bench/benches/telemetry_overhead.rs`).

mod flush;
mod json;
mod report;
mod snapshot;

pub use flush::{FlushConfig, JsonlFlusher};
pub use json::{parse_json, validate_jsonl, JsonValue};
pub use report::{
    record_stage, with_stage_cells, BatchMeta, BatchProbe, BatchTrace, SampleProbe, Stage,
    StageCells, StallReport, STAGE_LABELS,
};
pub use snapshot::{HistogramSnapshot, MetricEntry, MetricValue, Snapshot};

use sand_sanitizer::TrackedMutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Primitive metrics
// ---------------------------------------------------------------------------

/// Monotonically increasing event count.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    v: Arc<AtomicU64>,
}

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn inc(&self) {
        self.v.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.v.load(Ordering::Relaxed)
    }
}

/// Instantaneous signed level (queue depth, resident bytes, ...).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    v: Arc<AtomicI64>,
}

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, n: i64) {
        self.v.store(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.v.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.v.fetch_sub(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.v.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistState {
    /// One count per bucket plus a trailing overflow bucket.
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    count: AtomicU64,
}

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds; a value
/// larger than every bound lands in the trailing overflow bucket. Bounds
/// are fixed at registration so observation is a binary search plus three
/// relaxed atomic adds — no locking, no allocation.
#[derive(Clone, Debug)]
pub struct Histogram {
    bounds: Arc<Vec<u64>>,
    state: Arc<HistState>,
}

impl Histogram {
    pub fn new(bounds: &[u64]) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds: Arc::new(bounds.to_vec()),
            state: Arc::new(HistState {
                counts,
                sum: AtomicU64::new(0),
                count: AtomicU64::new(0),
            }),
        }
    }

    #[inline]
    pub fn observe(&self, value: u64) {
        let idx = self.bounds.partition_point(|&b| b < value);
        self.state.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.state.sum.fetch_add(value, Ordering::Relaxed);
        self.state.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in microseconds (the workspace-wide convention
    /// for `*_us` histograms).
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_micros() as u64);
    }

    pub fn bounds(&self) -> &[u64] {
        &self.bounds
    }

    pub fn count(&self) -> u64 {
        self.state.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.state.sum.load(Ordering::Relaxed)
    }

    pub fn snapshot_value(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.as_ref().clone(),
            counts: self
                .state
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Name → metric map. Metric names follow a `family.name` convention
/// (`store.disk_hits`, `sched.queue_depth`); the family prefix is what the
/// JSON-lines export and CI validation group on.
///
/// Registration is idempotent: asking for an existing name returns a
/// handle to the same underlying atomics, so independent subsystems can
/// share a metric without coordination.
#[derive(Debug)]
pub struct Registry {
    metrics: TrackedMutex<BTreeMap<String, Metric>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self {
            metrics: TrackedMutex::new("telemetry.registry", BTreeMap::new()),
        }
    }
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Unregisters `name`, returning whether it existed. Used when a
    /// subsystem re-registers a dynamically-sized metric family (e.g.
    /// per-shard histograms after a shard-count change) and must retire
    /// series the new shape no longer produces.
    pub fn remove(&self, name: &str) -> bool {
        self.metrics.lock().remove(name).is_some()
    }

    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            // Name collision across kinds: hand back a detached metric so
            // the caller still works; the first registration wins the name.
            _ => Counter::new(),
        }
    }

    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => Gauge::new(),
        }
    }

    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new(bounds)))
        {
            Metric::Histogram(h) => h.clone(),
            _ => Histogram::new(bounds),
        }
    }

    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock();
        let entries = m
            .iter()
            .map(|(name, metric)| MetricEntry {
                name: name.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot_value()),
                },
            })
            .collect();
        Snapshot { entries }
    }
}

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Telemetry configuration, carried by `EngineConfig::telemetry`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Upper bounds (µs) shared by every latency histogram.
    pub latency_buckets_us: Vec<u64>,
    /// Upper bounds (clock ticks) for the scheduler deadline-slack
    /// histogram. Must be able to represent the configured deadline
    /// clock range (lint SL024 flags configs that cannot).
    pub slack_buckets: Vec<u64>,
    /// A batch served slower than this is *stalled* and appears in the
    /// stall-attribution report. `0` means every batch is reported —
    /// useful for the example CLI and for tests.
    pub stall_budget_us: u64,
    /// Maximum number of per-batch traces retained (oldest dropped).
    pub trace_cap: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            latency_buckets_us: vec![
                50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000,
                500_000, 1_000_000,
            ],
            slack_buckets: vec![0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024],
            stall_budget_us: 0,
            trace_cap: 1024,
        }
    }
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

#[derive(Debug)]
struct TelemetryCore {
    config: TelemetryConfig,
    registry: Registry,
    traces: TrackedMutex<VecDeque<BatchTrace>>,
    /// Rendered autotune decisions, ring-buffered like traces so the
    /// stall report can show *why* the knobs sit where they sit.
    decisions: TrackedMutex<VecDeque<String>>,
}

/// The cheap-clone handle the engine threads through the workspace.
///
/// `Telemetry::disabled()` (also `Default`) carries no state at all:
/// every accessor returns `None` and every probe constructor short
/// circuits, so instrumented code pays a single branch.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    core: Option<Arc<TelemetryCore>>,
}

impl Telemetry {
    pub fn new(config: TelemetryConfig) -> Self {
        Self {
            core: Some(Arc::new(TelemetryCore {
                config,
                registry: Registry::new(),
                traces: TrackedMutex::new("telemetry.traces", VecDeque::new()),
                decisions: TrackedMutex::new("telemetry.decisions", VecDeque::new()),
            })),
        }
    }

    pub fn disabled() -> Self {
        Self::default()
    }

    pub fn is_enabled(&self) -> bool {
        self.core.is_some()
    }

    pub fn config(&self) -> Option<&TelemetryConfig> {
        self.core.as_deref().map(|c| &c.config)
    }

    pub fn registry(&self) -> Option<&Registry> {
        self.core.as_deref().map(|c| &c.registry)
    }

    /// `Instant::now()` only when enabled — the disabled path must not
    /// even read the clock.
    #[inline]
    pub fn now(&self) -> Option<Instant> {
        self.core.as_ref().map(|_| Instant::now())
    }

    /// Start a per-batch critical-path probe over `samples` demand jobs.
    pub fn batch_probe(&self, samples: usize) -> Option<Arc<BatchProbe>> {
        self.core.as_ref().map(|_| BatchProbe::new(samples))
    }

    pub fn push_trace(&self, trace: BatchTrace) {
        if let Some(core) = &self.core {
            let mut traces = core.traces.lock();
            if traces.len() >= core.config.trace_cap.max(1) {
                traces.pop_front();
            }
            traces.push_back(trace);
        }
    }

    /// Appends a rendered autotune decision to the decision log (same
    /// ring cap as traces). No-op when disabled.
    pub fn push_decision(&self, decision: String) {
        if let Some(core) = &self.core {
            let mut decisions = core.decisions.lock();
            if decisions.len() >= core.config.trace_cap.max(1) {
                decisions.pop_front();
            }
            decisions.push_back(decision);
        }
    }

    pub fn snapshot(&self) -> Option<Snapshot> {
        self.core.as_deref().map(|c| c.registry.snapshot())
    }

    pub fn stall_report(&self) -> Option<StallReport> {
        self.core.as_deref().map(|c| StallReport {
            budget_us: c.config.stall_budget_us,
            traces: c.traces.lock().iter().cloned().collect(),
            decisions: c.decisions.lock().iter().cloned().collect(),
        })
    }
}

// ---------------------------------------------------------------------------
// Per-subsystem metric bundles
// ---------------------------------------------------------------------------
//
// Each subsystem registers its handles once at startup via
// `XxxMetrics::register(&telemetry)`; `None` means telemetry is off and
// the subsystem keeps its zero-overhead path. Centralising the names
// here keeps the metric namespace coherent across crates.

/// Decode-side metrics (`decode.*`), recorded inside `sand-codec`.
#[derive(Clone, Debug)]
pub struct CodecMetrics {
    /// Wall time decoding one GOP segment (a keyframe-aligned run of
    /// requested indices).
    pub segment_us: Histogram,
    /// GOP segments decoded.
    pub segments: Counter,
}

impl CodecMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            segment_us: r.histogram("decode.segment_us", &c.latency_buckets_us),
            segments: r.counter("decode.segments"),
        })
    }
}

/// Object-store metrics (`store.*`), recorded inside `sand-storage`.
#[derive(Clone, Debug)]
pub struct StoreMetrics {
    pub mem_hits: Counter,
    pub disk_hits: Counter,
    pub misses: Counter,
    pub spills: Counter,
    pub evictions: Counter,
    pub puts: Counter,
    /// Disk-tier read latency (the `get` path).
    pub disk_read_us: Histogram,
    /// Disk-tier write latency (the write-through `put` path).
    pub disk_write_us: Histogram,
    /// Per-shard lock-wait latency (`store.shard<i>.lock_wait_us`), one
    /// histogram per shard, recording only *contended* acquisitions —
    /// the uncontended fast path never reads the clock.
    pub shard_lock_wait_us: Vec<Histogram>,
    /// Value-log append latency (the persistent tier's write path).
    pub vlog_append_us: Histogram,
    /// Per-segment replay latency observed during crash recovery.
    /// Recorded retroactively when metrics attach (recovery runs before
    /// telemetry is wired).
    pub vlog_replay_us: Histogram,
    /// Dead-byte percentage of the value log (0–100), updated after
    /// every accounting change that can move it materially.
    pub vlog_garbage_pct: Gauge,
    /// Total on-disk record bytes in the value log (live + dead).
    pub vlog_log_bytes: Gauge,
    /// Log compactions run.
    pub vlog_compactions: Counter,
    /// Fsyncs issued by the value log's append path (group commit's
    /// coalescing denominator; 0 under `SyncPolicy::Never`).
    pub vlog_fsyncs: Counter,
    /// Torn tails truncated during recovery.
    pub vlog_torn_truncations: Counter,
    /// Records rejected for checksum mismatch (recovery + runtime reads).
    pub vlog_corrupt_records: Counter,
    /// Legacy per-object files quarantined during migration.
    pub vlog_quarantined: Counter,
    /// Objects adopted from the log by the recovery replay.
    pub vlog_replayed_objects: Counter,
    /// Bytes resident in the memory tier, published on every accounting
    /// change so budget headroom is derivable from any snapshot.
    pub mem_bytes: Gauge,
    /// The configured memory-tier budget, published once at attach. The
    /// autotune controller reads `1 - mem_bytes/mem_budget` as headroom.
    pub mem_budget: Gauge,
}

impl StoreMetrics {
    /// `shards` is the store's shard count; one lock-wait histogram is
    /// registered per shard.
    pub fn register(t: &Telemetry, shards: usize) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        let this = Some(Self {
            mem_hits: r.counter("store.mem_hits"),
            disk_hits: r.counter("store.disk_hits"),
            misses: r.counter("store.misses"),
            spills: r.counter("store.spills"),
            evictions: r.counter("store.evictions"),
            puts: r.counter("store.puts"),
            disk_read_us: r.histogram("store.disk_read_us", &c.latency_buckets_us),
            disk_write_us: r.histogram("store.disk_write_us", &c.latency_buckets_us),
            shard_lock_wait_us: (0..shards.max(1))
                .map(|i| {
                    r.histogram(
                        &format!("store.shard{i}.lock_wait_us"),
                        &c.latency_buckets_us,
                    )
                })
                .collect(),
            vlog_append_us: r.histogram("store.vlog.append_us", &c.latency_buckets_us),
            vlog_replay_us: r.histogram("store.vlog.replay_us", &c.latency_buckets_us),
            vlog_garbage_pct: r.gauge("store.vlog.garbage_pct"),
            vlog_log_bytes: r.gauge("store.vlog.log_bytes"),
            vlog_compactions: r.counter("store.vlog.compactions"),
            vlog_fsyncs: r.counter("store.vlog.fsyncs"),
            vlog_torn_truncations: r.counter("store.vlog.torn_truncations"),
            vlog_corrupt_records: r.counter("store.vlog.corrupt_records"),
            vlog_quarantined: r.counter("store.vlog.quarantined"),
            vlog_replayed_objects: r.counter("store.vlog.replayed_objects"),
            mem_bytes: r.gauge("store.mem_bytes"),
            mem_budget: r.gauge("store.mem_budget"),
        });
        // Re-registration with a smaller shard count (store rebuilt after
        // a config change) must retire the now-orphaned series, or the
        // snapshot keeps exporting frozen histograms forever. Indices are
        // contiguous from 0, so sweep up from the first stale one.
        let mut i = shards.max(1);
        while r.remove(&format!("store.shard{i}.lock_wait_us")) {
            i += 1;
        }
        this
    }
}

/// Scheduler metrics (`sched.*`), recorded inside `sand-sched`.
#[derive(Clone, Debug)]
pub struct SchedMetrics {
    /// Jobs currently queued (all kinds).
    pub queue_depth: Gauge,
    /// Queue wait of demand jobs, submission → pick.
    pub demand_wait_us: Histogram,
    /// Queue wait of pre-materialization jobs, submission → pick.
    pub pre_wait_us: Histogram,
    /// Queue wait of epoch-ahead prefetch jobs, submission → pick.
    pub prefetch_wait_us: Histogram,
    /// How far (in clock ticks) a picked job's deadline sat above the
    /// most urgent queued deadline of the same kind. Non-zero demand
    /// slack means the affinity window overrode strict EDF order.
    pub deadline_slack: Histogram,
    /// Pre-materialization jobs run on their preferred worker.
    pub affinity_hits: Counter,
    /// Pre-materialization jobs stolen from a busy preferred worker.
    pub affinity_steals: Counter,
    /// Pinned demand jobs run on their preferred worker.
    pub demand_affinity_hits: Counter,
    /// Pinned demand jobs run elsewhere.
    pub demand_affinity_misses: Counter,
}

impl SchedMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            queue_depth: r.gauge("sched.queue_depth"),
            demand_wait_us: r.histogram("sched.demand_wait_us", &c.latency_buckets_us),
            pre_wait_us: r.histogram("sched.pre_wait_us", &c.latency_buckets_us),
            prefetch_wait_us: r.histogram("sched.prefetch_wait_us", &c.latency_buckets_us),
            deadline_slack: r.histogram("sched.deadline_slack", &c.slack_buckets),
            affinity_hits: r.counter("sched.affinity_hits"),
            affinity_steals: r.counter("sched.affinity_steals"),
            demand_affinity_hits: r.counter("sched.demand_affinity_hits"),
            demand_affinity_misses: r.counter("sched.demand_affinity_misses"),
        })
    }
}

/// VFS metrics (`vfs.*`), recorded inside `sand-vfs`.
#[derive(Clone, Debug)]
pub struct VfsMetrics {
    /// Provider fetch latency per `open`.
    pub fetch_us: Histogram,
    pub fetches: Counter,
}

impl VfsMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            fetch_us: r.histogram("vfs.fetch_us", &c.latency_buckets_us),
            fetches: r.counter("vfs.fetches"),
        })
    }
}

/// Materialize-pass metrics (`aug.*`), recorded by the engine.
#[derive(Clone, Debug)]
pub struct MaterializeMetrics {
    /// Wall time applying one augmentation op to one frame.
    pub op_us: Histogram,
    pub ops: Counter,
    /// Time a worker spent blocked on another worker's in-flight
    /// once-claim for the same node (contention on the shared scratch).
    pub scratch_wait_us: Histogram,
    pub scratch_waits: Counter,
}

impl MaterializeMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            op_us: r.histogram("aug.op_us", &c.latency_buckets_us),
            ops: r.counter("aug.ops"),
            scratch_wait_us: r.histogram("aug.scratch_wait_us", &c.latency_buckets_us),
            scratch_waits: r.counter("aug.scratch_waits"),
        })
    }
}

/// Engine-level metrics (`engine.*`).
#[derive(Clone, Debug)]
pub struct EngineMetrics {
    /// End-to-end latency serving one batch.
    pub serve_us: Histogram,
    pub batches_served: Counter,
    /// Batches served slower than `stall_budget_us`.
    pub batches_stalled: Counter,
    /// Warm decode-session resumes (tip reused, keyframe re-decode skipped).
    pub warm_hits: Counter,
    /// Demand decodes that had to restart from a keyframe.
    pub cold_starts: Counter,
    /// Demand decode latency (one frame through a warm session).
    pub demand_decode_us: Histogram,
    /// Batched predecode latency (one GOP-grouped `decode_indices` call).
    pub predecode_us: Histogram,
    /// `ViewProvider::fetch` calls served straight from the compressed
    /// cache (memory tier) without touching the decoder.
    pub compressed_hits_mem: Counter,
    /// Same, but re-read from the store's spilled disk tier.
    pub compressed_hits_disk: Counter,
    /// Live prefetcher look-ahead depth as the serve path sees it. The
    /// `engine.effective_*` gauges mirror the *applied* knob values (after
    /// autotune, setters, and clamps), so decision logs and operators
    /// read the same numbers `metrics_snapshot()` exports.
    pub effective_prefetch_depth: Gauge,
    /// Live scheduler demand-slack window actually in force.
    pub effective_demand_slack: Gauge,
    /// Live materialize fan-out actually in force.
    pub effective_aug_threads: Gauge,
    /// Live demand-decode fan-out actually in force.
    pub effective_decode_threads: Gauge,
    /// Remote-tier peer count the placement ring was built over
    /// (0 when the remote tier is disabled).
    pub effective_remote_peers: Gauge,
    /// Remote-tier per-attempt fetch timeout in milliseconds (0 when
    /// the remote tier is disabled).
    pub effective_remote_timeout_ms: Gauge,
}

impl EngineMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            serve_us: r.histogram("engine.serve_us", &c.latency_buckets_us),
            batches_served: r.counter("engine.batches_served"),
            batches_stalled: r.counter("engine.batches_stalled"),
            warm_hits: r.counter("engine.warm_hits"),
            cold_starts: r.counter("engine.cold_starts"),
            demand_decode_us: r.histogram("engine.demand_decode_us", &c.latency_buckets_us),
            predecode_us: r.histogram("engine.predecode_us", &c.latency_buckets_us),
            compressed_hits_mem: r.counter("engine.compressed_hits_mem"),
            compressed_hits_disk: r.counter("engine.compressed_hits_disk"),
            effective_prefetch_depth: r.gauge("engine.effective_prefetch_depth"),
            effective_demand_slack: r.gauge("engine.effective_demand_slack"),
            effective_aug_threads: r.gauge("engine.effective_aug_threads"),
            effective_decode_threads: r.gauge("engine.effective_decode_threads"),
            effective_remote_peers: r.gauge("engine.effective_remote_peers"),
            effective_remote_timeout_ms: r.gauge("engine.effective_remote_timeout_ms"),
        })
    }
}

/// Remote-tier metrics (`net.*`), recorded by `sand-net`'s client,
/// server, and `RemoteTier` paths. Counters split by outcome so the
/// cluster example can assert "shared ancestors materialized once"
/// (`fetch_hits > 0`) and "degradation happened" (`fetch_errors > 0`,
/// `peers_down > 0`) straight from a snapshot.
#[derive(Clone, Debug)]
pub struct NetMetrics {
    /// Remote-tier fetches answered by the owner node with the bytes.
    pub fetch_hits: Counter,
    /// Remote-tier fetches the owner answered with `Miss`.
    pub fetch_misses: Counter,
    /// Remote-tier fetches that failed at the transport layer after all
    /// retries (timeout, refused connection, protocol error). Each one
    /// falls back to local materialization — never a wrong answer.
    pub fetch_errors: Counter,
    /// Concurrent local misses for a key that piggybacked on an already
    /// in-flight fetch instead of issuing their own RPC (the remote
    /// tier's singleflight).
    pub fetch_coalesced: Counter,
    /// Transport-level retry attempts (all verbs).
    pub retries: Counter,
    /// Materialized objects pushed to their ring owner.
    pub pushes: Counter,
    /// Owner pushes abandoned after retries (best effort; the object
    /// stays local).
    pub push_errors: Counter,
    /// End-to-end remote fetch latency (connect + RPC + copy).
    pub fetch_us: Histogram,
    /// Peers currently marked down by the failure breaker.
    pub peers_down: Gauge,
    /// Payload bytes received from peers.
    pub bytes_rx: Counter,
    /// Payload bytes sent to peers.
    pub bytes_tx: Counter,
    /// Requests a `ViewServer` on this node has served.
    pub server_requests: Counter,
    /// Requests a `ViewServer` answered with an error response.
    pub server_errors: Counter,
}

impl NetMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            fetch_hits: r.counter("net.fetch_hits"),
            fetch_misses: r.counter("net.fetch_misses"),
            fetch_errors: r.counter("net.fetch_errors"),
            fetch_coalesced: r.counter("net.fetch_coalesced"),
            retries: r.counter("net.retries"),
            pushes: r.counter("net.pushes"),
            push_errors: r.counter("net.push_errors"),
            fetch_us: r.histogram("net.fetch_us", &c.latency_buckets_us),
            peers_down: r.gauge("net.peers_down"),
            bytes_rx: r.counter("net.bytes_rx"),
            bytes_tx: r.counter("net.bytes_tx"),
            server_requests: r.counter("net.server_requests"),
            server_errors: r.counter("net.server_errors"),
        })
    }
}

/// Epoch-ahead prefetcher metrics (`prefetch.*`), recorded by the
/// engine's batch prefetch pipeline.
#[derive(Clone, Debug)]
pub struct PrefetchMetrics {
    /// Entries served straight from a fully materialized prefetch build.
    pub hit: Counter,
    /// Entries whose build was in flight — the trainer had to wait for
    /// it before serving.
    pub late: Counter,
    /// Entries discarded without serving: chunk rollover, a stale-chunk
    /// take, or a cancellation racing the consume path.
    pub cancelled: Counter,
    /// Entries consumed but unusable (a sample failed or never ran) —
    /// the batch was served inline instead.
    pub miss: Counter,
    /// Prefetch entries registered with the window (one per speculative
    /// batch). Every entry settles exactly one outcome counter, so
    /// `scheduled == hit + late + miss + cancelled` once all entries are
    /// consumed. Serves that never had an entry (cold start, window gap)
    /// count nowhere here.
    pub scheduled: Counter,
    /// Serve-thread wait for an in-flight prefetched batch.
    pub wait_us: Histogram,
}

impl PrefetchMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            hit: r.counter("prefetch.hit"),
            late: r.counter("prefetch.late"),
            cancelled: r.counter("prefetch.cancelled"),
            miss: r.counter("prefetch.miss"),
            scheduled: r.counter("prefetch.scheduled"),
            wait_us: r.histogram("prefetch.wait_us", &c.latency_buckets_us),
        })
    }
}

/// Adaptive-controller metrics (`autotune.*`), recorded by the engine's
/// closed-loop control plane: tick/decision counters plus one gauge per
/// driven knob so the current operating point is visible in any
/// snapshot.
#[derive(Clone, Debug)]
pub struct AutotuneMetrics {
    /// Control ticks taken (including observe-only ones).
    pub ticks: Counter,
    /// Knob changes committed.
    pub decisions: Counter,
    /// Committed decisions that raised a knob.
    pub raises: Counter,
    /// Committed decisions that lowered a knob.
    pub lowers: Counter,
    /// Live prefetcher look-ahead depth.
    pub prefetch_depth: Gauge,
    /// Live scheduler demand-slack window.
    pub demand_slack: Gauge,
    /// Live materialize fan-out.
    pub aug_threads: Gauge,
    /// Live demand-decode fan-out.
    pub decode_threads: Gauge,
}

impl AutotuneMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let r = t.registry()?;
        Some(Self {
            ticks: r.counter("autotune.ticks"),
            decisions: r.counter("autotune.decisions"),
            raises: r.counter("autotune.raises"),
            lowers: r.counter("autotune.lowers"),
            prefetch_depth: r.gauge("autotune.prefetch_depth"),
            demand_slack: r.gauge("autotune.demand_slack"),
            aug_threads: r.gauge("autotune.aug_threads"),
            decode_threads: r.gauge("autotune.decode_threads"),
        })
    }
}

/// Per-loader training metrics (`loader.<name>.*`), recorded by the
/// trainer for SAND and every baseline loader alike, so stall
/// attribution across loaders reads from one registry.
#[derive(Clone, Debug)]
pub struct LoaderMetrics {
    /// Trainer-observed stall per iteration (time blocked in
    /// `next_batch`).
    pub stall_us: Histogram,
    /// Batches delivered.
    pub batches: Counter,
    /// Cumulative loader CPU work at the end of the run, in
    /// microseconds.
    pub cpu_work_us: Counter,
}

impl LoaderMetrics {
    /// `loader` is the loader's `name()` (`sand`, `cpu`, `gpu`, ...);
    /// it becomes part of the metric names.
    pub fn register(t: &Telemetry, loader: &str) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            stall_us: r.histogram(&format!("loader.{loader}.stall_us"), &c.latency_buckets_us),
            batches: r.counter(&format!("loader.{loader}.batches")),
            cpu_work_us: r.counter(&format!("loader.{loader}.cpu_work_us")),
        })
    }
}

/// Per-tenant attribution metrics (`tenant.<id>.*`), registered by the
/// engine for every admitted fleet tenant so each tenant's service is
/// visible in any snapshot alongside the fleet-wide counters.
#[derive(Clone, Debug)]
pub struct TenantMetrics {
    /// Batches served to this tenant.
    pub batches_served: Counter,
    /// Per-batch serve latency for this tenant's batches.
    pub serve_us: Histogram,
    /// This tenant's batches that exceeded the stall budget.
    pub stalled: Counter,
}

impl TenantMetrics {
    /// `tenant` is the fleet-assigned tenant id; it becomes part of the
    /// metric names.
    pub fn register(t: &Telemetry, tenant: &str) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            batches_served: r.counter(&format!("tenant.{tenant}.batches_served")),
            serve_us: r.histogram(&format!("tenant.{tenant}.serve_us"), &c.latency_buckets_us),
            stalled: r.counter(&format!("tenant.{tenant}.stalled")),
        })
    }
}

/// Fleet-wide cross-job dedup metrics (`fleet.*`), recorded by the
/// engine's singleflight claim map: how many materializations were won
/// (computed once) versus adopted zero-copy by a racing tenant.
#[derive(Clone, Debug)]
pub struct FleetMetrics {
    /// Materializations computed by a singleflight winner.
    pub dedup_wins: Counter,
    /// Materializations adopted from a concurrent winner's `Arc` —
    /// work another tenant would otherwise have duplicated.
    pub dedup_adoptions: Counter,
    /// Time waiters spent blocked on a winner's in-flight computation.
    pub dedup_wait_us: Histogram,
    /// Tenants admitted by the fleet's admission control.
    pub admitted: Gauge,
    /// Tenants rejected because their working set would blow the budget.
    pub rejected: Counter,
}

impl FleetMetrics {
    pub fn register(t: &Telemetry) -> Option<Self> {
        let (r, c) = (t.registry()?, t.config()?);
        Some(Self {
            dedup_wins: r.counter("fleet.dedup_wins"),
            dedup_adoptions: r.counter("fleet.dedup_adoptions"),
            dedup_wait_us: r.histogram("fleet.dedup_wait_us", &c.latency_buckets_us),
            admitted: r.gauge("fleet.admitted"),
            rejected: r.counter("fleet.rejected"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let r = Registry::new();
        let c = r.counter("t.count");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("t.depth");
        g.add(7);
        g.sub(2);
        assert_eq!(g.get(), 5);
        g.set(-3);
        assert_eq!(g.get(), -3);
    }

    #[test]
    fn registry_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("t.c");
        let b = r.counter("t.c");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("t.c"), Some(2));
    }

    #[test]
    fn histogram_buckets_values() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        let s = h.snapshot_value();
        // counts: <=10 -> {5,10}, <=100 -> {11,100}, <=1000 -> {}, overflow -> {5000}
        assert_eq!(s.counts, vec![2, 2, 0, 1]);
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 5 + 10 + 11 + 100 + 5000);
    }

    #[test]
    fn disabled_telemetry_has_no_state() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(t.registry().is_none());
        assert!(t.now().is_none());
        assert!(t.batch_probe(4).is_none());
        assert!(t.snapshot().is_none());
        assert!(t.stall_report().is_none());
        assert!(CodecMetrics::register(&t).is_none());
        assert!(StoreMetrics::register(&t, 4).is_none());
        assert!(SchedMetrics::register(&t).is_none());
        assert!(VfsMetrics::register(&t).is_none());
        assert!(MaterializeMetrics::register(&t).is_none());
        assert!(EngineMetrics::register(&t).is_none());
        assert!(NetMetrics::register(&t).is_none());
        assert!(PrefetchMetrics::register(&t).is_none());
        assert!(AutotuneMetrics::register(&t).is_none());
        assert!(LoaderMetrics::register(&t, "cpu").is_none());
        t.push_decision("tick 1: prefetch_depth 0 -> 1".into());
        assert!(t.stall_report().is_none());
    }

    #[test]
    fn decision_log_rides_the_stall_report() {
        let t = Telemetry::new(TelemetryConfig {
            trace_cap: 2,
            ..TelemetryConfig::default()
        });
        assert_eq!(
            t.stall_report().expect("enabled").decisions.len(),
            0,
            "no decisions until the controller pushes some"
        );
        for i in 0..4 {
            t.push_decision(format!("tick {i}: prefetch_depth {i} -> {}", i + 1));
        }
        let report = t.stall_report().expect("enabled");
        assert_eq!(report.decisions.len(), 2, "same ring cap as traces");
        assert_eq!(report.decisions[0], "tick 2: prefetch_depth 2 -> 3");
        assert_eq!(report.decisions[1], "tick 3: prefetch_depth 3 -> 4");
    }

    #[test]
    fn store_metrics_register_one_lock_wait_histogram_per_shard() {
        let t = Telemetry::new(TelemetryConfig::default());
        let m = StoreMetrics::register(&t, 3).expect("enabled");
        assert_eq!(m.shard_lock_wait_us.len(), 3);
        m.shard_lock_wait_us[2].observe(17);
        let snap = t.snapshot().expect("enabled");
        assert_eq!(
            snap.histogram("store.shard2.lock_wait_us").map(|h| h.count),
            Some(1)
        );
        assert_eq!(
            snap.histogram("store.shard0.lock_wait_us").map(|h| h.count),
            Some(0)
        );
    }

    #[test]
    fn store_metrics_reregister_retires_stale_shard_series() {
        let t = Telemetry::new(TelemetryConfig::default());
        let wide = StoreMetrics::register(&t, 8).expect("enabled");
        assert_eq!(wide.shard_lock_wait_us.len(), 8);
        wide.shard_lock_wait_us[7].observe(17);
        // The store is rebuilt with fewer shards (config change):
        // re-registration must retire shard2..shard7, not leak them as
        // frozen series in every future snapshot.
        let narrow = StoreMetrics::register(&t, 2).expect("enabled");
        assert_eq!(narrow.shard_lock_wait_us.len(), 2);
        let snap = t.snapshot().expect("enabled");
        assert!(snap.histogram("store.shard1.lock_wait_us").is_some());
        for i in 2..8 {
            assert!(
                snap.histogram(&format!("store.shard{i}.lock_wait_us"))
                    .is_none(),
                "stale shard{i} series leaked"
            );
        }
        // Growing again re-creates the full family from scratch.
        let wide2 = StoreMetrics::register(&t, 4).expect("enabled");
        assert_eq!(wide2.shard_lock_wait_us.len(), 4);
        let snap = t.snapshot().expect("enabled");
        assert_eq!(
            snap.histogram("store.shard3.lock_wait_us").map(|h| h.count),
            Some(0)
        );
    }

    #[test]
    fn registry_remove_reports_presence() {
        let r = Registry::default();
        let c = r.counter("x.count");
        c.inc();
        assert!(r.remove("x.count"));
        assert!(!r.remove("x.count"));
        assert!(r.snapshot().entries.is_empty());
    }

    #[test]
    fn trace_ring_respects_cap() {
        let t = Telemetry::new(TelemetryConfig {
            trace_cap: 2,
            ..TelemetryConfig::default()
        });
        for i in 0..5 {
            let probe = t.batch_probe(1).expect("enabled");
            let trace = probe.finish(
                BatchMeta {
                    task: "t".into(),
                    tenant: None,
                    epoch: 0,
                    iteration: i,
                    clock: i,
                },
                0,
            );
            t.push_trace(trace);
        }
        let report = t.stall_report().expect("enabled");
        assert_eq!(report.traces.len(), 2);
        assert_eq!(report.traces[0].iteration, 3);
        assert_eq!(report.traces[1].iteration, 4);
    }
}
