//! Interval-driven JSONL metric flushing for long runs.
//!
//! `Telemetry::snapshot` is export-on-demand: callers get the registry
//! state when they ask for it, and a run that crashes between asks
//! leaves nothing behind. [`JsonlFlusher`] closes that gap: a background
//! thread appends every registered metric as JSON lines (the same
//! format as [`crate::Snapshot::render_jsonl`]) to a file on a fixed
//! interval, plus one final flush at shutdown, so the file always holds
//! a recent picture of the run.
//!
//! Each flush appends one full snapshot delimited by a
//! `{"type":"flush","seq":N}` marker line, so consumers can split the
//! stream back into snapshots. A byte cap bounds disk usage: when the
//! active file exceeds it after a flush, the file is rotated to
//! `<path>.1` (replacing any previous rotation) and a fresh file is
//! started — long runs keep at most two generations on disk.

use crate::Telemetry;
use sand_sanitizer::{TrackedCondvar, TrackedMutex};
use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Flusher configuration.
#[derive(Clone, Debug)]
pub struct FlushConfig {
    /// Destination file; parent directories are created. Appended to if
    /// it already exists.
    pub path: PathBuf,
    /// Time between flushes.
    pub interval: Duration,
    /// Rotation cap in bytes: after a flush that leaves the file larger
    /// than this, the file is renamed to `<path>.1` (replacing any
    /// previous rotation) and the next flush starts fresh. `0` disables
    /// rotation.
    pub rotate_cap_bytes: u64,
}

impl Default for FlushConfig {
    fn default() -> Self {
        Self {
            path: PathBuf::from("sand-metrics.jsonl"),
            interval: Duration::from_secs(10),
            rotate_cap_bytes: 64 << 20,
        }
    }
}

struct FlushShared {
    stop: TrackedMutex<bool>,
    wake: TrackedCondvar,
    flushes: AtomicU64,
}

/// Periodic snapshot-to-JSONL appender. Stops (with a final flush) on
/// [`JsonlFlusher::stop`] or drop.
pub struct JsonlFlusher {
    shared: Arc<FlushShared>,
    handle: Option<JoinHandle<()>>,
}

impl JsonlFlusher {
    /// Starts the background flush thread. With disabled telemetry the
    /// thread idles and writes nothing.
    pub fn start(telemetry: Telemetry, config: FlushConfig) -> io::Result<Self> {
        if let Some(parent) = config.path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent)?;
            }
        }
        let shared = Arc::new(FlushShared {
            stop: TrackedMutex::new("telemetry.flush", false),
            wake: TrackedCondvar::new(),
            flushes: AtomicU64::new(0),
        });
        let worker_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("sand-telemetry-flush".into())
            .spawn(move || loop {
                let stopped = {
                    let mut stop = worker_shared.stop.lock();
                    if !*stop {
                        worker_shared.wake.wait_for(&mut stop, config.interval);
                    }
                    *stop
                };
                // Best-effort: an unwritable path must not take the run
                // down, and the next tick retries.
                let _ = flush_once(&telemetry, &config, &worker_shared);
                if stopped {
                    return;
                }
            })?;
        Ok(Self {
            shared,
            handle: Some(handle),
        })
    }

    /// Completed flushes so far (includes empty flushes on disabled
    /// telemetry; excludes flushes that failed to write).
    #[must_use]
    pub fn flushes(&self) -> u64 {
        self.shared.flushes.load(Ordering::Relaxed)
    }

    /// Signals the thread, waits for its final flush, and joins it.
    pub fn stop(mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        *self.shared.stop.lock() = true;
        self.shared.wake.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for JsonlFlusher {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

fn flush_once(telemetry: &Telemetry, config: &FlushConfig, shared: &FlushShared) -> io::Result<()> {
    let Some(snapshot) = telemetry.snapshot() else {
        shared.flushes.fetch_add(1, Ordering::Relaxed);
        return Ok(());
    };
    let seq = shared.flushes.load(Ordering::Relaxed);
    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&config.path)?;
    file.write_all(format!("{{\"type\":\"flush\",\"seq\":{seq}}}\n").as_bytes())?;
    file.write_all(snapshot.render_jsonl().as_bytes())?;
    file.flush()?;
    drop(file);
    shared.flushes.fetch_add(1, Ordering::Relaxed);
    if config.rotate_cap_bytes > 0 {
        if let Ok(meta) = fs::metadata(&config.path) {
            if meta.len() > config.rotate_cap_bytes {
                let mut rotated = config.path.clone().into_os_string();
                rotated.push(".1");
                let _ = fs::rename(&config.path, PathBuf::from(rotated));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::{validate_jsonl, TelemetryConfig};

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("sand_flush_{}_{}", name, std::process::id()))
    }

    fn wait_for_flushes(f: &JsonlFlusher, n: u64) {
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while f.flushes() < n {
            assert!(
                std::time::Instant::now() < deadline,
                "flusher stuck at {} flushes",
                f.flushes()
            );
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn flushes_parse_and_carry_markers() {
        let dir = tmp("basic");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("metrics.jsonl");
        let t = Telemetry::new(TelemetryConfig::default());
        if let Some(r) = t.registry() {
            r.counter("store.mem_hits").add(3);
            r.gauge("sched.queue_depth").set(1);
        }
        let flusher = JsonlFlusher::start(
            t,
            FlushConfig {
                path: path.clone(),
                interval: Duration::from_millis(5),
                rotate_cap_bytes: 0,
            },
        )
        .unwrap();
        wait_for_flushes(&flusher, 2);
        flusher.stop();
        let body = fs::read_to_string(&path).unwrap();
        let lines = validate_jsonl(&body).expect("flushed file must be valid JSONL");
        let markers: Vec<u64> = lines
            .iter()
            .filter(|l| l.get("type").and_then(|v| v.as_str()) == Some("flush"))
            .filter_map(|l| l.get("seq").and_then(|v| v.as_u64()))
            .collect();
        assert!(markers.len() >= 2, "markers: {markers:?}");
        assert_eq!(markers[0], 0, "flush sequence starts at 0");
        assert!(
            lines
                .iter()
                .any(|l| l.get("name").and_then(|v| v.as_str()) == Some("store.mem_hits")),
            "metric lines flushed"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_caps_the_active_file() {
        let dir = tmp("rotate");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("metrics.jsonl");
        let t = Telemetry::new(TelemetryConfig::default());
        if let Some(r) = t.registry() {
            r.counter("engine.batches_served").add(1);
        }
        let flusher = JsonlFlusher::start(
            t,
            FlushConfig {
                path: path.clone(),
                interval: Duration::from_millis(2),
                // Smaller than one snapshot: every flush rotates.
                rotate_cap_bytes: 16,
            },
        )
        .unwrap();
        wait_for_flushes(&flusher, 3);
        flusher.stop();
        let rotated = PathBuf::from({
            let mut s = path.clone().into_os_string();
            s.push(".1");
            s
        });
        assert!(rotated.exists(), "rotated generation exists");
        let meta = fs::metadata(&rotated).unwrap();
        assert!(meta.len() > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disabled_telemetry_writes_nothing() {
        let dir = tmp("disabled");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("metrics.jsonl");
        let flusher = JsonlFlusher::start(
            Telemetry::disabled(),
            FlushConfig {
                path: path.clone(),
                interval: Duration::from_millis(2),
                rotate_cap_bytes: 0,
            },
        )
        .unwrap();
        wait_for_flushes(&flusher, 2);
        flusher.stop();
        assert!(!path.exists(), "no file for disabled telemetry");
        let _ = fs::remove_dir_all(&dir);
    }

    /// Splits a flushed JSONL body into per-flush sections of metric
    /// names, one section per `{"type":"flush"}` marker.
    fn sections(body: &str) -> Vec<Vec<String>> {
        let lines = validate_jsonl(body).expect("flushed file must be valid JSONL");
        let mut out: Vec<Vec<String>> = Vec::new();
        for l in &lines {
            if l.get("type").and_then(|v| v.as_str()) == Some("flush") {
                out.push(Vec::new());
            } else if let Some(name) = l.get("name").and_then(|v| v.as_str()) {
                if let Some(cur) = out.last_mut() {
                    cur.push(name.to_string());
                }
            }
        }
        out
    }

    #[test]
    fn removed_series_stop_appearing_in_later_flushes() {
        let dir = tmp("remove");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("metrics.jsonl");
        let t = Telemetry::new(TelemetryConfig::default());
        let r = t.registry().unwrap();
        r.counter("series.kept").add(1);
        r.counter("series.retired").add(2);
        let flusher = JsonlFlusher::start(
            t.clone(),
            FlushConfig {
                path: path.clone(),
                interval: Duration::from_millis(5),
                rotate_cap_bytes: 0,
            },
        )
        .unwrap();
        // Let at least one full section carry both series, then retire
        // one while the flusher keeps running.
        wait_for_flushes(&flusher, 1);
        assert!(t.registry().unwrap().remove("series.retired"));
        wait_for_flushes(&flusher, flusher.flushes() + 2);
        flusher.stop();
        let secs = sections(&fs::read_to_string(&path).unwrap());
        assert!(secs.len() >= 3, "sections: {}", secs.len());
        let first = secs.first().unwrap();
        assert!(first.iter().any(|n| n == "series.retired"));
        assert!(first.iter().any(|n| n == "series.kept"));
        // Every section flushed after the removal — the final one at
        // latest — must drop the retired series and keep the survivor.
        let last = secs.last().unwrap();
        assert!(
            !last.iter().any(|n| n == "series.retired"),
            "retired series leaked into a post-removal flush: {last:?}"
        );
        assert!(last.iter().any(|n| n == "series.kept"));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reregistration_after_resize_does_not_duplicate_entries() {
        use crate::StoreMetrics;
        let dir = tmp("reregister");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("metrics.jsonl");
        let t = Telemetry::new(TelemetryConfig::default());
        // A controller-driven store rebuild: 4 shards, then 2, then 2
        // again. Registration is get-or-create and the shrink sweep
        // retires stale series, so the flushed snapshot must carry
        // shard0/shard1 exactly once and shard2/shard3 not at all.
        let _wide = StoreMetrics::register(&t, 4).unwrap();
        let _narrow = StoreMetrics::register(&t, 2).unwrap();
        let _again = StoreMetrics::register(&t, 2).unwrap();
        let flusher = JsonlFlusher::start(
            t,
            FlushConfig {
                path: path.clone(),
                interval: Duration::from_millis(5),
                rotate_cap_bytes: 0,
            },
        )
        .unwrap();
        wait_for_flushes(&flusher, 1);
        flusher.stop();
        let secs = sections(&fs::read_to_string(&path).unwrap());
        let last = secs.last().unwrap();
        for shard in 0..2 {
            let name = format!("store.shard{shard}.lock_wait_us");
            let count = last.iter().filter(|n| **n == name).count();
            assert_eq!(count, 1, "{name} appears {count} times: {last:?}");
        }
        for shard in 2..4 {
            let name = format!("store.shard{shard}.lock_wait_us");
            assert!(
                !last.iter().any(|n| **n == name),
                "stale {name} leaked into the flush"
            );
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn drop_joins_the_flush_thread() {
        let dir = tmp("drop");
        let _ = fs::remove_dir_all(&dir);
        let t = Telemetry::new(TelemetryConfig::default());
        {
            let _flusher = JsonlFlusher::start(
                t,
                FlushConfig {
                    path: dir.join("metrics.jsonl"),
                    interval: Duration::from_secs(3600),
                    rotate_cap_bytes: 0,
                },
            )
            .unwrap();
            // Dropping with a huge interval must still return promptly
            // (the stop signal wakes the wait) and leave the final flush
            // behind.
        }
        assert!(dir.join("metrics.jsonl").exists(), "final flush written");
        fs::remove_dir_all(&dir).unwrap();
    }
}
