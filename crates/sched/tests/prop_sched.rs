//! Property-based tests for the scheduler: every submitted job runs
//! exactly once, under every policy, for arbitrary job mixes.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_sched::{Job, JobKind, Policy, SchedConfig, Scheduler};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[derive(Debug, Clone)]
struct JobSpecT {
    demand: bool,
    deadline: u64,
    work: u64,
    affinity: Option<u64>,
}

fn arb_jobs() -> impl Strategy<Value = Vec<JobSpecT>> {
    prop::collection::vec(
        (any::<bool>(), 0u64..100, 0u64..50, any::<bool>(), 0u64..8).prop_map(
            |(demand, deadline, work, pin, key)| JobSpecT {
                demand,
                deadline,
                work,
                affinity: pin.then_some(key),
            },
        ),
        1..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_job_runs_exactly_once(
        jobs in arb_jobs(),
        threads in 1usize..6,
        reserved in 0usize..3,
        fifo in any::<bool>(),
        sticky in any::<bool>(),
        pressure in 0.0f64..1.0,
    ) {
        let sched = Scheduler::new(SchedConfig {
            threads,
            policy: if fifo { Policy::Fifo } else { Policy::Priority },
            reserved_demand_threads: reserved,
            sticky_affinity: sticky,
            ..Default::default()
        });
        sched.set_memory_pressure(pressure);
        let counters: Vec<Arc<AtomicUsize>> =
            (0..jobs.len()).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        for (spec, counter) in jobs.iter().zip(counters.iter()) {
            let c = Arc::clone(counter);
            sched.submit(Job {
                kind: if spec.demand { JobKind::Demand } else { JobKind::PreMaterialize },
                deadline: spec.deadline,
                remaining_work: spec.work,
                affinity: spec.affinity,
                tenant: None,
                run: Box::new(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                }),
            });
        }
        sched.wait_idle();
        for (i, c) in counters.iter().enumerate() {
            prop_assert_eq!(c.load(Ordering::SeqCst), 1, "job {} ran wrong number of times", i);
        }
        let stats = sched.stats();
        let demand = jobs.iter().filter(|j| j.demand).count() as u64;
        prop_assert_eq!(stats.demand_served, demand);
        prop_assert_eq!(stats.pre_served, jobs.len() as u64 - demand);
        sched.shutdown();
    }

    #[test]
    fn pressure_toggling_mid_run_is_safe(jobs in arb_jobs()) {
        let sched = Scheduler::new(SchedConfig { threads: 3, ..Default::default() });
        let done = Arc::new(AtomicUsize::new(0));
        for (i, spec) in jobs.iter().enumerate() {
            let d = Arc::clone(&done);
            sched.submit(Job {
                kind: JobKind::PreMaterialize,
                deadline: spec.deadline,
                remaining_work: spec.work,
                affinity: spec.affinity,
                tenant: None,
                run: Box::new(move || {
                    d.fetch_add(1, Ordering::SeqCst);
                }),
            });
            if i % 3 == 0 {
                sched.set_memory_pressure(if i % 2 == 0 { 0.95 } else { 0.1 });
            }
        }
        sched.wait_idle();
        prop_assert_eq!(done.load(Ordering::SeqCst), jobs.len());
        sched.shutdown();
    }
}
