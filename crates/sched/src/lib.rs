//! Priority-based materialization scheduling (Section 5.4 of the paper).
//!
//! The SAND engine runs two kinds of work on one CPU worker pool:
//!
//! - **demand-feeding** jobs: produce the batch the GPU is about to read —
//!   always the highest priority,
//! - **pre-materialization** jobs: produce objects for future iterations
//!   and epochs, prioritized *inversely to their deadline* (the number of
//!   iterations until the GPU needs them) so lagging subtrees get boosted.
//!
//! When memory pressure crosses a watermark (the paper uses 80%), the
//! pre-materialization policy flips to **shortest job first** by remaining
//! unprocessed work, draining nearly-finished subtrees so their decoded
//! raw frames can be freed.
//!
//! The pool also supports a FIFO policy, which is the "without
//! scheduling" ablation of Fig. 18.
//!
//! **Multi-tenant QoS.** When [`Scheduler::set_tenant_weights`] is set,
//! demand picks are ordered by weighted virtual time (start-time fair
//! queueing): each tenant accrues `busy_ns × SCALE / weight` of virtual
//! time as its jobs run, and the demand band serves the tenant with the
//! smallest virtual time first, EDF within a tenant. A tenant that goes
//! idle is lifted to the band's virtual clock on its next submission, so
//! it cannot bank service and later monopolize the band. The demand band
//! as a whole still preempts prefetch and pre-materialization.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use crossbeam::channel::{bounded, Receiver, Sender};
use sand_sanitizer::{TrackedCondvar, TrackedMutex};
use sand_telemetry::SchedMetrics;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Work category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Data the GPU is waiting on right now.
    Demand,
    /// Speculative assembly of an upcoming batch (the epoch-ahead
    /// prefetcher). Strictly below demand — a GPU-blocking read never
    /// waits behind a prefetch — and above pre-materialization, whose
    /// deadlines are whole iterations further out. Reserved demand-only
    /// workers never pick prefetch work.
    Prefetch,
    /// Object generation for future iterations/epochs.
    PreMaterialize,
}

/// Scheduling policy for pre-materialization jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// SAND's dynamic policy: earliest deadline first, flipping to
    /// shortest-job-first under memory pressure.
    Priority,
    /// Submission order (the no-scheduling baseline).
    Fifo,
}

/// One schedulable job.
pub struct Job {
    /// Work category.
    pub kind: JobKind,
    /// Clock tick at which the result is needed (smaller = sooner).
    pub deadline: u64,
    /// Remaining unprocessed edges in the job's subtree (SJF key).
    pub remaining_work: u64,
    /// Sticky-affinity key (e.g. a video id). Jobs sharing a key map onto
    /// one stable preferred worker, so state that key's work warmed there
    /// (a live decoder session) is reused instead of rebuilt after a
    /// cold hand-off. `None` = any worker.
    pub affinity: Option<u64>,
    /// Owning tenant slot for weighted QoS (an index into the table set
    /// by [`Scheduler::set_tenant_weights`]). `None` = untenanted work:
    /// it is charged to nobody and sorts ahead of tenanted work only by
    /// virtue of a zero virtual time, which is exactly the pre-fleet
    /// behaviour when no weights are configured.
    pub tenant: Option<u32>,
    /// The work itself.
    pub run: Box<dyn FnOnce() + Send>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("kind", &self.kind)
            .field("deadline", &self.deadline)
            .field("remaining_work", &self.remaining_work)
            .field("affinity", &self.affinity)
            .finish_non_exhaustive()
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Memory fraction above which the policy flips to SJF (paper: 0.8).
    pub memory_high_watermark: f64,
    /// Pre-materialization pick policy.
    pub policy: Policy,
    /// Workers reserved for demand-feeding (the paper's dedicated
    /// demand-feeding threads): these never pick pre-materialization
    /// work, so a read() is never stuck behind a long-running
    /// materialization job. Only honoured under [`Policy::Priority`];
    /// the FIFO ablation deliberately has no reservation.
    pub reserved_demand_threads: usize,
    /// Honour [`Job::affinity`] hints: a pinned pre-materialization job
    /// is left for its preferred worker while that worker is free, and
    /// only stolen once the preferred worker is busy with something
    /// else. `false` reverts to pure work sharing (the ablation knob).
    /// Only honoured under [`Policy::Priority`].
    pub sticky_affinity: bool,
    /// Bounded deadline slack for demand picks: a worker may prefer a
    /// pinned demand job whose deadline is within `demand_slack` clock
    /// ticks of the most urgent queued demand deadline, trading strict
    /// EDF order for warm decoder-session reuse. `0` (the default)
    /// keeps pure earliest-deadline-first with affinity as a tie-break
    /// only. Only honoured under [`Policy::Priority`] with
    /// [`SchedConfig::sticky_affinity`] enabled. This is the *initial*
    /// window; [`Scheduler::set_demand_slack`] retunes it at runtime.
    pub demand_slack: u64,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            threads: 4,
            memory_high_watermark: 0.8,
            policy: Policy::Priority,
            reserved_demand_threads: 1,
            sticky_affinity: true,
            demand_slack: 0,
        }
    }
}

/// Pick-decision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Demand jobs served.
    pub demand_served: u64,
    /// Prefetch jobs served.
    pub prefetch_served: u64,
    /// Pre-materialization jobs served.
    pub pre_served: u64,
    /// Picks made in deadline mode.
    pub deadline_picks: u64,
    /// Picks made in SJF mode (memory pressure).
    pub sjf_picks: u64,
    /// Picks made in FIFO mode.
    pub fifo_picks: u64,
    /// Cumulative worker busy time in nanoseconds (CPU work performed).
    pub busy_nanos: u64,
    /// Pinned pre-materialization jobs served by their preferred worker.
    pub affinity_hits: u64,
    /// Pinned pre-materialization jobs stolen by another worker because
    /// the preferred worker was backlogged.
    pub affinity_steals: u64,
}

/// Virtual-time scale: one nanosecond of service at weight `SCALE`
/// advances virtual time by one unit. Keeps integer division honest for
/// weights up to ~1k without overflowing u64 on realistic busy times.
const VT_SCALE: u64 = 1024;

/// One tenant's weighted-sharing state, reported by
/// [`Scheduler::tenant_shares`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantShare {
    /// Configured weight (relative share of the demand band).
    pub weight: u64,
    /// Weight-scaled virtual time consumed so far.
    pub vtime: u64,
    /// Raw busy nanoseconds charged to this tenant.
    pub busy_ns: u64,
}

/// The demand band's fair-queueing state: one slot per tenant id plus
/// the band's virtual clock.
struct TenantTable {
    shares: Vec<TenantShare>,
    /// Virtual time of the most recent demand pick. Newly submitted
    /// tenant work is lifted to at least this value, bounding the lag a
    /// tenant can accumulate while idle (CFS-style sleeper placement).
    vclock: u64,
}

impl TenantTable {
    fn vtime_of(&self, tenant: Option<u32>) -> u64 {
        tenant
            .and_then(|t| self.shares.get(t as usize))
            .map_or(0, |s| s.vtime)
    }
}

/// Queue entry with a stable submission sequence for FIFO.
struct Entry {
    seq: u64,
    job: Job,
    /// Submission timestamp, taken only when telemetry is attached (the
    /// disabled path must not read the clock).
    submitted: Option<Instant>,
}

struct Shared {
    queue: TrackedMutex<Vec<Entry>>,
    available: TrackedCondvar,
    shutdown: AtomicBool,
    running: AtomicU64,
    memory_pressure_milli: AtomicU64,
    stats: TrackedMutex<SchedStats>,
    idle: TrackedCondvar,
    config: SchedConfig,
    /// Live demand-slack window. Seeded from `config.demand_slack`;
    /// runtime-adjustable via [`Scheduler::set_demand_slack`] (the
    /// autotune controller's actuation point), read once per pick.
    demand_slack: AtomicU64,
    /// Per-worker "currently executing a job" flags, used by the sticky
    /// affinity policy: a pinned job may only be stolen while its
    /// preferred worker is busy (i.e. backlogged), otherwise it is left
    /// for that worker to pick up on its next dequeue.
    worker_busy: Vec<AtomicBool>,
    /// Weighted-QoS tenant table; `None` until
    /// [`Scheduler::set_tenant_weights`] installs one. Lock order:
    /// always after `queue` when both are held (pick path), never while
    /// holding `stats`.
    tenants: TrackedMutex<Option<TenantTable>>,
    /// Telemetry handles: queue depth, per-kind queue wait, deadline
    /// slack at pick time, and demand affinity hit/miss counters.
    metrics: Option<SchedMetrics>,
}

/// Identity of the worker asking for work.
#[derive(Clone, Copy)]
struct WorkerCtx {
    id: usize,
    demand_only: bool,
    /// Leading workers reserved for demand feeding; pinned
    /// pre-materialization jobs map onto the remaining pool.
    reserved: usize,
    threads: usize,
}

impl WorkerCtx {
    /// The stable worker a pinned job prefers. Reserved demand-only
    /// workers are excluded from the pool: mapping a PreMaterialize job
    /// onto one would strand it, since reserved workers never take
    /// pre-materialization work.
    fn preferred_worker(&self, affinity: u64) -> usize {
        let pool = self.threads.saturating_sub(self.reserved).max(1);
        self.reserved + (affinity as usize % pool)
    }

    /// Whether this worker is the preferred home for `e` (unpinned jobs
    /// are at home anywhere).
    fn prefers(&self, e: &Entry) -> bool {
        match e.job.affinity {
            Some(a) => self.preferred_worker(a) == self.id,
            None => true,
        }
    }
}

/// The materialization scheduler: a worker pool with dynamic priorities.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    seq: AtomicU64,
    /// Completion notifications (used by `wait_idle`).
    done_tx: Sender<()>,
    done_rx: Receiver<()>,
}

impl Scheduler {
    /// Starts the worker pool.
    #[must_use]
    pub fn new(config: SchedConfig) -> Self {
        Self::with_metrics(config, None)
    }

    /// Starts the worker pool with telemetry attached. `None` is the
    /// zero-overhead path used by [`Scheduler::new`].
    #[must_use]
    pub fn with_metrics(config: SchedConfig, metrics: Option<SchedMetrics>) -> Self {
        let threads = config.threads.max(1);
        let shared = Arc::new(Shared {
            queue: TrackedMutex::new("sched.queue", Vec::new()),
            available: TrackedCondvar::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
            memory_pressure_milli: AtomicU64::new(0),
            stats: TrackedMutex::new("sched.stats", SchedStats::default()),
            idle: TrackedCondvar::new(),
            demand_slack: AtomicU64::new(config.demand_slack),
            config,
            worker_busy: (0..threads).map(|_| AtomicBool::new(false)).collect(),
            tenants: TrackedMutex::new("sched.tenants", None),
            metrics,
        });
        let (done_tx, done_rx) = bounded(1024);
        let reserved = if config.policy == Policy::Priority {
            config
                .reserved_demand_threads
                .min(threads.saturating_sub(1))
        } else {
            0
        };
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let done = done_tx.clone();
                let ctx = WorkerCtx {
                    id: i,
                    demand_only: i < reserved,
                    reserved,
                    threads,
                };
                std::thread::spawn(move || worker_loop(&shared, &done, ctx))
            })
            .collect();
        Scheduler {
            shared,
            workers,
            seq: AtomicU64::new(0),
            done_tx,
            done_rx,
        }
    }

    /// Submits a job.
    pub fn submit(&self, job: Job) {
        if let Some(tid) = job.tenant {
            // Sleeper placement: lift the tenant to the band's virtual
            // clock so service it did not use while idle is forgotten,
            // not banked (a returning tenant competes from "now").
            let mut tenants = self.shared.tenants.lock();
            if let Some(table) = tenants.as_mut() {
                let vclock = table.vclock;
                if let Some(s) = table.shares.get_mut(tid as usize) {
                    s.vtime = s.vtime.max(vclock);
                }
            }
        }
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let submitted = self.shared.metrics.as_ref().map(|m| {
            m.queue_depth.add(1);
            Instant::now()
        });
        {
            let mut q = self.shared.queue.lock();
            q.push(Entry {
                seq,
                job,
                submitted,
            });
        }
        // notify_all, not notify_one: a single wakeup can land on a
        // reserved demand-only worker that cannot take a PreMaterialize
        // job, which swallows the notification and strands the job.
        self.shared.available.notify_all();
    }

    /// Reports current memory pressure as a fraction in `[0, 1]`.
    pub fn set_memory_pressure(&self, frac: f64) {
        let milli = (frac.clamp(0.0, 1.0) * 1000.0) as u64;
        self.shared
            .memory_pressure_milli
            .store(milli, Ordering::Relaxed);
    }

    /// Retunes the bounded-EDF demand-slack window at runtime (the
    /// autotune controller's actuation point). Affects the very next
    /// pick; queued jobs need no migration because slack is a pick-time
    /// policy input, not a property of the entries.
    pub fn set_demand_slack(&self, slack: u64) {
        self.shared.demand_slack.store(slack, Ordering::Relaxed);
    }

    /// The demand-slack window currently in effect.
    #[must_use]
    pub fn demand_slack(&self) -> u64 {
        self.shared.demand_slack.load(Ordering::Relaxed)
    }

    /// Installs (or clears, with an empty slice) the weighted-QoS tenant
    /// table. `weights[i]` is tenant `i`'s relative share of the demand
    /// band; zero weights are clamped to 1 (the lint layer denies
    /// zero-sum configs before they get here). Resets virtual times, so
    /// this is meant to be called once at fleet construction.
    pub fn set_tenant_weights(&self, weights: &[u64]) {
        let table = if weights.is_empty() {
            None
        } else {
            Some(TenantTable {
                shares: weights
                    .iter()
                    .map(|&w| TenantShare {
                        weight: w.max(1),
                        vtime: 0,
                        busy_ns: 0,
                    })
                    .collect(),
                vclock: 0,
            })
        };
        *self.shared.tenants.lock() = table;
    }

    /// Snapshot of per-tenant weights, virtual times, and charged busy
    /// time. `None` when no tenant table is installed.
    #[must_use]
    pub fn tenant_shares(&self) -> Option<Vec<TenantShare>> {
        self.shared
            .tenants
            .lock()
            .as_ref()
            .map(|t| t.shares.clone())
    }

    /// Number of queued (not yet started) jobs.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Blocks until the queue is empty and no job is running.
    pub fn wait_idle(&self) {
        // Drain completion signals opportunistically, then verify.
        loop {
            {
                let q = self.shared.queue.lock();
                if q.is_empty() && self.shared.running.load(Ordering::SeqCst) == 0 {
                    return;
                }
            }
            // Wait for a completion (or timeout to re-check).
            let _ = self
                .done_rx
                .recv_timeout(std::time::Duration::from_millis(20));
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        *self.shared.stats.lock()
    }

    /// Stops the pool, waiting for in-flight jobs to finish. Queued jobs
    /// that have not started are dropped.
    pub fn shutdown(mut self) {
        self.stop_workers();
        let _ = &self.done_tx;
    }

    /// Signals shutdown and joins workers — except the current thread,
    /// which can happen when a job holds the last reference to the
    /// structure owning this scheduler (joining oneself would deadlock).
    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            if w.thread().id() != me {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Picks the next entry index under the active policy. `demand_slack`
/// is passed separately from the (immutable) config because it is the
/// one policy input that can change at runtime — the worker loop reads
/// the live atomic once per pick.
fn pick_index(
    entries: &[Entry],
    config: &SchedConfig,
    demand_slack: u64,
    pressure_milli: u64,
    w: WorkerCtx,
    worker_busy: &[AtomicBool],
    tenants: Option<&TenantTable>,
) -> Option<(usize, &'static str)> {
    if entries.is_empty() {
        return None;
    }
    let sticky = config.sticky_affinity && config.policy == Policy::Priority;
    // Demand selection is weighted-fair across tenants, then earliest-
    // deadline-first with a bounded slack window within a virtual-time
    // tie group: a job at home on this worker may be preferred while its
    // deadline sits within `demand_slack` clock ticks of the most
    // urgent queued demand deadline. With no tenant table every entry's
    // virtual time is 0 and the order degenerates to the pre-fleet
    // bounded-EDF: an affinity match only breaks deadline ties — a
    // GPU-blocking read never waits for a particular worker beyond the
    // configured bound.
    let slack = demand_slack;
    let vtime = |e: &Entry| tenants.map_or(0, |t| t.vtime_of(e.job.tenant));
    let pick_demand = |entries: &[Entry]| {
        let urgent = entries
            .iter()
            .filter(|e| e.job.kind == JobKind::Demand)
            .map(|e| e.job.deadline)
            .min()?;
        entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.job.kind == JobKind::Demand)
            .min_by_key(|(_, e)| {
                let at_home_in_window =
                    sticky && e.job.deadline <= urgent.saturating_add(slack) && w.prefers(e);
                (
                    vtime(e),
                    u8::from(!at_home_in_window),
                    e.job.deadline,
                    u8::from(sticky && !w.prefers(e)),
                    e.seq,
                )
            })
            .map(|(i, _)| (i, "demand"))
    };
    if w.demand_only {
        // Reserved workers serve demand only — prefetch is speculative
        // and must never occupy a thread set aside for GPU-blocking
        // reads.
        return pick_demand(entries);
    }
    // Under the priority policy, demand jobs always win (earliest
    // deadline first), then prefetch (speculative upcoming batches,
    // EDF with affinity as a tie-break), then pre-materialization. The
    // FIFO baseline deliberately lacks this preemption too: that is the
    // "without scheduling" ablation.
    if config.policy == Policy::Priority {
        if let Some(pick) = pick_demand(entries) {
            return Some(pick);
        }
        let prefetch = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.job.kind == JobKind::Prefetch)
            .min_by_key(|(_, e)| (e.job.deadline, u8::from(sticky && !w.prefers(e)), e.seq))
            .map(|(i, _)| (i, "prefetch"));
        if let Some(pick) = prefetch {
            return Some(pick);
        }
    }
    match config.policy {
        Policy::Fifo => entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.seq)
            .map(|(i, _)| (i, "fifo")),
        Policy::Priority => {
            let sjf = pressure_milli as f64 / 1000.0 > config.memory_high_watermark;
            let pick_pre = |eligible: &dyn Fn(&Entry) -> bool| {
                let iter = entries.iter().enumerate().filter(|(_, e)| eligible(e));
                if sjf {
                    iter.min_by_key(|(_, e)| (e.job.remaining_work, e.seq))
                        .map(|(i, _)| (i, "sjf"))
                } else {
                    iter.min_by_key(|(_, e)| (e.job.deadline, e.seq))
                        .map(|(i, _)| (i, "deadline"))
                }
            };
            if !sticky {
                return pick_pre(&|_| true);
            }
            // Sticky pass 1: own pinned jobs and unpinned jobs.
            if let Some(pick) = pick_pre(&|e| w.prefers(e)) {
                return Some(pick);
            }
            // Sticky pass 2 (steal): a foreign pinned job, but only while
            // its preferred worker is busy running something else — an
            // idle preferred worker was notified on submit and will take
            // its own job, so leaving it pinned costs nothing.
            pick_pre(&|e| {
                e.job
                    .affinity
                    .is_some_and(|a| worker_busy[w.preferred_worker(a)].load(Ordering::SeqCst))
            })
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, done: &Sender<()>, w: WorkerCtx) {
    loop {
        let entry = {
            let mut q = shared.queue.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let pressure = shared.memory_pressure_milli.load(Ordering::Relaxed);
                let slack = shared.demand_slack.load(Ordering::Relaxed);
                let picked = {
                    // Lock order queue → tenants; dropped before any wait.
                    let tenants = shared.tenants.lock();
                    pick_index(
                        &q,
                        &shared.config,
                        slack,
                        pressure,
                        w,
                        &shared.worker_busy,
                        tenants.as_ref(),
                    )
                };
                if let Some((idx, mode)) = picked {
                    if let Some(m) = &shared.metrics {
                        let picked = &q[idx];
                        // Slack of this pick relative to the most urgent
                        // queued deadline of the same kind (0 = strict
                        // EDF; >0 = the affinity window took precedence).
                        let urgent = q
                            .iter()
                            .filter(|e| e.job.kind == picked.job.kind)
                            .map(|e| e.job.deadline)
                            .min()
                            .unwrap_or(picked.job.deadline);
                        m.deadline_slack
                            .observe(picked.job.deadline.saturating_sub(urgent));
                        if let Some(t) = picked.submitted {
                            let wait = t.elapsed();
                            match picked.job.kind {
                                JobKind::Demand => m.demand_wait_us.observe_duration(wait),
                                JobKind::Prefetch => m.prefetch_wait_us.observe_duration(wait),
                                JobKind::PreMaterialize => m.pre_wait_us.observe_duration(wait),
                            }
                        }
                        m.queue_depth.sub(1);
                        if picked.job.kind == JobKind::Demand && picked.job.affinity.is_some() {
                            if w.prefers(picked) {
                                m.demand_affinity_hits.inc();
                            } else {
                                m.demand_affinity_misses.inc();
                            }
                        }
                    }
                    let entry = q.swap_remove(idx);
                    if let Some(tid) = entry.job.tenant {
                        // Advance the band's virtual clock to this pick's
                        // virtual time: it is the fair-queueing "now"
                        // that newly woken tenants are lifted to.
                        let mut tenants = shared.tenants.lock();
                        if let Some(table) = tenants.as_mut() {
                            let v = table.vtime_of(Some(tid));
                            table.vclock = table.vclock.max(v);
                        }
                    }
                    // Account the pick while still holding the lock.
                    let mut stats = shared.stats.lock();
                    match entry.job.kind {
                        JobKind::Demand => stats.demand_served += 1,
                        JobKind::Prefetch => stats.prefetch_served += 1,
                        JobKind::PreMaterialize => stats.pre_served += 1,
                    }
                    match mode {
                        "sjf" => stats.sjf_picks += 1,
                        "deadline" => stats.deadline_picks += 1,
                        "fifo" => stats.fifo_picks += 1,
                        _ => {}
                    }
                    if entry.job.kind == JobKind::PreMaterialize
                        && shared.config.sticky_affinity
                        && shared.config.policy == Policy::Priority
                    {
                        if let Some(a) = entry.job.affinity {
                            if w.preferred_worker(a) == w.id {
                                stats.affinity_hits += 1;
                                if let Some(m) = &shared.metrics {
                                    m.affinity_hits.inc();
                                }
                            } else {
                                stats.affinity_steals += 1;
                                if let Some(m) = &shared.metrics {
                                    m.affinity_steals.inc();
                                }
                            }
                        }
                    }
                    drop(stats);
                    shared.running.fetch_add(1, Ordering::SeqCst);
                    // Flip the busy flag inside the queue lock so stealers
                    // never observe "idle" for a worker that has already
                    // committed to a job.
                    shared.worker_busy[w.id].store(true, Ordering::SeqCst);
                    break entry;
                }
                shared.available.wait(&mut q);
            }
        };
        let started = std::time::Instant::now();
        let tenant = entry.job.tenant;
        (entry.job.run)();
        let busy = started.elapsed().as_nanos() as u64;
        shared.worker_busy[w.id].store(false, Ordering::SeqCst);
        if let Some(tid) = tenant {
            // Charge the service: virtual time advances inversely to
            // weight, so heavier tenants stay eligible longer.
            let mut tenants = shared.tenants.lock();
            if let Some(table) = tenants.as_mut() {
                if let Some(s) = table.shares.get_mut(tid as usize) {
                    s.busy_ns += busy;
                    s.vtime += busy.saturating_mul(VT_SCALE) / s.weight.max(1);
                }
            }
        }
        shared.stats.lock().busy_nanos += busy;
        shared.running.fetch_sub(1, Ordering::SeqCst);
        shared.idle.notify_all();
        // Wake peers: finishing a job can unblock pinned work for this
        // worker, and going idle changes what peers may steal.
        shared.available.notify_all();
        let _ = done.try_send(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn job(kind: JobKind, deadline: u64, work: u64, f: impl FnOnce() + Send + 'static) -> Job {
        Job {
            kind,
            deadline,
            remaining_work: work,
            affinity: None,
            tenant: None,
            run: Box::new(f),
        }
    }

    fn pinned(affinity: u64, f: impl FnOnce() + Send + 'static) -> Job {
        Job {
            kind: JobKind::PreMaterialize,
            deadline: 1,
            remaining_work: 1,
            affinity: Some(affinity),
            tenant: None,
            run: Box::new(f),
        }
    }

    /// Single-threaded scheduler whose first job blocks until released,
    /// letting tests control pick order deterministically.
    fn gated_scheduler(policy: Policy) -> (Scheduler, Arc<AtomicBool>) {
        let sched = Scheduler::new(SchedConfig {
            threads: 1,
            policy,
            ..Default::default()
        });
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        sched.submit(job(JobKind::PreMaterialize, 0, 0, move || {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
        // Let the worker pick up the gate job.
        std::thread::sleep(Duration::from_millis(20));
        (sched, gate)
    }

    #[test]
    fn executes_submitted_jobs() {
        let sched = Scheduler::new(SchedConfig::default());
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&count);
            sched.submit(job(JobKind::PreMaterialize, 1, 1, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 32);
        assert_eq!(sched.stats().pre_served, 32);
        sched.shutdown();
    }

    #[test]
    fn demand_jobs_preempt_prematerialization() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, 10 + i, 1, move || {
                o.lock().push(format!("pre{i}"));
            }));
        }
        let o = Arc::clone(&order);
        sched.submit(job(JobKind::Demand, 999, 1, move || {
            o.lock().push("demand".into());
        }));
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        let order = order.lock().clone();
        assert_eq!(order[0], "demand", "order was {order:?}");
        sched.shutdown();
    }

    /// Prefetch is its own priority band: below demand, above
    /// pre-materialization, EDF within the band.
    #[test]
    fn prefetch_sits_between_demand_and_prematerialization() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        let order = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&order);
        sched.submit(job(JobKind::PreMaterialize, 1, 1, move || {
            o.lock().push("pre");
        }));
        for (name, deadline) in [("prefetch-late", 9u64), ("prefetch-soon", 2)] {
            let o = Arc::clone(&order);
            sched.submit(Job {
                kind: JobKind::Prefetch,
                deadline,
                remaining_work: 1,
                affinity: None,
                tenant: None,
                run: Box::new(move || o.lock().push(name)),
            });
        }
        let o = Arc::clone(&order);
        sched.submit(job(JobKind::Demand, 999, 1, move || {
            o.lock().push("demand");
        }));
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(
            *order.lock(),
            vec!["demand", "prefetch-soon", "prefetch-late", "pre"]
        );
        let stats = sched.stats();
        assert_eq!(stats.prefetch_served, 2);
        assert_eq!(stats.demand_served, 1);
        assert_eq!(stats.pre_served, 2); // gate job + "pre"
        sched.shutdown();
    }

    /// Prefetch waits land in their own histogram, not demand's or
    /// pre-materialization's.
    #[test]
    fn prefetch_waits_have_their_own_histogram() {
        let telemetry = sand_telemetry::Telemetry::new(sand_telemetry::TelemetryConfig::default());
        let metrics = sand_telemetry::SchedMetrics::register(&telemetry).unwrap();
        let sched = Scheduler::with_metrics(
            SchedConfig {
                threads: 2,
                ..Default::default()
            },
            Some(metrics),
        );
        for i in 0..6 {
            sched.submit(Job {
                kind: JobKind::Prefetch,
                deadline: i,
                remaining_work: 1,
                affinity: None,
                tenant: None,
                run: Box::new(|| {}),
            });
        }
        sched.wait_idle();
        sched.shutdown();
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(
            snap.histogram("sched.prefetch_wait_us").map(|h| h.count),
            Some(6)
        );
        assert_eq!(
            snap.histogram("sched.demand_wait_us").map(|h| h.count),
            Some(0)
        );
    }

    #[test]
    fn deadline_ordering_under_priority_policy() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline) in [("late", 50u64), ("soon", 5), ("mid", 20)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, 1, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["soon", "mid", "late"]);
        assert!(sched.stats().deadline_picks >= 3);
        sched.shutdown();
    }

    #[test]
    fn sjf_under_memory_pressure() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        sched.set_memory_pressure(0.95);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline, work) in [("big", 1u64, 100u64), ("small", 99, 1), ("mid", 50, 10)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, work, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["small", "mid", "big"]);
        assert!(sched.stats().sjf_picks >= 3);
        sched.shutdown();
    }

    #[test]
    fn pressure_release_returns_to_deadline_mode() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        sched.set_memory_pressure(0.95);
        sched.set_memory_pressure(0.2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline, work) in [("a", 5u64, 100u64), ("b", 50, 1)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, work, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["a", "b"]);
        sched.shutdown();
    }

    #[test]
    fn fifo_policy_ignores_deadlines() {
        let (sched, gate) = gated_scheduler(Policy::Fifo);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline) in [("first", 99u64), ("second", 1)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, 1, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["first", "second"]);
        assert!(sched.stats().fifo_picks >= 2);
        sched.shutdown();
    }

    #[test]
    fn parallel_throughput_with_many_threads() {
        let sched = Scheduler::new(SchedConfig {
            threads: 8,
            ..Default::default()
        });
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let c = Arc::clone(&count);
            sched.submit(job(JobKind::PreMaterialize, i, 1, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 200);
        sched.shutdown();
    }

    #[test]
    fn shutdown_drops_unstarted_jobs() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = Arc::clone(&count);
            sched.submit(job(JobKind::PreMaterialize, 1, 1, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        // Shut down immediately; some queued jobs may be dropped, and that
        // must not hang or crash.
        sched.shutdown();
        assert!(count.load(Ordering::SeqCst) <= 5);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let sched = Scheduler::new(SchedConfig::default());
        sched.wait_idle();
        sched.shutdown();
    }

    /// With an idle pool, a pinned job always lands on its stable
    /// preferred worker: submitting one at a time with the same affinity
    /// key must execute every job on the same OS thread.
    #[test]
    fn pinned_jobs_stick_to_one_worker_when_idle() {
        let sched = Scheduler::new(SchedConfig {
            threads: 3,
            reserved_demand_threads: 1,
            ..Default::default()
        });
        let threads_seen = Arc::new(Mutex::new(Vec::new()));
        for _ in 0..8 {
            let t = Arc::clone(&threads_seen);
            sched.submit(pinned(7, move || {
                t.lock().push(std::thread::current().id());
            }));
            sched.wait_idle();
        }
        let seen = threads_seen.lock().clone();
        assert_eq!(seen.len(), 8);
        assert!(
            seen.iter().all(|id| *id == seen[0]),
            "pinned jobs hopped workers: {seen:?}"
        );
        let stats = sched.stats();
        assert_eq!(stats.affinity_hits, 8);
        assert_eq!(stats.affinity_steals, 0);
        sched.shutdown();
    }

    /// When the preferred worker is stuck on a long job, peers must steal
    /// its pinned backlog instead of letting it pile up.
    #[test]
    fn backlogged_pinned_jobs_are_stolen() {
        let sched = Scheduler::new(SchedConfig {
            threads: 3,
            reserved_demand_threads: 1,
            ..Default::default()
        });
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        // Occupy the preferred worker for affinity key 7.
        sched.submit(pinned(7, move || {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
        std::thread::sleep(Duration::from_millis(20));
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..6 {
            let c = Arc::clone(&count);
            sched.submit(pinned(7, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        // The stolen jobs finish while the gate job still holds the
        // preferred worker.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while count.load(Ordering::SeqCst) < 6 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(count.load(Ordering::SeqCst), 6, "pinned backlog starved");
        let stats = sched.stats();
        assert!(stats.affinity_steals >= 6, "stats: {stats:?}");
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        sched.shutdown();
    }

    /// The ablation knob: with sticky affinity off, no affinity counters
    /// move and everything still completes.
    #[test]
    fn sticky_affinity_off_ignores_hints() {
        let sched = Scheduler::new(SchedConfig {
            threads: 3,
            sticky_affinity: false,
            ..Default::default()
        });
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..16 {
            let c = Arc::clone(&count);
            sched.submit(pinned(i, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 16);
        let stats = sched.stats();
        assert_eq!(stats.affinity_hits + stats.affinity_steals, 0);
        sched.shutdown();
    }

    /// The bounded deadline-slack window, exercised directly against
    /// `pick_index`: worker 2 prefers affinity key 1 (threads=4,
    /// reserved=1 → preferred worker = 1 + key % 3).
    #[test]
    fn demand_slack_window_prefers_pinned_jobs() {
        let w = WorkerCtx {
            id: 2,
            demand_only: false,
            reserved: 1,
            threads: 4,
        };
        let busy: Vec<AtomicBool> = (0..4).map(|_| AtomicBool::new(false)).collect();
        let entries = |deadlines: [(u64, u64); 2]| -> Vec<Entry> {
            deadlines
                .iter()
                .enumerate()
                .map(|(i, &(deadline, affinity))| Entry {
                    seq: i as u64,
                    job: Job {
                        kind: JobKind::Demand,
                        deadline,
                        remaining_work: 1,
                        affinity: Some(affinity),
                        tenant: None,
                        run: Box::new(|| {}),
                    },
                    submitted: None,
                })
                .collect()
        };
        let pick = |slack: u64, q: &[Entry]| {
            let config = SchedConfig::default();
            pick_index(q, &config, slack, 0, w, &busy, None).map(|(i, _)| i)
        };
        // Key 0 → worker 1 (foreign), key 1 → worker 2 (at home).
        let q = entries([(5, 0), (6, 1)]);
        assert_eq!(pick(0, &q), Some(0), "slack 0 is strict EDF");
        assert_eq!(pick(1, &q), Some(1), "within +1 clock, stay home");
        let q = entries([(5, 0), (7, 1)]);
        assert_eq!(pick(1, &q), Some(0), "outside the window, EDF wins");
        // Equal deadlines: affinity already breaks the tie at slack 0.
        let q = entries([(5, 0), (5, 1)]);
        assert_eq!(pick(0, &q), Some(1));
    }

    /// The slack window is runtime-adjustable without restarting the
    /// pool: the live value is a pick-time input, seeded from config.
    #[test]
    fn demand_slack_is_runtime_adjustable() {
        let sched = Scheduler::new(SchedConfig {
            threads: 2,
            demand_slack: 3,
            ..Default::default()
        });
        assert_eq!(sched.demand_slack(), 3, "seeded from config");
        sched.set_demand_slack(12);
        assert_eq!(sched.demand_slack(), 12);
        sched.set_demand_slack(0);
        assert_eq!(sched.demand_slack(), 0);
        // The pool still serves jobs after retuning.
        let count = Arc::new(AtomicU64::new(0));
        for i in 0..8 {
            let c = Arc::clone(&count);
            sched.submit(job(JobKind::Demand, i, 1, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 8);
        sched.shutdown();
    }

    /// Telemetry wiring: queue depth returns to zero, every pick lands
    /// in a wait histogram, and the slack histogram sees every pick.
    #[test]
    fn metrics_account_queue_depth_and_waits() {
        let telemetry = sand_telemetry::Telemetry::new(sand_telemetry::TelemetryConfig::default());
        let metrics = sand_telemetry::SchedMetrics::register(&telemetry).unwrap();
        let sched = Scheduler::with_metrics(
            SchedConfig {
                threads: 2,
                ..Default::default()
            },
            Some(metrics),
        );
        for i in 0..10 {
            sched.submit(job(JobKind::Demand, i, 1, || {}));
            sched.submit(job(JobKind::PreMaterialize, i, 1, || {}));
        }
        sched.wait_idle();
        sched.shutdown();
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(snap.gauge("sched.queue_depth"), Some(0));
        assert_eq!(
            snap.histogram("sched.demand_wait_us").map(|h| h.count),
            Some(10)
        );
        assert_eq!(
            snap.histogram("sched.pre_wait_us").map(|h| h.count),
            Some(10)
        );
        assert_eq!(
            snap.histogram("sched.deadline_slack").map(|h| h.count),
            Some(20)
        );
    }

    /// Weighted virtual time dominates the demand order: the tenant that
    /// has consumed less weight-scaled service is picked first even when
    /// the other tenant's job has the earlier deadline; within one
    /// tenant the order is still EDF.
    #[test]
    fn tenant_virtual_time_orders_demand_band() {
        let w = WorkerCtx {
            id: 1,
            demand_only: false,
            reserved: 1,
            threads: 2,
        };
        let busy: Vec<AtomicBool> = (0..2).map(|_| AtomicBool::new(false)).collect();
        let entries = |jobs: &[(u64, Option<u32>)]| -> Vec<Entry> {
            jobs.iter()
                .enumerate()
                .map(|(i, &(deadline, tenant))| Entry {
                    seq: i as u64,
                    job: Job {
                        kind: JobKind::Demand,
                        deadline,
                        remaining_work: 1,
                        affinity: None,
                        tenant,
                        run: Box::new(|| {}),
                    },
                    submitted: None,
                })
                .collect()
        };
        let table = TenantTable {
            shares: vec![
                TenantShare {
                    weight: 1,
                    vtime: 5000,
                    busy_ns: 0,
                },
                TenantShare {
                    weight: 4,
                    vtime: 100,
                    busy_ns: 0,
                },
            ],
            vclock: 0,
        };
        let config = SchedConfig::default();
        let pick = |q: &[Entry], t: Option<&TenantTable>| {
            pick_index(q, &config, 0, 0, w, &busy, t).map(|(i, _)| i)
        };
        // Tenant 1 is behind in virtual time: it wins despite the later
        // deadline. Without a table, plain EDF picks the earlier one.
        let q = entries(&[(1, Some(0)), (9, Some(1))]);
        assert_eq!(pick(&q, Some(&table)), Some(1), "min vtime wins");
        assert_eq!(pick(&q, None), Some(0), "no table: strict EDF");
        // Within one tenant: EDF.
        let q = entries(&[(7, Some(1)), (3, Some(1))]);
        assert_eq!(pick(&q, Some(&table)), Some(1));
        // Untenanted work has virtual time 0 and sorts first.
        let q = entries(&[(9, Some(1)), (9, None)]);
        assert_eq!(pick(&q, Some(&table)), Some(1 /* index of None entry */));
    }

    /// End-to-end charging: two tenants do the same amount of real work,
    /// and the lighter-weight tenant ends up with the larger virtual
    /// time (it consumed its smaller share faster).
    #[test]
    fn tenant_charges_scale_inversely_with_weight() {
        let sched = Scheduler::new(SchedConfig {
            threads: 1,
            ..Default::default()
        });
        sched.set_tenant_weights(&[1, 4]);
        for tenant in [0u32, 1] {
            for i in 0..4 {
                sched.submit(Job {
                    kind: JobKind::Demand,
                    deadline: i,
                    remaining_work: 1,
                    affinity: None,
                    tenant: Some(tenant),
                    run: Box::new(|| std::thread::sleep(Duration::from_millis(2))),
                });
            }
        }
        sched.wait_idle();
        let shares = sched.tenant_shares().unwrap();
        assert_eq!(shares.len(), 2);
        assert!(shares[0].busy_ns > 0 && shares[1].busy_ns > 0);
        assert!(
            shares[0].vtime > shares[1].vtime,
            "weight-1 tenant must burn virtual time faster: {shares:?}"
        );
        // Weights are observable and zero weights are clamped.
        assert_eq!(shares[0].weight, 1);
        assert_eq!(shares[1].weight, 4);
        sched.set_tenant_weights(&[]);
        assert!(sched.tenant_shares().is_none());
        sched.shutdown();
    }

    /// Every pinned pre-materialization pick is accounted as either a
    /// hit or a steal, never silently dropped from the counters.
    #[test]
    fn affinity_picks_are_fully_accounted() {
        let sched = Scheduler::new(SchedConfig {
            threads: 4,
            ..Default::default()
        });
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..40 {
            let c = Arc::clone(&count);
            sched.submit(pinned(i % 3, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 40);
        let stats = sched.stats();
        assert_eq!(stats.affinity_hits + stats.affinity_steals, 40);
        sched.shutdown();
    }
}
