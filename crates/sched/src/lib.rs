//! Priority-based materialization scheduling (Section 5.4 of the paper).
//!
//! The SAND engine runs two kinds of work on one CPU worker pool:
//!
//! - **demand-feeding** jobs: produce the batch the GPU is about to read —
//!   always the highest priority,
//! - **pre-materialization** jobs: produce objects for future iterations
//!   and epochs, prioritized *inversely to their deadline* (the number of
//!   iterations until the GPU needs them) so lagging subtrees get boosted.
//!
//! When memory pressure crosses a watermark (the paper uses 80%), the
//! pre-materialization policy flips to **shortest job first** by remaining
//! unprocessed work, draining nearly-finished subtrees so their decoded
//! raw frames can be freed.
//!
//! The pool also supports a FIFO policy, which is the "without
//! scheduling" ablation of Fig. 18.

#![cfg_attr(test, allow(clippy::unwrap_used))]

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Work category.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Data the GPU is waiting on right now.
    Demand,
    /// Object generation for future iterations/epochs.
    PreMaterialize,
}

/// Scheduling policy for pre-materialization jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// SAND's dynamic policy: earliest deadline first, flipping to
    /// shortest-job-first under memory pressure.
    Priority,
    /// Submission order (the no-scheduling baseline).
    Fifo,
}

/// One schedulable job.
pub struct Job {
    /// Work category.
    pub kind: JobKind,
    /// Clock tick at which the result is needed (smaller = sooner).
    pub deadline: u64,
    /// Remaining unprocessed edges in the job's subtree (SJF key).
    pub remaining_work: u64,
    /// The work itself.
    pub run: Box<dyn FnOnce() + Send>,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("kind", &self.kind)
            .field("deadline", &self.deadline)
            .field("remaining_work", &self.remaining_work)
            .finish_non_exhaustive()
    }
}

/// Scheduler configuration.
#[derive(Debug, Clone, Copy)]
pub struct SchedConfig {
    /// Worker thread count.
    pub threads: usize,
    /// Memory fraction above which the policy flips to SJF (paper: 0.8).
    pub memory_high_watermark: f64,
    /// Pre-materialization pick policy.
    pub policy: Policy,
    /// Workers reserved for demand-feeding (the paper's dedicated
    /// demand-feeding threads): these never pick pre-materialization
    /// work, so a read() is never stuck behind a long-running
    /// materialization job. Only honoured under [`Policy::Priority`];
    /// the FIFO ablation deliberately has no reservation.
    pub reserved_demand_threads: usize,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            threads: 4,
            memory_high_watermark: 0.8,
            policy: Policy::Priority,
            reserved_demand_threads: 1,
        }
    }
}

/// Pick-decision counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Demand jobs served.
    pub demand_served: u64,
    /// Pre-materialization jobs served.
    pub pre_served: u64,
    /// Picks made in deadline mode.
    pub deadline_picks: u64,
    /// Picks made in SJF mode (memory pressure).
    pub sjf_picks: u64,
    /// Picks made in FIFO mode.
    pub fifo_picks: u64,
    /// Cumulative worker busy time in nanoseconds (CPU work performed).
    pub busy_nanos: u64,
}

/// Queue entry with a stable submission sequence for FIFO.
struct Entry {
    seq: u64,
    job: Job,
}

struct Shared {
    queue: Mutex<Vec<Entry>>,
    available: Condvar,
    shutdown: AtomicBool,
    running: AtomicU64,
    memory_pressure_milli: AtomicU64,
    stats: Mutex<SchedStats>,
    idle: Condvar,
    config: SchedConfig,
}

/// The materialization scheduler: a worker pool with dynamic priorities.
pub struct Scheduler {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    seq: AtomicU64,
    /// Completion notifications (used by `wait_idle`).
    done_tx: Sender<()>,
    done_rx: Receiver<()>,
}

impl Scheduler {
    /// Starts the worker pool.
    #[must_use]
    pub fn new(config: SchedConfig) -> Self {
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            available: Condvar::new(),
            shutdown: AtomicBool::new(false),
            running: AtomicU64::new(0),
            memory_pressure_milli: AtomicU64::new(0),
            stats: Mutex::new(SchedStats::default()),
            idle: Condvar::new(),
            config,
        });
        let (done_tx, done_rx) = bounded(1024);
        let reserved = if config.policy == Policy::Priority {
            config
                .reserved_demand_threads
                .min(config.threads.max(1).saturating_sub(1))
        } else {
            0
        };
        let workers = (0..config.threads.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let done = done_tx.clone();
                let demand_only = i < reserved;
                std::thread::spawn(move || worker_loop(&shared, &done, demand_only))
            })
            .collect();
        Scheduler {
            shared,
            workers,
            seq: AtomicU64::new(0),
            done_tx,
            done_rx,
        }
    }

    /// Submits a job.
    pub fn submit(&self, job: Job) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        {
            let mut q = self.shared.queue.lock();
            q.push(Entry { seq, job });
        }
        // notify_all, not notify_one: a single wakeup can land on a
        // reserved demand-only worker that cannot take a PreMaterialize
        // job, which swallows the notification and strands the job.
        self.shared.available.notify_all();
    }

    /// Reports current memory pressure as a fraction in `[0, 1]`.
    pub fn set_memory_pressure(&self, frac: f64) {
        let milli = (frac.clamp(0.0, 1.0) * 1000.0) as u64;
        self.shared
            .memory_pressure_milli
            .store(milli, Ordering::Relaxed);
    }

    /// Number of queued (not yet started) jobs.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.shared.queue.lock().len()
    }

    /// Blocks until the queue is empty and no job is running.
    pub fn wait_idle(&self) {
        // Drain completion signals opportunistically, then verify.
        loop {
            {
                let q = self.shared.queue.lock();
                if q.is_empty() && self.shared.running.load(Ordering::SeqCst) == 0 {
                    return;
                }
            }
            // Wait for a completion (or timeout to re-check).
            let _ = self
                .done_rx
                .recv_timeout(std::time::Duration::from_millis(20));
        }
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> SchedStats {
        *self.shared.stats.lock()
    }

    /// Stops the pool, waiting for in-flight jobs to finish. Queued jobs
    /// that have not started are dropped.
    pub fn shutdown(mut self) {
        self.stop_workers();
        let _ = &self.done_tx;
    }

    /// Signals shutdown and joins workers — except the current thread,
    /// which can happen when a job holds the last reference to the
    /// structure owning this scheduler (joining oneself would deadlock).
    fn stop_workers(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        let me = std::thread::current().id();
        for w in self.workers.drain(..) {
            if w.thread().id() != me {
                let _ = w.join();
            }
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.stop_workers();
    }
}

/// Picks the next entry index under the active policy.
fn pick_index(
    entries: &[Entry],
    config: &SchedConfig,
    pressure_milli: u64,
    demand_only: bool,
) -> Option<(usize, &'static str)> {
    if entries.is_empty() {
        return None;
    }
    if demand_only {
        return entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.job.kind == JobKind::Demand)
            .min_by_key(|(_, e)| (e.job.deadline, e.seq))
            .map(|(i, _)| (i, "demand"));
    }
    // Under the priority policy, demand jobs always win (earliest
    // deadline first). The FIFO baseline deliberately lacks this
    // preemption too: that is the "without scheduling" ablation.
    if config.policy == Policy::Priority {
        if let Some((idx, _)) = entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.job.kind == JobKind::Demand)
            .min_by_key(|(_, e)| (e.job.deadline, e.seq))
        {
            return Some((idx, "demand"));
        }
    }
    match config.policy {
        Policy::Fifo => entries
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.seq)
            .map(|(i, _)| (i, "fifo")),
        Policy::Priority => {
            let sjf = pressure_milli as f64 / 1000.0 > config.memory_high_watermark;
            if sjf {
                entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.job.remaining_work, e.seq))
                    .map(|(i, _)| (i, "sjf"))
            } else {
                entries
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, e)| (e.job.deadline, e.seq))
                    .map(|(i, _)| (i, "deadline"))
            }
        }
    }
}

fn worker_loop(shared: &Arc<Shared>, done: &Sender<()>, demand_only: bool) {
    loop {
        let entry = {
            let mut q = shared.queue.lock();
            loop {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let pressure = shared.memory_pressure_milli.load(Ordering::Relaxed);
                if let Some((idx, mode)) = pick_index(&q, &shared.config, pressure, demand_only) {
                    let entry = q.swap_remove(idx);
                    // Account the pick while still holding the lock.
                    let mut stats = shared.stats.lock();
                    match entry.job.kind {
                        JobKind::Demand => stats.demand_served += 1,
                        JobKind::PreMaterialize => stats.pre_served += 1,
                    }
                    match mode {
                        "sjf" => stats.sjf_picks += 1,
                        "deadline" => stats.deadline_picks += 1,
                        "fifo" => stats.fifo_picks += 1,
                        _ => {}
                    }
                    drop(stats);
                    shared.running.fetch_add(1, Ordering::SeqCst);
                    break entry;
                }
                shared.available.wait(&mut q);
            }
        };
        let started = std::time::Instant::now();
        (entry.job.run)();
        let busy = started.elapsed().as_nanos() as u64;
        shared.stats.lock().busy_nanos += busy;
        shared.running.fetch_sub(1, Ordering::SeqCst);
        shared.idle.notify_all();
        let _ = done.try_send(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    fn job(kind: JobKind, deadline: u64, work: u64, f: impl FnOnce() + Send + 'static) -> Job {
        Job {
            kind,
            deadline,
            remaining_work: work,
            run: Box::new(f),
        }
    }

    /// Single-threaded scheduler whose first job blocks until released,
    /// letting tests control pick order deterministically.
    fn gated_scheduler(policy: Policy) -> (Scheduler, Arc<AtomicBool>) {
        let sched = Scheduler::new(SchedConfig {
            threads: 1,
            policy,
            ..Default::default()
        });
        let gate = Arc::new(AtomicBool::new(false));
        let g = Arc::clone(&gate);
        sched.submit(job(JobKind::PreMaterialize, 0, 0, move || {
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        }));
        // Let the worker pick up the gate job.
        std::thread::sleep(Duration::from_millis(20));
        (sched, gate)
    }

    #[test]
    fn executes_submitted_jobs() {
        let sched = Scheduler::new(SchedConfig::default());
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let c = Arc::clone(&count);
            sched.submit(job(JobKind::PreMaterialize, 1, 1, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 32);
        assert_eq!(sched.stats().pre_served, 32);
        sched.shutdown();
    }

    #[test]
    fn demand_jobs_preempt_prematerialization() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..3 {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, 10 + i, 1, move || {
                o.lock().push(format!("pre{i}"));
            }));
        }
        let o = Arc::clone(&order);
        sched.submit(job(JobKind::Demand, 999, 1, move || {
            o.lock().push("demand".into());
        }));
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        let order = order.lock().clone();
        assert_eq!(order[0], "demand", "order was {order:?}");
        sched.shutdown();
    }

    #[test]
    fn deadline_ordering_under_priority_policy() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline) in [("late", 50u64), ("soon", 5), ("mid", 20)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, 1, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["soon", "mid", "late"]);
        assert!(sched.stats().deadline_picks >= 3);
        sched.shutdown();
    }

    #[test]
    fn sjf_under_memory_pressure() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        sched.set_memory_pressure(0.95);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline, work) in [("big", 1u64, 100u64), ("small", 99, 1), ("mid", 50, 10)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, work, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["small", "mid", "big"]);
        assert!(sched.stats().sjf_picks >= 3);
        sched.shutdown();
    }

    #[test]
    fn pressure_release_returns_to_deadline_mode() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        sched.set_memory_pressure(0.95);
        sched.set_memory_pressure(0.2);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline, work) in [("a", 5u64, 100u64), ("b", 50, 1)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, work, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["a", "b"]);
        sched.shutdown();
    }

    #[test]
    fn fifo_policy_ignores_deadlines() {
        let (sched, gate) = gated_scheduler(Policy::Fifo);
        let order = Arc::new(Mutex::new(Vec::new()));
        for (name, deadline) in [("first", 99u64), ("second", 1)] {
            let o = Arc::clone(&order);
            sched.submit(job(JobKind::PreMaterialize, deadline, 1, move || {
                o.lock().push(name);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        sched.wait_idle();
        assert_eq!(*order.lock(), vec!["first", "second"]);
        assert!(sched.stats().fifo_picks >= 2);
        sched.shutdown();
    }

    #[test]
    fn parallel_throughput_with_many_threads() {
        let sched = Scheduler::new(SchedConfig {
            threads: 8,
            ..Default::default()
        });
        let count = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let c = Arc::clone(&count);
            sched.submit(job(JobKind::PreMaterialize, i, 1, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        sched.wait_idle();
        assert_eq!(count.load(Ordering::SeqCst), 200);
        sched.shutdown();
    }

    #[test]
    fn shutdown_drops_unstarted_jobs() {
        let (sched, gate) = gated_scheduler(Policy::Priority);
        let count = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            let c = Arc::clone(&count);
            sched.submit(job(JobKind::PreMaterialize, 1, 1, move || {
                c.fetch_add(1, Ordering::SeqCst);
            }));
        }
        gate.store(true, Ordering::SeqCst);
        // Shut down immediately; some queued jobs may be dropped, and that
        // must not hang or crash.
        sched.shutdown();
        assert!(count.load(Ordering::SeqCst) <= 5);
    }

    #[test]
    fn wait_idle_on_empty_pool_returns() {
        let sched = Scheduler::new(SchedConfig::default());
        sched.wait_idle();
        sched.shutdown();
    }
}
