//! # sand-net — multi-node SAND
//!
//! The network boundary for the SAND engine: the paper's deployment
//! merges redundant materialization *within* one process and leans on
//! shared storage across machines; this crate makes SAND itself
//! distributable, so N decode nodes feed M trainers from one
//! deduplicated, cluster-wide cache.
//!
//! The pieces, bottom-up:
//!
//! - [`wire`] — a length-prefixed, CRC-32-checksummed binary frame
//!   format carrying the Table-2 verb set (`Open`/`Read`/`GetXattr`/
//!   `Close`) plus the inter-node object verbs (`Put`/`Fetch`/`Stat`).
//!   Torn frames and bit flips are rejected before parsing; a receiver
//!   never sees a partial message.
//! - [`Placement`] — a deterministic consistent-hash ring over node ids
//!   that routes every object key to one owner node with no
//!   coordination service.
//! - [`ViewServer`] — exposes a node's [`sand_vfs::ViewProvider`] (and,
//!   optionally, its object store) over a TCP listener: bounded worker
//!   pool, per-connection fd tables, positional reads so retries are
//!   idempotent.
//! - [`ViewClient`] — connection-pooled client with configurable
//!   timeouts and bounded retry-with-backoff; [`RemoteProvider`] adapts
//!   it back into a `ViewProvider`, so a remote engine mounts like a
//!   local one.
//! - [`RemoteTier`] — the cluster cache tier the engine consults on a
//!   local store miss, *below* mem/disk and *above* materialization:
//!   consult the ring, fetch from the owner, and push local
//!   materializations of remotely-owned keys back to their owner, so a
//!   shared-ancestor object materializes at most once cluster-wide.
//!
//! **Failure contract:** every remote path degrades, never corrupts. A
//! fetch that times out, fails checksum, or finds the owner down falls
//! back to local materialization — the caller may do redundant work but
//! can never serve wrong bytes. Peer health is tracked with a
//! consecutive-failure breaker and cooldown so a dead node costs one
//! timeout per cooldown window, not one per object.

pub mod client;
pub mod placement;
pub mod remote;
pub mod server;
pub mod wire;

pub use client::{ClientConfig, RemoteProvider, ViewClient};
pub use placement::Placement;
pub use remote::{PeerSpec, RemoteTier, RemoteTierConfig};
pub use server::{ServerConfig, ServerHandle, ViewServer};
pub use wire::{Request, Response};

use std::fmt;

/// Errors surfaced by the networking layer.
#[derive(Debug)]
pub enum NetError {
    /// Transport-level I/O failure (connect, read, write, timeout).
    Io {
        /// Human-readable description.
        what: String,
    },
    /// The peer sent bytes that do not parse as a valid frame/message
    /// (bad length, checksum mismatch, unknown tag, trailing bytes).
    Protocol {
        /// Human-readable description.
        what: String,
    },
    /// The peer processed the request and answered with an error.
    Remote {
        /// One of [`wire::err_code`].
        code: u8,
        /// The peer's description.
        what: String,
    },
    /// The peer answered with a response of the wrong kind for the
    /// request (e.g. `Data` for a `Close`).
    Unexpected {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { what } => write!(f, "net i/o error: {what}"),
            NetError::Protocol { what } => write!(f, "net protocol error: {what}"),
            NetError::Remote { code, what } => write!(f, "remote error (code {code}): {what}"),
            NetError::Unexpected { what } => write!(f, "unexpected response: {what}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io {
            what: e.to_string(),
        }
    }
}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, NetError>;
