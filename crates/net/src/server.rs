//! `ViewServer` — one node's engine and store, exposed over TCP.
//!
//! An accept thread hands connections to a **bounded worker pool** (no
//! thread-per-connection: a burst of trainers cannot fork the node to
//! death); each worker owns one connection at a time and serves its
//! requests sequentially. Backpressure is the bounded hand-off channel —
//! when every worker is busy, further connections queue in the channel
//! (and then in the listener backlog) instead of spawning.
//!
//! Each connection gets a **private fd table** mirroring the in-process
//! VFS (lowest free descriptor from 3), so fds never leak across
//! trainers and a dropped connection releases every view it held —
//! `provider.released()` fires for each, exactly like a local `close`.
//! `Read` is positional (`offset` in the request), which makes a retry
//! on a fresh connection idempotent: there is no server-side cursor to
//! desynchronize.
//!
//! Shutdown is cooperative: workers use short socket read timeouts to
//! poll the stop flag between frames, and `shutdown()` pokes the
//! listener with a throwaway connection to unblock `accept`.

use crate::wire::{self, err_code, Request, Response};
use crate::{NetError, Result};
use sand_storage::{ObjectMeta, ObjectStore, StorageError, Tier};
use sand_telemetry::{NetMetrics, Telemetry};
use sand_vfs::{VfsError, ViewPath, ViewProvider};
use std::collections::BTreeMap;
use std::io::{ErrorKind, Read as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each serves one connection at a time).
    pub workers: usize,
    /// Largest request frame accepted.
    pub max_frame_bytes: u32,
    /// Socket read timeout — the stop-flag polling interval, not a
    /// request deadline.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            max_frame_bytes: 64 << 20,
            poll_interval: Duration::from_millis(50),
        }
    }
}

/// A running server; dropping it shuts the listener and workers down.
pub struct ServerHandle {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops accepting, drains workers, joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop; if the listener is already gone the
        // connect fails, which is just as good.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_millis(200));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The per-node RPC server.
pub struct ViewServer;

struct Shared {
    provider: Arc<dyn ViewProvider>,
    store: Option<Arc<ObjectStore>>,
    metrics: Option<NetMetrics>,
    config: ServerConfig,
    stop: Arc<AtomicBool>,
}

impl ViewServer {
    /// Binds `addr` and serves `provider` (and `store`, when given, for
    /// the object-exchange verbs) until the handle is shut down.
    pub fn serve<A: ToSocketAddrs>(
        addr: A,
        provider: Arc<dyn ViewProvider>,
        store: Option<Arc<ObjectStore>>,
        config: ServerConfig,
        telemetry: &Telemetry,
    ) -> Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        Self::serve_on(listener, provider, store, config, telemetry)
    }

    /// Serves on an already-bound listener. Binding first lets a cluster
    /// assembler learn every node's address (port 0) before any engine
    /// or remote tier is constructed.
    pub fn serve_on(
        listener: TcpListener,
        provider: Arc<dyn ViewProvider>,
        store: Option<Arc<ObjectStore>>,
        config: ServerConfig,
        telemetry: &Telemetry,
    ) -> Result<ServerHandle> {
        let local_addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(Shared {
            provider,
            store,
            metrics: NetMetrics::register(telemetry),
            config: config.clone(),
            stop: Arc::clone(&stop),
        });

        let workers = config.workers.max(1);
        let (tx, rx) = crossbeam::channel::bounded::<TcpStream>(workers * 2);
        let mut threads = Vec::with_capacity(workers + 1);
        for i in 0..workers {
            let rx = rx.clone();
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name(format!("sand-net-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared))
                    .map_err(|e| NetError::Io {
                        what: format!("spawn worker: {e}"),
                    })?,
            );
        }
        {
            let shared = Arc::clone(&shared);
            threads.push(
                std::thread::Builder::new()
                    .name("sand-net-accept".to_string())
                    .spawn(move || accept_loop(&listener, &tx, &shared))
                    .map_err(|e| NetError::Io {
                        what: format!("spawn acceptor: {e}"),
                    })?,
            );
        }
        Ok(ServerHandle {
            local_addr,
            stop,
            threads,
        })
    }
}

fn accept_loop(
    listener: &TcpListener,
    tx: &crossbeam::channel::Sender<TcpStream>,
    shared: &Shared,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        let _ = stream.set_read_timeout(Some(shared.config.poll_interval));
        let _ = stream.set_nodelay(true);
        if tx.send(stream).is_err() {
            return;
        }
    }
}

fn worker_loop(rx: &crossbeam::channel::Receiver<TcpStream>, shared: &Shared) {
    loop {
        match rx.recv_timeout(shared.config.poll_interval) {
            Ok(stream) => serve_connection(stream, shared),
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// One open descriptor on one connection.
struct OpenEntry {
    path: ViewPath,
    content: Arc<Vec<u8>>,
}

fn serve_connection(mut stream: TcpStream, shared: &Shared) {
    let mut fds: BTreeMap<u64, OpenEntry> = BTreeMap::new();
    // Anything but a whole frame — clean EOF, shutdown, or a transport/
    // protocol failure — means the connection is done.
    while let Ok(Some(payload)) = read_frame_interruptible(&mut stream, shared) {
        if let Some(m) = &shared.metrics {
            m.server_requests.inc();
            m.bytes_rx.add(payload.len() as u64);
        }
        let response = match Request::decode(&payload) {
            Ok(req) => handle_request(req, &mut fds, shared),
            Err(e) => Response::Error {
                code: err_code::PROTOCOL,
                what: e.to_string(),
            },
        };
        if let (Some(m), Response::Error { .. }) = (&shared.metrics, &response) {
            m.server_errors.inc();
        }
        let encoded = match response.encode() {
            Ok(e) => e,
            Err(_) => break,
        };
        if let Some(m) = &shared.metrics {
            m.bytes_tx.add(encoded.len() as u64);
        }
        if wire::write_frame(&mut stream, &encoded).is_err() {
            break;
        }
    }
    // Dropped connection ≡ close of everything it held.
    for (_, entry) in fds {
        shared.provider.released(&entry.path);
    }
}

/// Reads one frame, polling the stop flag across read-timeout ticks.
/// `Ok(None)` is clean EOF at a frame boundary.
fn read_frame_interruptible(stream: &mut TcpStream, shared: &Shared) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    match read_exact_polling(stream, &mut header, shared)? {
        0 => return Ok(None),
        8 => {}
        n => {
            return Err(NetError::Protocol {
                what: format!("connection closed mid-header ({n}/8 bytes)"),
            })
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let cap = shared.config.max_frame_bytes.min(wire::ABSOLUTE_MAX_FRAME);
    if len > cap {
        return Err(NetError::Protocol {
            what: format!("frame of {len} bytes exceeds cap of {cap}"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_exact_polling(stream, &mut payload, shared)?;
    if got != payload.len() {
        return Err(NetError::Protocol {
            what: format!("connection closed mid-frame ({got}/{len} bytes)"),
        });
    }
    if wire::crc32(&payload) != crc {
        return Err(NetError::Protocol {
            what: "frame checksum mismatch".to_string(),
        });
    }
    Ok(Some(payload))
}

/// Fills `buf` (or stops at EOF), treating read timeouts as stop-flag
/// polling points rather than errors.
fn read_exact_polling(stream: &mut TcpStream, buf: &mut [u8], shared: &Shared) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                if shared.stop.load(Ordering::SeqCst) {
                    return Err(NetError::Io {
                        what: "server shutting down".to_string(),
                    });
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

fn vfs_error_response(e: &VfsError) -> Response {
    let (code, what) = match e {
        VfsError::NoSuchView { .. } => (err_code::NO_SUCH_VIEW, e.to_string()),
        VfsError::Io { .. } => (err_code::IO, e.to_string()),
        VfsError::BadFd { .. } => (err_code::BAD_FD, e.to_string()),
        VfsError::NoAttr { .. } => (err_code::NO_ATTR, e.to_string()),
    };
    Response::Error { code, what }
}

/// Lowest free descriptor from 3, mirroring the in-process VFS.
fn alloc_fd(fds: &BTreeMap<u64, OpenEntry>) -> u64 {
    let mut fd = 3;
    while fds.contains_key(&fd) {
        fd += 1;
    }
    fd
}

fn handle_request(req: Request, fds: &mut BTreeMap<u64, OpenEntry>, shared: &Shared) -> Response {
    match req {
        Request::Open { path } => {
            let parsed = match ViewPath::parse(&path) {
                Some(p) => p,
                None => {
                    return Response::Error {
                        code: err_code::NO_SUCH_VIEW,
                        what: format!("no such view: {path}"),
                    }
                }
            };
            match shared.provider.fetch(&parsed) {
                Ok(content) => {
                    let fd = alloc_fd(fds);
                    let size = content.len() as u64;
                    fds.insert(
                        fd,
                        OpenEntry {
                            path: parsed,
                            content,
                        },
                    );
                    Response::Opened { fd, size }
                }
                Err(e) => vfs_error_response(&e),
            }
        }
        Request::Read { fd, offset, len } => match fds.get(&fd) {
            Some(entry) => {
                let total = entry.content.len();
                let start = usize::try_from(offset).unwrap_or(usize::MAX).min(total);
                let end = start.saturating_add(len as usize).min(total);
                Response::Data {
                    bytes: entry.content[start..end].to_vec(),
                    eof: end == total,
                }
            }
            None => vfs_error_response(&VfsError::BadFd { fd }),
        },
        Request::GetXattr { fd, name } => match fds.get(&fd) {
            Some(entry) => match shared.provider.metadata(&entry.path, &name) {
                Ok(value) => Response::Xattr { value },
                Err(e) => vfs_error_response(&e),
            },
            None => vfs_error_response(&VfsError::BadFd { fd }),
        },
        Request::Close { fd } => match fds.remove(&fd) {
            Some(entry) => {
                shared.provider.released(&entry.path);
                Response::Closed
            }
            None => vfs_error_response(&VfsError::BadFd { fd }),
        },
        Request::Put {
            key,
            deadline,
            future_uses,
            bytes,
        } => match &shared.store {
            Some(store) => {
                let meta = ObjectMeta {
                    deadline,
                    future_uses,
                };
                match store.put(&key, Arc::new(bytes), meta) {
                    Ok(()) => Response::PutOk,
                    Err(e) => Response::Error {
                        code: err_code::IO,
                        what: format!("put {key}: {e}"),
                    },
                }
            }
            None => Response::Error {
                code: err_code::IO,
                what: "node serves no object store".to_string(),
            },
        },
        Request::Fetch { key } => match &shared.store {
            Some(store) => match store.get(&key) {
                Ok(bytes) => Response::Hit {
                    bytes: bytes.as_ref().clone(),
                },
                Err(StorageError::NotFound { .. }) => Response::Miss,
                Err(e) => Response::Error {
                    code: err_code::IO,
                    what: format!("fetch {key}: {e}"),
                },
            },
            None => Response::Miss,
        },
        Request::Stat { key } => match &shared.store {
            Some(store) => match store.tier_of(&key) {
                Some(tier) => {
                    // Only a memory-resident object's size is cheaply
                    // known; a disk read just to report a size is not
                    // worth the I/O on a probe verb.
                    let (tier_code, size) = match tier {
                        Tier::Memory => (1u8, store.get(&key).map(|b| b.len() as u64).unwrap_or(0)),
                        Tier::Disk => (2u8, 0),
                    };
                    Response::Stat {
                        present: true,
                        tier: tier_code,
                        size,
                    }
                }
                None => Response::Stat {
                    present: false,
                    tier: 0,
                    size: 0,
                },
            },
            None => Response::Stat {
                present: false,
                tier: 0,
                size: 0,
            },
        },
    }
}
