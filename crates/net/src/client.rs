//! `ViewClient` — pooled, retrying RPC client, plus the
//! [`RemoteProvider`] adapter that mounts a remote node like a local
//! engine.
//!
//! Retry contract: only **transport** failures are retried (connect,
//! timeout, torn frame), always on a **fresh connection**, with bounded
//! exponential backoff. That is safe because the protocol was shaped for
//! it — `Read` is positional, `Put` is idempotent, and fd tables are
//! per-connection, so a retried `Open` on a new connection cannot
//! collide with state the dead one held. A [`Response::Error`] from the
//! peer is *not* retried: the peer answered; repeating the question
//! would not change the answer.

use crate::wire::{self, err_code, Request, Response};
use crate::{NetError, Result};
use sand_sanitizer::TrackedMutex;
use sand_telemetry::{NetMetrics, Telemetry};
use sand_vfs::{VfsError, ViewPath, ViewProvider};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Client tunables.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    /// Per-attempt connect timeout.
    pub connect_timeout: Duration,
    /// Per-attempt socket read/write timeout.
    pub io_timeout: Duration,
    /// Additional attempts after the first (0 = fail fast).
    pub retries: u32,
    /// Sleep before the first retry; doubles per subsequent retry.
    pub backoff: Duration,
    /// Idle connections kept pooled.
    pub pool: usize,
    /// Largest response frame accepted.
    pub max_frame_bytes: u32,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            connect_timeout: Duration::from_millis(500),
            io_timeout: Duration::from_millis(500),
            retries: 2,
            backoff: Duration::from_millis(10),
            pool: 2,
            max_frame_bytes: 64 << 20,
        }
    }
}

/// Connection-pooled RPC client for one peer.
pub struct ViewClient {
    addr: SocketAddr,
    config: ClientConfig,
    pool: TrackedMutex<Vec<TcpStream>>,
    metrics: Option<NetMetrics>,
}

impl std::fmt::Debug for ViewClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ViewClient")
            .field("addr", &self.addr)
            .field("config", &self.config)
            .finish()
    }
}

impl ViewClient {
    /// Creates a client for `addr`. No connection is made until the
    /// first call.
    pub fn new(addr: SocketAddr, config: ClientConfig, telemetry: &Telemetry) -> Self {
        Self {
            addr,
            config,
            pool: TrackedMutex::new("net.client.pool", Vec::new()),
            metrics: NetMetrics::register(telemetry),
        }
    }

    /// The peer this client talks to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    fn checkout(&self) -> Result<TcpStream> {
        if let Some(s) = self.pool.lock().pop() {
            return Ok(s);
        }
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_read_timeout(Some(self.config.io_timeout))?;
        stream.set_write_timeout(Some(self.config.io_timeout))?;
        stream.set_nodelay(true)?;
        Ok(stream)
    }

    fn checkin(&self, stream: TcpStream) {
        let mut pool = self.pool.lock();
        if pool.len() < self.config.pool {
            pool.push(stream);
        }
    }

    fn attempt(&self, req: &Request) -> Result<Response> {
        let payload = req.encode()?;
        let mut stream = self.checkout()?;
        if let Some(m) = &self.metrics {
            m.bytes_tx.add(payload.len() as u64);
        }
        wire::write_frame(&mut stream, &payload)?;
        let raw = wire::read_frame(&mut stream, self.config.max_frame_bytes)?.ok_or_else(|| {
            NetError::Io {
                what: "peer closed before responding".to_string(),
            }
        })?;
        if let Some(m) = &self.metrics {
            m.bytes_rx.add(raw.len() as u64);
        }
        let resp = Response::decode(&raw)?;
        self.checkin(stream);
        Ok(resp)
    }

    /// One RPC round-trip with bounded retry-with-backoff on transport
    /// failure. Returns the peer's response verbatim (including
    /// [`Response::Error`]).
    pub fn call(&self, req: &Request) -> Result<Response> {
        let mut backoff = self.config.backoff;
        let mut last: Option<NetError> = None;
        for attempt in 0..=self.config.retries {
            if attempt > 0 {
                if let Some(m) = &self.metrics {
                    m.retries.inc();
                }
                // Stale pooled connections (peer restarted) are the
                // common cause — drop them all before redialing.
                self.pool.lock().clear();
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                    backoff = backoff.saturating_mul(2);
                }
            }
            match self.attempt(req) {
                Ok(resp) => return Ok(resp),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| NetError::Io {
            what: "no attempt made".to_string(),
        }))
    }

    fn unexpected(req: &str, resp: &Response) -> NetError {
        NetError::Unexpected {
            what: format!("{req} answered with {resp:?}"),
        }
    }

    /// Table-2 `open`: returns `(fd, size)`.
    pub fn open(&self, path: &str) -> Result<(u64, u64)> {
        match self.call(&Request::Open {
            path: path.to_string(),
        })? {
            Response::Opened { fd, size } => Ok((fd, size)),
            Response::Error { code, what } => Err(NetError::Remote { code, what }),
            other => Err(Self::unexpected("open", &other)),
        }
    }

    /// Positional read: returns `(bytes, eof)`.
    pub fn read(&self, fd: u64, offset: u64, len: u32) -> Result<(Vec<u8>, bool)> {
        match self.call(&Request::Read { fd, offset, len })? {
            Response::Data { bytes, eof } => Ok((bytes, eof)),
            Response::Error { code, what } => Err(NetError::Remote { code, what }),
            other => Err(Self::unexpected("read", &other)),
        }
    }

    /// Table-2 `getxattr`.
    pub fn getxattr(&self, fd: u64, name: &str) -> Result<String> {
        match self.call(&Request::GetXattr {
            fd,
            name: name.to_string(),
        })? {
            Response::Xattr { value } => Ok(value),
            Response::Error { code, what } => Err(NetError::Remote { code, what }),
            other => Err(Self::unexpected("getxattr", &other)),
        }
    }

    /// Table-2 `close`.
    pub fn close(&self, fd: u64) -> Result<()> {
        match self.call(&Request::Close { fd })? {
            Response::Closed => Ok(()),
            Response::Error { code, what } => Err(NetError::Remote { code, what }),
            other => Err(Self::unexpected("close", &other)),
        }
    }

    /// Pushes an object into the peer's store.
    pub fn put(
        &self,
        key: &str,
        deadline: Option<u64>,
        future_uses: u32,
        bytes: &[u8],
    ) -> Result<()> {
        match self.call(&Request::Put {
            key: key.to_string(),
            deadline,
            future_uses,
            bytes: bytes.to_vec(),
        })? {
            Response::PutOk => Ok(()),
            Response::Error { code, what } => Err(NetError::Remote { code, what }),
            other => Err(Self::unexpected("put", &other)),
        }
    }

    /// Fetches a cached object from the peer; `Ok(None)` is a clean miss.
    pub fn fetch(&self, key: &str) -> Result<Option<Vec<u8>>> {
        match self.call(&Request::Fetch {
            key: key.to_string(),
        })? {
            Response::Hit { bytes } => Ok(Some(bytes)),
            Response::Miss => Ok(None),
            Response::Error { code, what } => Err(NetError::Remote { code, what }),
            other => Err(Self::unexpected("fetch", &other)),
        }
    }

    /// Probes presence/tier: `Ok(Some((tier, size)))` when cached.
    pub fn stat(&self, key: &str) -> Result<Option<(u8, u64)>> {
        match self.call(&Request::Stat {
            key: key.to_string(),
        })? {
            Response::Stat {
                present: true,
                tier,
                size,
            } => Ok(Some((tier, size))),
            Response::Stat { present: false, .. } => Ok(None),
            Response::Error { code, what } => Err(NetError::Remote { code, what }),
            other => Err(Self::unexpected("stat", &other)),
        }
    }

    /// Convenience: `open` + chunked positional `read`s to EOF + `close`.
    pub fn read_view(&self, path: &str) -> Result<Vec<u8>> {
        const CHUNK: u32 = 256 << 10;
        let (fd, size) = self.open(path)?;
        let mut out = Vec::with_capacity(usize::try_from(size).unwrap_or(0));
        let mut offset = 0u64;
        loop {
            let (bytes, eof) = match self.read(fd, offset, CHUNK) {
                Ok(r) => r,
                Err(e) => {
                    let _ = self.close(fd);
                    return Err(e);
                }
            };
            offset += bytes.len() as u64;
            let stalled = bytes.is_empty();
            out.extend_from_slice(&bytes);
            if eof || stalled {
                break;
            }
        }
        self.close(fd)?;
        Ok(out)
    }
}

/// Adapts a [`ViewClient`] back into a [`ViewProvider`]: a trainer
/// process mounts a remote SAND node exactly like a local engine —
/// `SandVfs::new(Arc::new(RemoteProvider::new(client)))`.
pub struct RemoteProvider {
    client: ViewClient,
}

impl RemoteProvider {
    pub fn new(client: ViewClient) -> Self {
        Self { client }
    }
}

fn to_vfs_error(path: &ViewPath, e: NetError) -> VfsError {
    match e {
        NetError::Remote { code, what } => match code {
            err_code::NO_SUCH_VIEW => VfsError::NoSuchView {
                path: path.to_string(),
            },
            err_code::BAD_FD => VfsError::Io { what },
            err_code::NO_ATTR => {
                // The attribute name rides in `what`; the caller-facing
                // variant wants just a name, so keep the description.
                VfsError::NoAttr { name: what }
            }
            _ => VfsError::Io { what },
        },
        other => VfsError::Io {
            what: other.to_string(),
        },
    }
}

impl ViewProvider for RemoteProvider {
    fn fetch(&self, path: &ViewPath) -> std::result::Result<Arc<Vec<u8>>, VfsError> {
        self.client
            .read_view(&path.to_string())
            .map(Arc::new)
            .map_err(|e| to_vfs_error(path, e))
    }

    fn metadata(&self, path: &ViewPath, name: &str) -> std::result::Result<String, VfsError> {
        let p = path.to_string();
        let (fd, _) = self.client.open(&p).map_err(|e| to_vfs_error(path, e))?;
        let value = self.client.getxattr(fd, name);
        let _ = self.client.close(fd);
        value.map_err(|e| match e {
            NetError::Remote {
                code: err_code::NO_ATTR,
                ..
            } => VfsError::NoAttr {
                name: name.to_string(),
            },
            other => to_vfs_error(path, other),
        })
    }
}
