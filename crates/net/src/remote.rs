//! `RemoteTier` — the cluster cache tier below mem/disk.
//!
//! On a local store miss the engine consults the [`Placement`] ring: if
//! another node owns the key, fetch the compressed object from it before
//! falling back to materialization. Conversely, when this node
//! materializes an object *owned elsewhere* (it needed the bytes now and
//! the owner didn't have them yet), it pushes the result to the owner so
//! the next consumer anywhere in the cluster hits. Together the two
//! paths give the cluster-wide invariant the single process already has:
//! **a shared-ancestor object materializes at most once** — modulo
//! races, which cost duplicate work, never wrong bytes.
//!
//! ## Failure contract
//!
//! Every method here is infallible by signature: a timeout, refused
//! connection, or protocol error after bounded retries surfaces as
//! "not available remotely" (`None`) and the caller materializes
//! locally. A per-peer consecutive-failure breaker then holds the peer
//! **down** for a cooldown window, so a dead node costs one timed-out
//! fetch per window instead of one per object. The ring itself never
//! changes shape on failure — keys do not migrate during an outage, so
//! recovery finds the cache where it was left.
//!
//! Time spent in this tier is charged to the dedicated `remote` stall
//! segment (the tenth of the exact-sum breakdown), never mixed into
//! `store_io` — the telemetry consumer can tell network stalls from
//! disk stalls at a glance.

use crate::client::{ClientConfig, ViewClient};
use crate::placement::Placement;
use crate::Result;
use sand_sanitizer::{TrackedCondvar, TrackedMutex};
use sand_telemetry::{record_stage, NetMetrics, Stage, Telemetry};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One peer node: its ring identity and dial address.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeerSpec {
    /// Ring identity; must be unique and agreed cluster-wide.
    pub node_id: String,
    /// TCP address of the peer's [`crate::ViewServer`].
    pub addr: SocketAddr,
}

/// Remote-tier configuration, carried by `EngineConfig::remote`.
#[derive(Clone, Debug)]
pub struct RemoteTierConfig {
    /// This node's ring identity.
    pub node_id: String,
    /// The *other* nodes (self is implied on the ring).
    pub peers: Vec<PeerSpec>,
    /// Virtual nodes per physical node on the placement ring.
    pub vnodes: usize,
    /// Per-attempt timeout for remote fetches and pushes.
    pub fetch_timeout: Duration,
    /// Additional attempts after the first.
    pub retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Push locally-materialized, remotely-owned objects to their owner.
    pub push_to_owner: bool,
    /// Consecutive failures before a peer is held down.
    pub failure_threshold: u32,
    /// How long a down peer is skipped before being probed again.
    pub failure_cooldown: Duration,
}

impl Default for RemoteTierConfig {
    fn default() -> Self {
        Self {
            node_id: "node0".to_string(),
            peers: Vec::new(),
            vnodes: 64,
            fetch_timeout: Duration::from_millis(250),
            retries: 1,
            backoff: Duration::from_millis(5),
            push_to_owner: true,
            failure_threshold: 2,
            failure_cooldown: Duration::from_secs(1),
        }
    }
}

/// Per-peer circuit-breaker state.
struct Health {
    consecutive_failures: u32,
    down_until: Option<Instant>,
}

struct Peer {
    client: ViewClient,
    health: TrackedMutex<Health>,
}

/// One in-flight fetch that concurrent callers for the same key wait
/// on instead of dialing the owner themselves. `done` stays `None`
/// until the leader publishes its outcome (hit bytes, or `None` for a
/// miss/error — waiters degrade exactly like the leader).
struct FetchFlight {
    done: TrackedMutex<Option<Option<Vec<u8>>>>,
    cv: TrackedCondvar,
}

impl FetchFlight {
    fn new() -> Self {
        Self {
            done: TrackedMutex::new("net.remote.flight", None),
            cv: TrackedCondvar::new(),
        }
    }
}

/// The cluster cache tier. Cheap to share (`Arc` it once in the engine).
pub struct RemoteTier {
    config: RemoteTierConfig,
    placement: Placement,
    peers: HashMap<String, Peer>,
    /// Singleflight claim map: key → the fetch currently on the wire.
    inflight: TrackedMutex<HashMap<String, Arc<FetchFlight>>>,
    metrics: Option<NetMetrics>,
}

impl std::fmt::Debug for RemoteTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteTier")
            .field("node_id", &self.config.node_id)
            .field("peers", &self.peers.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl RemoteTier {
    pub fn new(config: RemoteTierConfig, telemetry: &Telemetry) -> Self {
        let mut ids: Vec<String> = config.peers.iter().map(|p| p.node_id.clone()).collect();
        ids.push(config.node_id.clone());
        let placement = Placement::new(&ids, config.vnodes);
        let client_config = ClientConfig {
            connect_timeout: config.fetch_timeout,
            io_timeout: config.fetch_timeout,
            retries: config.retries,
            backoff: config.backoff,
            pool: 2,
            max_frame_bytes: 64 << 20,
        };
        let peers = config
            .peers
            .iter()
            .map(|p| {
                (
                    p.node_id.clone(),
                    Peer {
                        client: ViewClient::new(p.addr, client_config.clone(), telemetry),
                        health: TrackedMutex::new(
                            "net.remote.health",
                            Health {
                                consecutive_failures: 0,
                                down_until: None,
                            },
                        ),
                    },
                )
            })
            .collect();
        Self {
            metrics: NetMetrics::register(telemetry),
            config,
            placement,
            peers,
            inflight: TrackedMutex::new("net.remote.inflight", HashMap::new()),
        }
    }

    /// This node's ring identity.
    pub fn node_id(&self) -> &str {
        &self.config.node_id
    }

    /// Peers on the ring besides this node.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// The configured per-attempt fetch timeout.
    pub fn fetch_timeout(&self) -> Duration {
        self.config.fetch_timeout
    }

    /// The ring owner of `key`.
    pub fn owner_of(&self, key: &str) -> Option<&str> {
        self.placement.owner_of(key)
    }

    /// Whether `key` is owned by some *other* node.
    pub fn is_remote(&self, key: &str) -> bool {
        self.owner_of(key)
            .map(|o| o != self.config.node_id)
            .unwrap_or(false)
    }

    /// Peers currently held down by the failure breaker.
    pub fn peers_down(&self) -> usize {
        let now = Instant::now();
        self.peers
            .values()
            .filter(|p| {
                p.health
                    .lock()
                    .down_until
                    .map(|until| now < until)
                    .unwrap_or(false)
            })
            .count()
    }

    /// Whether `peer` may be dialed right now; expired cooldowns clear.
    fn peer_usable(&self, peer: &Peer) -> bool {
        let mut h = peer.health.lock();
        match h.down_until {
            Some(until) if Instant::now() < until => false,
            Some(_) => {
                // Cooldown over — allow one probe; failures re-arm it.
                h.down_until = None;
                drop(h);
                self.publish_peers_down();
                true
            }
            None => true,
        }
    }

    fn mark_success(&self, peer: &Peer) {
        let mut h = peer.health.lock();
        h.consecutive_failures = 0;
        if h.down_until.take().is_some() {
            drop(h);
            self.publish_peers_down();
        }
    }

    fn mark_failure(&self, peer: &Peer) {
        let mut h = peer.health.lock();
        h.consecutive_failures += 1;
        if h.consecutive_failures >= self.config.failure_threshold.max(1) {
            h.down_until = Some(Instant::now() + self.config.failure_cooldown);
            drop(h);
            self.publish_peers_down();
        }
    }

    fn publish_peers_down(&self) {
        if let Some(m) = &self.metrics {
            m.peers_down.set(self.peers_down() as i64);
        }
    }

    /// Consults the ring and fetches `key` from its owner.
    ///
    /// `None` means "not available remotely" for *any* reason — self-
    /// owned key, owner down or unreachable, clean miss — and the caller
    /// should materialize locally. Network time is charged to the
    /// `remote` stall segment either way.
    ///
    /// Concurrent fetches for the same key are coalesced behind one RPC
    /// (singleflight): followers block on the leader's in-flight fetch
    /// and adopt its outcome instead of racing a duplicate `Fetch` to
    /// the owner.
    pub fn fetch(&self, key: &str) -> Option<Vec<u8>> {
        let owner = self.owner_of(key)?;
        if owner == self.config.node_id {
            return None;
        }
        let peer = self.peers.get(owner)?;
        if !self.peer_usable(peer) {
            return None;
        }
        let (flight, leader) = {
            let mut inflight = self.inflight.lock();
            match inflight.get(key) {
                Some(f) => (Arc::clone(f), false),
                None => {
                    let f = Arc::new(FetchFlight::new());
                    inflight.insert(key.to_string(), Arc::clone(&f));
                    (f, true)
                }
            }
        };
        if !leader {
            // Follower: wait for the leader's outcome. Breaker state and
            // hit/miss/error counters were already settled by the leader;
            // this path only accounts the coalesce and its wait time.
            let start = Instant::now();
            let result = {
                let mut done = flight.done.lock();
                while done.is_none() {
                    flight.cv.wait(&mut done);
                }
                done.clone().flatten()
            };
            record_stage(Stage::Remote, start.elapsed());
            if let Some(m) = &self.metrics {
                m.fetch_coalesced.inc();
            }
            return result;
        }
        let result = self.fetch_from_owner(key, peer);
        // Retire the claim before publishing: a caller arriving after
        // this point starts a fresh flight (the object may have landed
        // in the local store meanwhile) instead of adopting a stale one.
        self.inflight.lock().remove(key);
        {
            let mut done = flight.done.lock();
            *done = Some(result.clone());
        }
        flight.cv.notify_all();
        result
    }

    /// The leader's actual RPC to the ring owner: breaker bookkeeping,
    /// stall attribution, and hit/miss/error counters.
    fn fetch_from_owner(&self, key: &str, peer: &Peer) -> Option<Vec<u8>> {
        let start = Instant::now();
        let outcome = peer.client.fetch(key);
        let spent = start.elapsed();
        record_stage(Stage::Remote, spent);
        match outcome {
            Ok(Some(bytes)) => {
                self.mark_success(peer);
                if let Some(m) = &self.metrics {
                    m.fetch_hits.inc();
                    m.fetch_us.observe_duration(spent);
                }
                Some(bytes)
            }
            Ok(None) => {
                self.mark_success(peer);
                if let Some(m) = &self.metrics {
                    m.fetch_misses.inc();
                    m.fetch_us.observe_duration(spent);
                }
                None
            }
            Err(_) => {
                self.mark_failure(peer);
                if let Some(m) = &self.metrics {
                    m.fetch_errors.inc();
                }
                None
            }
        }
    }

    /// Best-effort push of a locally-materialized object to its ring
    /// owner. No-op for self-owned keys, down owners, or when pushing is
    /// disabled; a failed push leaves the object local and is never an
    /// error.
    pub fn offer(&self, key: &str, deadline: Option<u64>, future_uses: u32, bytes: &[u8]) {
        if !self.config.push_to_owner {
            return;
        }
        let Some(owner) = self.owner_of(key) else {
            return;
        };
        if owner == self.config.node_id {
            return;
        }
        let Some(peer) = self.peers.get(owner) else {
            return;
        };
        if !self.peer_usable(peer) {
            return;
        }
        let start = Instant::now();
        let outcome = peer.client.put(key, deadline, future_uses, bytes);
        record_stage(Stage::Remote, start.elapsed());
        match outcome {
            Ok(()) => {
                self.mark_success(peer);
                if let Some(m) = &self.metrics {
                    m.pushes.inc();
                }
            }
            Err(_) => {
                self.mark_failure(peer);
                if let Some(m) = &self.metrics {
                    m.push_errors.inc();
                }
            }
        }
    }

    /// Direct probe of the owner's cache (diagnostics; not on the serve
    /// path).
    pub fn stat(&self, key: &str) -> Result<Option<(u8, u64)>> {
        let Some(owner) = self.owner_of(key) else {
            return Ok(None);
        };
        if owner == self.config.node_id {
            return Ok(None);
        }
        match self.peers.get(owner) {
            Some(peer) => peer.client.stat(key),
            None => Ok(None),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn self_owned_keys_never_dial() {
        let tier = RemoteTier::new(
            RemoteTierConfig {
                node_id: "only".to_string(),
                ..RemoteTierConfig::default()
            },
            &Telemetry::disabled(),
        );
        assert_eq!(tier.peer_count(), 0);
        assert!(!tier.is_remote("any/key"));
        assert!(tier.fetch("any/key").is_none());
        tier.offer("any/key", None, 1, b"bytes");
    }

    #[test]
    fn unreachable_owner_degrades_and_breaks() {
        // Port 9 on localhost: connection refused, immediately.
        let addr: SocketAddr = "127.0.0.1:9".parse().unwrap();
        let tier = RemoteTier::new(
            RemoteTierConfig {
                node_id: "a".to_string(),
                peers: vec![PeerSpec {
                    node_id: "b".to_string(),
                    addr,
                }],
                fetch_timeout: Duration::from_millis(50),
                retries: 0,
                failure_threshold: 2,
                failure_cooldown: Duration::from_secs(60),
                ..RemoteTierConfig::default()
            },
            &Telemetry::disabled(),
        );
        // Some key must be owned by b; find one.
        let key = (0..1000)
            .map(|i| format!("obj/{i}"))
            .find(|k| tier.is_remote(k))
            .expect("two-node ring leaves b some keys");
        assert!(tier.fetch(&key).is_none(), "refused connect degrades");
        assert!(tier.fetch(&key).is_none());
        assert_eq!(tier.peers_down(), 1, "breaker opened after 2 failures");
        // While down, fetches skip the peer entirely (still None).
        assert!(tier.fetch(&key).is_none());
    }

    /// Concurrent fetches for one key ride a single RPC: the leader
    /// times out against a mute owner once, the followers coalesce onto
    /// its flight and adopt the outcome without dialing.
    #[test]
    fn concurrent_fetches_coalesce_behind_one_rpc() {
        // A listener that accepts connections but never answers: the
        // leader's RPC parks on the io timeout, giving the followers a
        // wide window to join the flight.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let telemetry = Telemetry::new(sand_telemetry::TelemetryConfig::default());
        let tier = Arc::new(RemoteTier::new(
            RemoteTierConfig {
                node_id: "a".to_string(),
                peers: vec![PeerSpec {
                    node_id: "b".to_string(),
                    addr,
                }],
                fetch_timeout: Duration::from_millis(400),
                retries: 0,
                failure_threshold: 100,
                ..RemoteTierConfig::default()
            },
            &telemetry,
        ));
        let key = (0..1000)
            .map(|i| format!("obj/{i}"))
            .find(|k| tier.is_remote(k))
            .expect("two-node ring leaves b some keys");
        let followers = 3;
        std::thread::scope(|s| {
            let t = Arc::clone(&tier);
            let k = key.clone();
            s.spawn(move || assert!(t.fetch(&k).is_none()));
            // Let the leader claim the flight and park on the wire.
            std::thread::sleep(Duration::from_millis(100));
            for _ in 0..followers {
                let t = Arc::clone(&tier);
                let k = key.clone();
                s.spawn(move || assert!(t.fetch(&k).is_none()));
            }
        });
        let snap = telemetry.snapshot().unwrap();
        assert_eq!(
            snap.counter("net.fetch_coalesced"),
            Some(followers),
            "every follower must coalesce"
        );
        assert_eq!(
            snap.counter("net.fetch_errors"),
            Some(1),
            "exactly one RPC went to the mute owner"
        );
        drop(listener);
    }
}
