//! Consistent-hash placement: which node owns which object key.
//!
//! Generalizes the store's in-process shard map to the cluster: every
//! object key hashes onto a ring of virtual nodes, and the first vnode at
//! or clockwise of the key's hash names the owner. Properties the rest of
//! the system leans on:
//!
//! - **Deterministic and order-invariant.** Node ids are sorted and
//!   deduplicated at construction, so every node that builds a ring over
//!   the same membership — in any order — routes every key identically.
//!   That is what lets a node answer "am I the owner?" locally, with no
//!   coordination service.
//! - **Stable under membership change.** With `vnodes` virtual nodes per
//!   physical node, removing one node reassigns only its ~1/N share of
//!   the key space; everything else keeps its owner (pinned by a unit
//!   test below).
//!
//! The ring does **not** track liveness — a dead node keeps its ring
//! share so that keys do not silently migrate during an outage. Liveness
//! is the remote tier's job: a fetch routed to a down owner falls back to
//! local materialization.

use std::fmt;

/// FNV-1a (64-bit) through a splitmix64 finalizer. Stable across
/// platforms and releases — ring placement is part of the cluster
/// contract, so the hash must never depend on `DefaultHasher`'s
/// unspecified internals. The finalizer matters: raw FNV of the
/// near-identical `"{node}#{vnode}"` strings clusters badly on the
/// ring, and the avalanche pass spreads vnodes evenly.
fn fnv1a64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d0_49bb_1331_11eb);
    h ^ (h >> 31)
}

/// The consistent-hash ring over node ids.
#[derive(Clone)]
pub struct Placement {
    /// Sorted `(vnode_hash, node_index)` points.
    ring: Vec<(u64, usize)>,
    /// Sorted, deduplicated node ids; `ring` indexes into this.
    nodes: Vec<String>,
}

impl fmt::Debug for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Placement")
            .field("nodes", &self.nodes)
            .field("vnodes", &(self.ring.len() / self.nodes.len().max(1)))
            .finish()
    }
}

impl Placement {
    /// Builds a ring over `nodes` with `vnodes` virtual nodes each
    /// (clamped to at least 1). Duplicate ids collapse; id order is
    /// irrelevant.
    pub fn new<S: AsRef<str>>(nodes: &[S], vnodes: usize) -> Self {
        let mut ids: Vec<String> = nodes.iter().map(|s| s.as_ref().to_string()).collect();
        ids.sort();
        ids.dedup();
        let vnodes = vnodes.max(1);
        let mut ring = Vec::with_capacity(ids.len() * vnodes);
        for (i, id) in ids.iter().enumerate() {
            for v in 0..vnodes {
                ring.push((fnv1a64(format!("{id}#{v}").as_bytes()), i));
            }
        }
        // Sort by hash with the node index as a deterministic tie-break
        // (two vnodes colliding on a hash must still order identically
        // on every node).
        ring.sort_unstable();
        Self { ring, nodes: ids }
    }

    /// Number of distinct nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The sorted node ids the ring was built over.
    pub fn nodes(&self) -> &[String] {
        &self.nodes
    }

    /// The node that owns `key`: the first vnode at or clockwise of the
    /// key's hash. `None` only for an empty ring.
    pub fn owner_of(&self, key: &str) -> Option<&str> {
        if self.ring.is_empty() {
            return None;
        }
        let h = fnv1a64(key.as_bytes());
        let idx = self.ring.partition_point(|&(vh, _)| vh < h);
        let (_, node) = self.ring[if idx == self.ring.len() { 0 } else { idx }];
        Some(&self.nodes[node])
    }

    /// Whether `node` owns `key`.
    pub fn is_owner(&self, key: &str, node: &str) -> bool {
        self.owner_of(key) == Some(node)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn empty_ring_owns_nothing() {
        let p = Placement::new::<&str>(&[], 64);
        assert!(p.is_empty());
        assert_eq!(p.owner_of("k"), None);
    }

    #[test]
    fn single_node_owns_everything() {
        let p = Placement::new(&["a"], 64);
        for i in 0..100 {
            assert_eq!(p.owner_of(&format!("key/{i}")), Some("a"));
        }
    }

    #[test]
    fn node_order_is_irrelevant() {
        let a = Placement::new(&["n0", "n1", "n2"], 64);
        let b = Placement::new(&["n2", "n0", "n1", "n0"], 64);
        for i in 0..500 {
            let k = format!("obj/{i}/frame{}", i * 7);
            assert_eq!(a.owner_of(&k), b.owner_of(&k));
        }
    }

    #[test]
    fn load_spreads_across_nodes() {
        let p = Placement::new(&["n0", "n1", "n2"], 64);
        let mut counts = [0usize; 3];
        for i in 0..3000 {
            match p.owner_of(&format!("obj/{i}")).unwrap() {
                "n0" => counts[0] += 1,
                "n1" => counts[1] += 1,
                "n2" => counts[2] += 1,
                other => panic!("unknown owner {other}"),
            }
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                c > 3000 / 3 / 3,
                "node {i} got {c}/3000 keys — ring badly unbalanced"
            );
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_keys() {
        let full = Placement::new(&["n0", "n1", "n2"], 64);
        let without = Placement::new(&["n0", "n1"], 64);
        for i in 0..1000 {
            let k = format!("obj/{i}");
            let before = full.owner_of(&k).unwrap();
            if before != "n2" {
                assert_eq!(
                    without.owner_of(&k),
                    Some(before),
                    "key {k} moved although its owner stayed in the ring"
                );
            }
        }
    }
}
