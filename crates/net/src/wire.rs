//! The `sand-net` wire format: length-prefixed, checksummed frames.
//!
//! Every message — request or response — travels as one frame:
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload]
//! ```
//!
//! The CRC is IEEE CRC-32 over the payload bytes (the same polynomial the
//! value log commits last on disk), so a truncated or bit-flipped frame is
//! rejected before any field is parsed — the receiver never sees a torn
//! message. `payload_len` is validated against the receiver's
//! `max_frame_bytes` *before* allocating, so a corrupt length prefix
//! cannot drive an allocation.
//!
//! The payload is a tag byte followed by fixed-order fields: integers are
//! little-endian, strings and byte blobs are `u32` length + bytes,
//! `Option<u64>` is a presence byte + value. Decoding demands exact
//! consumption — trailing bytes are a protocol error, not slack.
//!
//! Requests carry the Table-2 verb set (`Open`/`Read`/`GetXattr`/`Close`)
//! plus the inter-node object-exchange verbs (`Put`/`Fetch`/`Stat`).
//! `Read` is positional (explicit `offset`) rather than cursor-based so a
//! retried read on a fresh connection is idempotent.

use crate::{NetError, Result};
use std::io::{Read, Write};

/// Hard ceiling a frame may never exceed regardless of configuration;
/// guards against a corrupt or hostile length prefix.
pub const ABSOLUTE_MAX_FRAME: u32 = 256 << 20;

/// Error codes carried by [`Response::Error`]. They mirror
/// `sand_vfs::VfsError` so a remote VFS error round-trips losslessly.
pub mod err_code {
    /// The path does not parse or materialize as any view (ENOENT).
    pub const NO_SUCH_VIEW: u8 = 1;
    /// Provider or store I/O failure (EIO).
    pub const IO: u8 = 2;
    /// Operation on an fd this connection never opened (EBADF).
    pub const BAD_FD: u8 = 3;
    /// Unknown extended attribute (ENODATA).
    pub const NO_ATTR: u8 = 4;
    /// The peer sent a frame this side could not parse.
    pub const PROTOCOL: u8 = 5;
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), nibble-table variant
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 16] = [
    0x0000_0000,
    0x1db7_1064,
    0x3b6e_20c8,
    0x26d9_30ac,
    0x76dc_4190,
    0x6b6b_51f4,
    0x4db2_6158,
    0x5005_713c,
    0xedb8_8320,
    0xf00f_9344,
    0xd6d6_a3e8,
    0xcb61_b38c,
    0x9b64_c2b0,
    0x86d3_d2d4,
    0xa00a_e278,
    0xbdbd_f21c,
];

/// IEEE CRC-32 over `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 4) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0x0f) as usize];
        crc = (crc >> 4) ^ CRC_TABLE[((crc ^ (u32::from(b) >> 4)) & 0x0f) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------------

/// Writes one frame (header + payload) to `w`.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<()> {
    let len = u32::try_from(payload.len()).map_err(|_| NetError::Protocol {
        what: format!("frame payload of {} bytes overflows u32", payload.len()),
    })?;
    if len > ABSOLUTE_MAX_FRAME {
        return Err(NetError::Protocol {
            what: format!("frame payload of {len} bytes exceeds absolute cap"),
        });
    }
    let mut header = [0u8; 8];
    header[..4].copy_from_slice(&len.to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, enforcing `max_frame_bytes` before
/// allocating and rejecting any payload whose checksum does not match.
///
/// Returns `Ok(None)` on clean EOF at a frame boundary (the peer closed
/// between messages); EOF anywhere inside a frame is a protocol error —
/// a torn frame is never surfaced as data.
pub fn read_frame<R: Read>(r: &mut R, max_frame_bytes: u32) -> Result<Option<Vec<u8>>> {
    let mut header = [0u8; 8];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        8 => {}
        n => {
            return Err(NetError::Protocol {
                what: format!("connection closed mid-header ({n}/8 bytes)"),
            })
        }
    }
    let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
    let crc = u32::from_le_bytes([header[4], header[5], header[6], header[7]]);
    let cap = max_frame_bytes.min(ABSOLUTE_MAX_FRAME);
    if len > cap {
        return Err(NetError::Protocol {
            what: format!("frame of {len} bytes exceeds cap of {cap}"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    let got = read_full(r, &mut payload)?;
    if got != payload.len() {
        return Err(NetError::Protocol {
            what: format!("connection closed mid-frame ({got}/{len} bytes)"),
        });
    }
    if crc32(&payload) != crc {
        return Err(NetError::Protocol {
            what: "frame checksum mismatch".to_string(),
        });
    }
    Ok(Some(payload))
}

/// Reads until `buf` is full or EOF; returns the byte count read.
fn read_full<R: Read>(r: &mut R, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------------

/// A client → server message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Open a view path; the server materializes it and returns an fd
    /// scoped to this connection.
    Open { path: String },
    /// Positional read of `len` bytes at `offset` from an open view.
    Read { fd: u64, offset: u64, len: u32 },
    /// Extended attribute of an open view.
    GetXattr { fd: u64, name: String },
    /// Release a descriptor (the paper's `close()` semantics).
    Close { fd: u64 },
    /// Store an object in the serving node's object store (owner push).
    Put {
        key: String,
        deadline: Option<u64>,
        future_uses: u32,
        bytes: Vec<u8>,
    },
    /// Fetch a cached object by key from the serving node's store.
    Fetch { key: String },
    /// Probe an object's presence and tier without moving bytes.
    Stat { key: String },
}

/// A server → client message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// `Open` succeeded: the fd and the view's total byte size.
    Opened { fd: u64, size: u64 },
    /// `Read` result; `eof` is set when the read reached the view's end.
    Data { bytes: Vec<u8>, eof: bool },
    /// `GetXattr` result.
    Xattr { value: String },
    /// `Close` acknowledged.
    Closed,
    /// `Put` acknowledged.
    PutOk,
    /// `Fetch` hit: the object's bytes.
    Hit { bytes: Vec<u8> },
    /// `Fetch`/`Stat` miss: the key is not cached on this node.
    Miss,
    /// `Stat` result. `tier` is 1 (memory) or 2 (disk) when present, 0
    /// otherwise; `size` is the byte length when cheaply known (memory
    /// tier), else 0.
    Stat { present: bool, tier: u8, size: u64 },
    /// The operation failed remotely; `code` is one of [`err_code`].
    Error { code: u8, what: String },
}

const TAG_OPEN: u8 = 1;
const TAG_READ: u8 = 2;
const TAG_GETXATTR: u8 = 3;
const TAG_CLOSE: u8 = 4;
const TAG_PUT: u8 = 5;
const TAG_FETCH: u8 = 6;
const TAG_STAT: u8 = 7;

const TAG_OPENED: u8 = 128;
const TAG_DATA: u8 = 129;
const TAG_XATTR: u8 = 130;
const TAG_CLOSED: u8 = 131;
const TAG_PUT_OK: u8 = 132;
const TAG_HIT: u8 = 133;
const TAG_MISS: u8 = 134;
const TAG_STAT_R: u8 = 135;
const TAG_ERROR: u8 = 136;

struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn new(tag: u8) -> Self {
        Self { buf: vec![tag] }
    }
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(v) => {
                self.buf.push(1);
                self.u64(v);
            }
            None => self.buf.push(0),
        }
    }
    fn bytes(&mut self, v: &[u8]) -> Result<()> {
        let len = u32::try_from(v.len()).map_err(|_| NetError::Protocol {
            what: "field longer than u32".to_string(),
        })?;
        self.u32(len);
        self.buf.extend_from_slice(v);
        Ok(())
    }
    fn str(&mut self, v: &str) -> Result<()> {
        self.bytes(v.as_bytes())
    }
}

struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn short(&self, what: &str) -> NetError {
        NetError::Protocol {
            what: format!("truncated field: {what}"),
        }
    }
    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.short(what))?;
        if end > self.buf.len() {
            return Err(self.short(what));
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self, what: &str) -> Result<u8> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &str) -> Result<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self, what: &str) -> Result<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
    fn opt_u64(&mut self, what: &str) -> Result<Option<u64>> {
        match self.u8(what)? {
            0 => Ok(None),
            1 => Ok(Some(self.u64(what)?)),
            f => Err(NetError::Protocol {
                what: format!("bad presence flag {f} for {what}"),
            }),
        }
    }
    fn bool(&mut self, what: &str) -> Result<bool> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            f => Err(NetError::Protocol {
                what: format!("bad bool {f} for {what}"),
            }),
        }
    }
    fn bytes(&mut self, what: &str) -> Result<Vec<u8>> {
        let len = self.u32(what)? as usize;
        Ok(self.take(len, what)?.to_vec())
    }
    fn str(&mut self, what: &str) -> Result<String> {
        let raw = self.bytes(what)?;
        String::from_utf8(raw).map_err(|_| NetError::Protocol {
            what: format!("non-UTF-8 string for {what}"),
        })
    }
    fn finish(self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(NetError::Protocol {
                what: format!("{} trailing bytes after message", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

impl Request {
    /// Serializes to a payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut e;
        match self {
            Request::Open { path } => {
                e = Enc::new(TAG_OPEN);
                e.str(path)?;
            }
            Request::Read { fd, offset, len } => {
                e = Enc::new(TAG_READ);
                e.u64(*fd);
                e.u64(*offset);
                e.u32(*len);
            }
            Request::GetXattr { fd, name } => {
                e = Enc::new(TAG_GETXATTR);
                e.u64(*fd);
                e.str(name)?;
            }
            Request::Close { fd } => {
                e = Enc::new(TAG_CLOSE);
                e.u64(*fd);
            }
            Request::Put {
                key,
                deadline,
                future_uses,
                bytes,
            } => {
                e = Enc::new(TAG_PUT);
                e.str(key)?;
                e.opt_u64(*deadline);
                e.u32(*future_uses);
                e.bytes(bytes)?;
            }
            Request::Fetch { key } => {
                e = Enc::new(TAG_FETCH);
                e.str(key)?;
            }
            Request::Stat { key } => {
                e = Enc::new(TAG_STAT);
                e.str(key)?;
            }
        }
        Ok(e.buf)
    }

    /// Parses a payload; demands exact consumption.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Dec::new(payload);
        let tag = d.u8("request tag")?;
        let req = match tag {
            TAG_OPEN => Request::Open {
                path: d.str("open.path")?,
            },
            TAG_READ => Request::Read {
                fd: d.u64("read.fd")?,
                offset: d.u64("read.offset")?,
                len: d.u32("read.len")?,
            },
            TAG_GETXATTR => Request::GetXattr {
                fd: d.u64("getxattr.fd")?,
                name: d.str("getxattr.name")?,
            },
            TAG_CLOSE => Request::Close {
                fd: d.u64("close.fd")?,
            },
            TAG_PUT => Request::Put {
                key: d.str("put.key")?,
                deadline: d.opt_u64("put.deadline")?,
                future_uses: d.u32("put.future_uses")?,
                bytes: d.bytes("put.bytes")?,
            },
            TAG_FETCH => Request::Fetch {
                key: d.str("fetch.key")?,
            },
            TAG_STAT => Request::Stat {
                key: d.str("stat.key")?,
            },
            t => {
                return Err(NetError::Protocol {
                    what: format!("unknown request tag {t}"),
                })
            }
        };
        d.finish()?;
        Ok(req)
    }
}

impl Response {
    /// Serializes to a payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut e;
        match self {
            Response::Opened { fd, size } => {
                e = Enc::new(TAG_OPENED);
                e.u64(*fd);
                e.u64(*size);
            }
            Response::Data { bytes, eof } => {
                e = Enc::new(TAG_DATA);
                e.u8(u8::from(*eof));
                e.bytes(bytes)?;
            }
            Response::Xattr { value } => {
                e = Enc::new(TAG_XATTR);
                e.str(value)?;
            }
            Response::Closed => e = Enc::new(TAG_CLOSED),
            Response::PutOk => e = Enc::new(TAG_PUT_OK),
            Response::Hit { bytes } => {
                e = Enc::new(TAG_HIT);
                e.bytes(bytes)?;
            }
            Response::Miss => e = Enc::new(TAG_MISS),
            Response::Stat {
                present,
                tier,
                size,
            } => {
                e = Enc::new(TAG_STAT_R);
                e.u8(u8::from(*present));
                e.u8(*tier);
                e.u64(*size);
            }
            Response::Error { code, what } => {
                e = Enc::new(TAG_ERROR);
                e.u8(*code);
                e.str(what)?;
            }
        }
        Ok(e.buf)
    }

    /// Parses a payload; demands exact consumption.
    pub fn decode(payload: &[u8]) -> Result<Self> {
        let mut d = Dec::new(payload);
        let tag = d.u8("response tag")?;
        let resp = match tag {
            TAG_OPENED => Response::Opened {
                fd: d.u64("opened.fd")?,
                size: d.u64("opened.size")?,
            },
            TAG_DATA => Response::Data {
                eof: d.bool("data.eof")?,
                bytes: d.bytes("data.bytes")?,
            },
            TAG_XATTR => Response::Xattr {
                value: d.str("xattr.value")?,
            },
            TAG_CLOSED => Response::Closed,
            TAG_PUT_OK => Response::PutOk,
            TAG_HIT => Response::Hit {
                bytes: d.bytes("hit.bytes")?,
            },
            TAG_MISS => Response::Miss,
            TAG_STAT_R => Response::Stat {
                present: d.bool("stat.present")?,
                tier: d.u8("stat.tier")?,
                size: d.u64("stat.size")?,
            },
            TAG_ERROR => Response::Error {
                code: d.u8("error.code")?,
                what: d.str("error.what")?,
            },
            t => {
                return Err(NetError::Protocol {
                    what: format!("unknown response tag {t}"),
                })
            }
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn roundtrip_req(req: Request) {
        let enc = req.encode().unwrap();
        assert_eq!(Request::decode(&enc).unwrap(), req);
    }

    fn roundtrip_resp(resp: Response) {
        let enc = resp.encode().unwrap();
        assert_eq!(Response::decode(&enc).unwrap(), resp);
    }

    #[test]
    fn messages_roundtrip() {
        roundtrip_req(Request::Open {
            path: "/train/v0.mp4".into(),
        });
        roundtrip_req(Request::Read {
            fd: 3,
            offset: 4096,
            len: 65536,
        });
        roundtrip_req(Request::GetXattr {
            fd: 3,
            name: "user.sand.label".into(),
        });
        roundtrip_req(Request::Close { fd: 3 });
        roundtrip_req(Request::Put {
            key: "obj/7".into(),
            deadline: Some(42),
            future_uses: 2,
            bytes: vec![1, 2, 3],
        });
        roundtrip_req(Request::Put {
            key: String::new(),
            deadline: None,
            future_uses: 0,
            bytes: Vec::new(),
        });
        roundtrip_req(Request::Fetch {
            key: "obj/7".into(),
        });
        roundtrip_req(Request::Stat {
            key: "obj/7".into(),
        });
        roundtrip_resp(Response::Opened { fd: 3, size: 9000 });
        roundtrip_resp(Response::Data {
            bytes: vec![0; 17],
            eof: true,
        });
        roundtrip_resp(Response::Xattr {
            value: "cat".into(),
        });
        roundtrip_resp(Response::Closed);
        roundtrip_resp(Response::PutOk);
        roundtrip_resp(Response::Hit { bytes: vec![9; 5] });
        roundtrip_resp(Response::Miss);
        roundtrip_resp(Response::Stat {
            present: true,
            tier: 1,
            size: 123,
        });
        roundtrip_resp(Response::Error {
            code: err_code::NO_SUCH_VIEW,
            what: "nope".into(),
        });
    }

    #[test]
    fn frame_roundtrips_through_a_buffer() {
        let payload = Request::Fetch { key: "k".into() }.encode().unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        let mut r = &buf[..];
        let got = read_frame(&mut r, 1 << 20).unwrap().unwrap();
        assert_eq!(got, payload);
        // Clean EOF at the boundary.
        assert!(read_frame(&mut r, 1 << 20).unwrap().is_none());
    }

    #[test]
    fn oversized_frame_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        let err = read_frame(&mut &buf[..], 1 << 20).unwrap_err();
        assert!(matches!(err, NetError::Protocol { .. }));
    }

    #[test]
    fn bit_flip_is_rejected() {
        let payload = Request::Open {
            path: "/t/v.mp4".into(),
        }
        .encode()
        .unwrap();
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        for i in 0..buf.len() {
            let mut flipped = buf.clone();
            flipped[i] ^= 0x10;
            let framed = read_frame(&mut &flipped[..], 1 << 20);
            let torn = match framed {
                Err(NetError::Protocol { .. }) => true,
                Ok(Some(p)) => {
                    // A flip confined to the length prefix can still frame
                    // (shorter/longer read) but must then fail the CRC or
                    // the decoder — never parse back to the original.
                    Request::decode(&p).is_err()
                }
                _ => true,
            };
            assert!(torn, "bit flip at byte {i} survived");
        }
    }

    #[test]
    fn trailing_bytes_are_a_protocol_error() {
        let mut enc = Request::Close { fd: 3 }.encode().unwrap();
        enc.push(0);
        assert!(matches!(
            Request::decode(&enc),
            Err(NetError::Protocol { .. })
        ));
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The canonical IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }
}
