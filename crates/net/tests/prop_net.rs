//! Property tests for the `sand-net` wire protocol and placement ring.
//!
//! The protocol contract under test: any message round-trips through a
//! frame bit-identically; a frame truncated *anywhere* decodes to a
//! clean protocol error or clean EOF (never a torn message); any
//! single-bit flip in a framed message is rejected by the checksum
//! (never silently decoded). The ring contract: ownership is a pure
//! function of (key, node set) — independent of node order — and every
//! key has an owner on a non-empty ring.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_net::wire::{read_frame, write_frame, Request, Response};
use sand_net::{NetError, Placement};

const MAX_FRAME: u32 = 64 << 20;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        ".{0,64}".prop_map(|path| Request::Open { path }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(fd, offset, len)| Request::Read {
            fd,
            offset,
            len
        }),
        (any::<u64>(), ".{0,32}").prop_map(|(fd, name)| Request::GetXattr { fd, name }),
        any::<u64>().prop_map(|fd| Request::Close { fd }),
        (
            ".{0,64}",
            (any::<bool>(), any::<u64>()).prop_map(|(some, v)| some.then_some(v)),
            any::<u32>(),
            proptest::collection::vec(any::<u8>(), 0..2048),
        )
            .prop_map(|(key, deadline, future_uses, bytes)| Request::Put {
                key,
                deadline,
                future_uses,
                bytes,
            }),
        ".{0,64}".prop_map(|key| Request::Fetch { key }),
        ".{0,64}".prop_map(|key| Request::Stat { key }),
    ]
}

fn arb_response() -> impl Strategy<Value = Response> {
    prop_oneof![
        (any::<u64>(), any::<u64>()).prop_map(|(fd, size)| Response::Opened { fd, size }),
        (
            proptest::collection::vec(any::<u8>(), 0..2048),
            any::<bool>()
        )
            .prop_map(|(bytes, eof)| Response::Data { bytes, eof }),
        ".{0,64}".prop_map(|value| Response::Xattr { value }),
        Just(Response::Closed),
        Just(Response::PutOk),
        proptest::collection::vec(any::<u8>(), 0..2048).prop_map(|bytes| Response::Hit { bytes }),
        Just(Response::Miss),
        (any::<bool>(), any::<u8>(), any::<u64>()).prop_map(|(present, tier, size)| {
            Response::Stat {
                present,
                tier,
                size,
            }
        }),
        (any::<u8>(), ".{0,64}").prop_map(|(code, what)| Response::Error { code, what }),
    ]
}

/// Frames `payload` into an in-memory buffer.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::new();
    write_frame(&mut buf, payload).unwrap();
    buf
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Every request variant round-trips through encode/frame/decode
    /// bit-identically, for arbitrary payloads.
    #[test]
    fn request_roundtrips(req in arb_request()) {
        let framed = frame(&req.encode().unwrap());
        let payload = read_frame(&mut framed.as_slice(), MAX_FRAME)
            .unwrap()
            .expect("one whole frame");
        prop_assert_eq!(Request::decode(&payload).unwrap(), req);
    }

    /// Every response variant round-trips the same way.
    #[test]
    fn response_roundtrips(resp in arb_response()) {
        let framed = frame(&resp.encode().unwrap());
        let payload = read_frame(&mut framed.as_slice(), MAX_FRAME)
            .unwrap()
            .expect("one whole frame");
        prop_assert_eq!(Response::decode(&payload).unwrap(), resp);
    }

    /// A frame truncated at any byte boundary yields a clean outcome:
    /// truncation to zero bytes is a clean EOF (`Ok(None)`), anything
    /// else mid-frame is a protocol error — never a torn message.
    #[test]
    fn truncation_anywhere_is_clean(req in arb_request(), frac in 0.0f64..1.0) {
        let framed = frame(&req.encode().unwrap());
        let cut = ((framed.len() as f64) * frac) as usize;
        prop_assume!(cut < framed.len());
        match read_frame(&mut &framed[..cut], MAX_FRAME) {
            Ok(None) => prop_assert_eq!(cut, 0, "EOF is only clean at the frame boundary"),
            Ok(Some(_)) => prop_assert!(false, "torn read decoded as a whole frame"),
            Err(NetError::Protocol { .. } | NetError::Io { .. }) => {}
            Err(e) => prop_assert!(false, "unexpected error class: {e}"),
        }
    }

    /// Flipping any single bit of a framed message is rejected — by the
    /// checksum for payload damage, by header validation for length/CRC
    /// damage — and never decodes to a different message.
    #[test]
    fn single_bit_flip_never_decodes(resp in arb_response(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let clean = frame(&resp.encode().unwrap());
        let mut damaged = clean.clone();
        let pos = ((damaged.len() as f64) * pos_frac) as usize % damaged.len();
        damaged[pos] ^= 1 << bit;
        match read_frame(&mut damaged.as_slice(), MAX_FRAME) {
            // A flip in the length prefix can make the frame short (a
            // read past the buffer = protocol error) — fine. What must
            // never happen is a *successful* decode of different bytes.
            Err(_) | Ok(None) => {}
            Ok(Some(payload)) => {
                prop_assert_eq!(
                    Response::decode(&payload).unwrap(),
                    resp,
                    "bit flip decoded to a different message"
                );
                // Reaching here means the flip landed in the length
                // prefix yet still framed the same payload — impossible
                // with an exact-length read.
                prop_assert!(false, "damaged frame decoded cleanly");
            }
        }
    }

    /// Ring ownership is independent of the order nodes are listed in,
    /// and total: every key has an owner on a non-empty ring.
    #[test]
    fn placement_is_order_invariant_and_total(
        mut nodes in proptest::collection::vec("[a-z]{1,8}", 1..6),
        keys in proptest::collection::vec(".{0,32}", 1..32),
        vnodes in 1usize..64,
    ) {
        let forward = Placement::new(&nodes, vnodes);
        nodes.reverse();
        let reversed = Placement::new(&nodes, vnodes);
        for key in &keys {
            let owner = forward.owner_of(key).expect("non-empty ring owns every key");
            prop_assert_eq!(reversed.owner_of(key), Some(owner));
            prop_assert!(nodes.iter().any(|n| n == owner));
        }
    }
}
