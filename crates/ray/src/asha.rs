//! ASHA hyperparameter search (Fig. 12's workload).
//!
//! Asynchronous Successive Halving: trials are sampled from a search
//! space over optimizer kind / learning rate / weight decay / betas, run
//! rung by rung (each rung multiplies the epoch budget by `eta`), and
//! only the top `1/eta` fraction by loss advances. All trials share the
//! same dataset and — in SAND mode — the same engine, so every trial's
//! identical preprocessing merges into one set of materialized objects.

use crate::runner::{run_jobs, JobSpec, RunnerEnv};
use crate::{RayError, Result};
use sand_graph::coordinated_draw;
use sand_sim::{GpuSim, ModelProfile};
use sand_train::model::{OptimizerKind, SgdConfig};
use sand_train::RunReport;
use std::sync::Arc;
use std::time::Duration;

/// Search configuration.
#[derive(Debug, Clone)]
pub struct AshaConfig {
    /// Number of sampled trials.
    pub trials: usize,
    /// Reduction factor between rungs (paper uses the ASHA default 4;
    /// small experiments use 2).
    pub eta: usize,
    /// Epoch budget of the first rung.
    pub min_epochs: u64,
    /// Maximum total epochs any trial may reach.
    pub max_epochs: u64,
    /// Seed for hyperparameter sampling.
    pub seed: u64,
}

impl Default for AshaConfig {
    fn default() -> Self {
        AshaConfig {
            trials: 8,
            eta: 2,
            min_epochs: 1,
            max_epochs: 4,
            seed: 0xa5a,
        }
    }
}

/// One trial's final standing.
#[derive(Debug, Clone)]
pub struct TrialResult {
    /// Trial index.
    pub trial: usize,
    /// Sampled optimizer configuration.
    pub opt: SgdConfig,
    /// Epochs the trial completed before stopping or finishing.
    pub epochs_run: u64,
    /// Final mean loss over the trial's last rung.
    pub final_loss: f32,
    /// Whether the trial survived to the last rung.
    pub finished: bool,
}

/// Search outcome.
#[derive(Debug, Clone)]
pub struct AshaOutcome {
    /// All trials, in index order.
    pub trials: Vec<TrialResult>,
    /// Index of the winning trial.
    pub best: usize,
    /// Wall time of the whole search.
    pub wall: Duration,
    /// Mean GPU utilization across the search GPUs.
    pub utilization: f64,
    /// All per-rung job reports (for energy/op accounting).
    pub reports: Vec<RunReport>,
}

/// Samples the hyperparameter space (optimizer type and hyperparameters,
/// as in the paper's setup).
fn sample_config(seed: u64, trial: u64) -> SgdConfig {
    let u = |salt: u64| coordinated_draw(seed, trial, 0, 0, 0, salt);
    let kind = match (u(1) * 3.0) as usize {
        0 => OptimizerKind::Sgd,
        1 => OptimizerKind::Momentum,
        _ => OptimizerKind::Adam,
    };
    SgdConfig {
        kind,
        // Log-uniform learning rate in [1e-3, 1].
        lr: (10.0f32).powf(-3.0 + 3.0 * u(2) as f32),
        weight_decay: (10.0f32).powf(-5.0 + 3.0 * u(3) as f32),
        beta1: 0.8 + 0.19 * u(4) as f32,
        beta2: 0.99 + 0.0099 * u(5) as f32,
    }
}

/// Mean of the final quarter of a loss trace.
fn tail_loss(losses: &[f32]) -> f32 {
    if losses.is_empty() {
        return f32::INFINITY;
    }
    let n = (losses.len() / 4).max(1);
    let tail = &losses[losses.len() - n..];
    tail.iter().sum::<f32>() / n as f32
}

/// Runs the search. Rungs execute as waves over the runner's GPUs; the
/// bottom `1 - 1/eta` of each rung stops early (ASHA's promotion rule).
pub fn run_asha(
    config: &AshaConfig,
    base_task: &sand_config::TaskConfig,
    profile: &ModelProfile,
    gpus: &[Arc<GpuSim>],
    env: &RunnerEnv,
    classes: usize,
) -> Result<AshaOutcome> {
    if config.trials == 0 || config.eta < 2 {
        return Err(RayError::State {
            what: "need trials >= 1 and eta >= 2".into(),
        });
    }
    let started = std::time::Instant::now();
    let mut alive: Vec<usize> = (0..config.trials).collect();
    let mut results: Vec<TrialResult> = (0..config.trials)
        .map(|t| TrialResult {
            trial: t,
            opt: sample_config(config.seed, t as u64),
            epochs_run: 0,
            final_loss: f32::INFINITY,
            finished: false,
        })
        .collect();
    let mut all_reports = Vec::new();
    let mut rung_start = 0u64;
    let mut rung_len = config.min_epochs;
    while !alive.is_empty() && rung_start < config.max_epochs {
        let rung_end = (rung_start + rung_len).min(config.max_epochs);
        // Every surviving trial runs this rung's epoch span.
        let jobs: Vec<JobSpec> = alive
            .iter()
            .map(|&t| JobSpec {
                // All trials share the SAND task namespace: same tag means
                // the engine serves them the same views.
                name: base_task.tag.clone(),
                task: base_task.clone(),
                profile: profile.clone(),
                opt: results[t].opt,
                epochs: rung_start..rung_end,
                train_model: true,
                classes,
            })
            .collect();
        let reports = run_jobs(&jobs, gpus, env)?;
        for (&t, report) in alive.iter().zip(reports.iter()) {
            results[t].epochs_run = rung_end;
            results[t].final_loss = tail_loss(&report.losses);
        }
        all_reports.extend(reports);
        // Promote the top 1/eta.
        if rung_end >= config.max_epochs {
            for &t in &alive {
                results[t].finished = true;
            }
            break;
        }
        let mut ranked = alive.clone();
        ranked.sort_by(|&a, &b| {
            results[a]
                .final_loss
                .partial_cmp(&results[b].final_loss)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let keep = (ranked.len() / config.eta).max(1);
        alive = ranked[..keep].to_vec();
        rung_start = rung_end;
        rung_len *= config.eta as u64;
    }
    // The winner comes from the top rung: losses measured at different
    // epoch budgets are not comparable, so an early-stopped trial must
    // not outrank a finished one on its 1-epoch loss.
    let rank = |a: &TrialResult, b: &TrialResult| {
        (a.final_loss, std::cmp::Reverse(a.epochs_run))
            .partial_cmp(&(b.final_loss, std::cmp::Reverse(b.epochs_run)))
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    let best = results
        .iter()
        .enumerate()
        .filter(|(_, r)| r.finished)
        .min_by(|(_, a), (_, b)| rank(a, b))
        .or_else(|| {
            results
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| rank(a, b))
        })
        .map_or(0, |(i, _)| i);
    let utilization = gpus.iter().map(|g| g.utilization()).sum::<f64>() / gpus.len().max(1) as f64;
    Ok(AshaOutcome {
        trials: results,
        best,
        wall: started.elapsed(),
        utilization,
        reports: all_reports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LoaderKind;
    use sand_codec::{Dataset, DatasetSpec};
    use sand_config::parse_task_config;
    use sand_core::{EngineConfig, SandEngine};
    use sand_sim::{GpuSpec, PowerModel};

    const TASK: &str = r#"
dataset:
  tag: search
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
"#;

    fn dataset() -> Arc<Dataset> {
        Arc::new(
            Dataset::generate(&DatasetSpec {
                num_videos: 4,
                num_classes: 2,
                width: 32,
                height: 32,
                frames_per_video: 24,
                ..Default::default()
            })
            .unwrap(),
        )
    }

    fn tiny() -> ModelProfile {
        ModelProfile {
            name: "tiny".into(),
            iter_time: Duration::from_millis(2),
            ref_batch: 2,
            mem_bytes_per_pixel: 1.0,
            fixed_mem_bytes: 0,
        }
    }

    #[test]
    fn sampled_configs_are_diverse_and_deterministic() {
        let a = sample_config(1, 0);
        let b = sample_config(1, 1);
        assert_ne!(a.lr, b.lr);
        assert_eq!(sample_config(1, 0).lr, a.lr);
        for t in 0..16 {
            let c = sample_config(1, t);
            assert!((1e-3..=1.0).contains(&c.lr));
            assert!((0.8..=0.99).contains(&c.beta1));
        }
    }

    #[test]
    fn asha_prunes_and_finishes_with_sand_engine() {
        let ds = dataset();
        let task = parse_task_config(TASK).unwrap();
        let engine = SandEngine::new(
            EngineConfig {
                tasks: vec![task.clone()],
                total_epochs: 4,
                epochs_per_chunk: 2,
                seed: 7,
                ..Default::default()
            },
            Arc::clone(&ds),
        )
        .unwrap();
        engine.start().unwrap();
        let gpus: Vec<Arc<GpuSim>> = (0..2)
            .map(|_| Arc::new(GpuSim::new(GpuSpec::a100())))
            .collect();
        let env = RunnerEnv {
            dataset: ds,
            kind: LoaderKind::Sand,
            engine: Some(engine),
            seed: 7,
            workers_per_job: 2,
            vcpus: 4,
            gpu_spec: GpuSpec::a100(),
            power: PowerModel::default(),
            ideal_prestage: None,
        };
        let out = run_asha(
            &AshaConfig {
                trials: 4,
                eta: 2,
                min_epochs: 1,
                max_epochs: 4,
                seed: 3,
            },
            &task,
            &tiny(),
            &gpus,
            &env,
            2,
        )
        .unwrap();
        assert_eq!(out.trials.len(), 4);
        // Early stopping: not all trials ran the full budget.
        let full_runs = out.trials.iter().filter(|t| t.finished).count();
        assert!(full_runs >= 1);
        assert!(full_runs < 4, "ASHA must stop some trials early");
        let stopped = out.trials.iter().filter(|t| !t.finished).count();
        assert!(stopped >= 1);
        // The winner finished.
        assert!(out.trials[out.best].finished);
        assert!(out.utilization > 0.0);
    }

    #[test]
    fn invalid_asha_config_rejected() {
        let ds = dataset();
        let task = parse_task_config(TASK).unwrap();
        let gpus = vec![Arc::new(GpuSim::new(GpuSpec::a100()))];
        let env = RunnerEnv {
            dataset: ds,
            kind: LoaderKind::Ideal,
            engine: None,
            seed: 7,
            workers_per_job: 1,
            vcpus: 4,
            gpu_spec: GpuSpec::a100(),
            power: PowerModel::default(),
            ideal_prestage: None,
        };
        assert!(run_asha(
            &AshaConfig {
                trials: 0,
                ..Default::default()
            },
            &task,
            &tiny(),
            &gpus,
            &env,
            2
        )
        .is_err());
        assert!(run_asha(
            &AshaConfig {
                eta: 1,
                ..Default::default()
            },
            &task,
            &tiny(),
            &gpus,
            &env,
            2
        )
        .is_err());
    }
}
