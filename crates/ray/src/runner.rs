//! The job runner: placement of queued jobs onto simulated GPUs.

use crate::{RayError, Result};
use parking_lot::Mutex;
use sand_codec::Dataset;
use sand_config::TaskConfig;
use sand_core::SandEngine;
use sand_sim::{GpuSim, GpuSpec, ModelProfile, NvdecModel, PowerModel};
use sand_train::loaders::{
    IdealLoader, NaiveCacheLoader, OnDemandCpuLoader, OnDemandGpuLoader, SandLoader,
};
use sand_train::{Loader, RunReport, SgdConfig, TaskPlan, Trainer, TrainerConfig};
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Which loading strategy a job uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoaderKind {
    /// SAND engine (shared across jobs).
    Sand,
    /// On-demand CPU decode per iteration.
    OnDemandCpu,
    /// DALI-style GPU preprocessing.
    OnDemandGpu,
    /// Naive decoded-frame cache with the given byte budget.
    NaiveCache(u64),
    /// Pre-staged batches.
    Ideal,
}

/// One training job.
#[derive(Debug, Clone)]
pub struct JobSpec {
    /// Job name (used as the SAND task tag).
    pub name: String,
    /// The preprocessing pipeline.
    pub task: TaskConfig,
    /// GPU compute profile.
    pub profile: ModelProfile,
    /// Optimizer settings.
    pub opt: SgdConfig,
    /// Epoch span to run.
    pub epochs: Range<u64>,
    /// Whether to actually train the model (records losses).
    pub train_model: bool,
    /// Number of classes for the model.
    pub classes: usize,
}

/// Everything the runner needs to build a loader for a job.
pub struct RunnerEnv {
    /// The shared dataset.
    pub dataset: Arc<Dataset>,
    /// The loading strategy.
    pub kind: LoaderKind,
    /// Shared SAND engine (required when `kind` is `Sand`).
    pub engine: Option<SandEngine>,
    /// Plan seed (must match the engine's for apples-to-apples batches).
    pub seed: u64,
    /// CPU worker threads available per concurrent job.
    pub workers_per_job: usize,
    /// vCPUs per GPU for energy accounting.
    pub vcpus: usize,
    /// GPU spec (for the NVDEC model of the GPU baseline).
    pub gpu_spec: GpuSpec,
    /// Power model for energy accounting.
    pub power: PowerModel,
    /// Pre-staged batch pool for the Ideal strategy (built before the
    /// experiment clock starts; `None` falls back to staging per job).
    pub ideal_prestage: Option<Arc<std::collections::HashMap<(u64, u64), sand_train::LoadedBatch>>>,
}

/// Builds a loader for one job.
fn build_loader(env: &RunnerEnv, job: &JobSpec) -> Result<Box<dyn Loader>> {
    match env.kind {
        LoaderKind::Sand => {
            let engine = env.engine.as_ref().ok_or_else(|| RayError::State {
                what: "SAND loader kind requires a shared engine".into(),
            })?;
            Ok(Box::new(SandLoader::with_prefetch(
                engine.clone(),
                &job.name,
                job.epochs.clone(),
                2,
            )))
        }
        LoaderKind::OnDemandCpu => {
            let plan = Arc::new(TaskPlan::single_task(
                &job.task,
                &env.dataset,
                job.epochs.clone(),
                env.seed,
            )?);
            Ok(Box::new(OnDemandCpuLoader::new(
                Arc::clone(&env.dataset),
                plan,
                env.workers_per_job,
                2,
            )))
        }
        LoaderKind::OnDemandGpu => {
            let plan = Arc::new(TaskPlan::single_task(
                &job.task,
                &env.dataset,
                job.epochs.clone(),
                env.seed,
            )?);
            Ok(Box::new(OnDemandGpuLoader::new(
                Arc::clone(&env.dataset),
                plan,
                NvdecModel::new(env.gpu_spec.clone()),
                env.workers_per_job,
                2,
            )))
        }
        LoaderKind::NaiveCache(budget) => {
            let plan = Arc::new(TaskPlan::single_task(
                &job.task,
                &env.dataset,
                job.epochs.clone(),
                env.seed,
            )?);
            Ok(Box::new(NaiveCacheLoader::new(
                Arc::clone(&env.dataset),
                plan,
                env.workers_per_job,
                2,
                budget,
            )))
        }
        LoaderKind::Ideal => {
            if let Some(pool) = &env.ideal_prestage {
                return Ok(Box::new(IdealLoader::from_shared(Arc::clone(pool))));
            }
            let plan =
                TaskPlan::single_task(&job.task, &env.dataset, job.epochs.clone(), env.seed)?;
            Ok(Box::new(IdealLoader::new(&env.dataset, &plan)?))
        }
    }
}

/// Runs `jobs` over `gpus`, one worker thread per GPU, jobs claimed in
/// submission order. Returns per-job reports in job order.
pub fn run_jobs(jobs: &[JobSpec], gpus: &[Arc<GpuSim>], env: &RunnerEnv) -> Result<Vec<RunReport>> {
    if jobs.is_empty() || gpus.is_empty() {
        return Err(RayError::State {
            what: "need at least one job and one GPU".into(),
        });
    }
    let results: Mutex<Vec<Option<Result<RunReport>>>> =
        Mutex::new((0..jobs.len()).map(|_| None).collect());
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for gpu in gpus {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::SeqCst);
                if i >= jobs.len() {
                    break;
                }
                let job = &jobs[i];
                let outcome = (|| -> Result<RunReport> {
                    let mut loader = build_loader(env, job)?;
                    let iters = (env.dataset.len() as u64)
                        .div_ceil(job.task.sampling.videos_per_batch as u64);
                    let trainer = Trainer::new(Arc::clone(gpu), env.power);
                    let config = TrainerConfig {
                        profile: job.profile.clone(),
                        epochs: job.epochs.clone(),
                        iters_per_epoch: iters,
                        train_model: job.train_model,
                        classes: job.classes,
                        opt: job.opt,
                        vcpus: env.vcpus,
                    };
                    Ok(trainer.run(loader.as_mut(), &config)?)
                })();
                results.lock()[i] = Some(outcome);
            });
        }
    });
    results
        .into_inner()
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(RayError::State {
                    what: format!("job {i} was never run"),
                })
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_codec::DatasetSpec;
    use sand_config::parse_task_config;
    use std::time::Duration;

    pub(crate) const TASK: &str = r#"
dataset:
  tag: __NAME__
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
"#;

    pub(crate) fn task(name: &str) -> TaskConfig {
        parse_task_config(&TASK.replace("__NAME__", name)).unwrap()
    }

    pub(crate) fn dataset() -> Arc<Dataset> {
        Arc::new(
            Dataset::generate(&DatasetSpec {
                num_videos: 4,
                num_classes: 2,
                width: 32,
                height: 32,
                frames_per_video: 24,
                ..Default::default()
            })
            .unwrap(),
        )
    }

    pub(crate) fn tiny_profile(ms: u64) -> ModelProfile {
        ModelProfile {
            name: format!("tiny{ms}"),
            iter_time: Duration::from_millis(ms),
            ref_batch: 2,
            mem_bytes_per_pixel: 1.0,
            fixed_mem_bytes: 0,
        }
    }

    fn job(name: &str) -> JobSpec {
        JobSpec {
            name: name.into(),
            task: task(name),
            profile: tiny_profile(2),
            opt: SgdConfig::default(),
            epochs: 0..1,
            train_model: false,
            classes: 2,
        }
    }

    #[test]
    fn jobs_spread_across_gpus() {
        let ds = dataset();
        let gpus: Vec<Arc<GpuSim>> = (0..2)
            .map(|_| Arc::new(GpuSim::new(GpuSpec::a100())))
            .collect();
        let env = RunnerEnv {
            dataset: Arc::clone(&ds),
            kind: LoaderKind::OnDemandCpu,
            engine: None,
            seed: 7,
            workers_per_job: 2,
            vcpus: 4,
            gpu_spec: GpuSpec::a100(),
            power: PowerModel::default(),
            ideal_prestage: None,
        };
        let jobs: Vec<JobSpec> = (0..4).map(|i| job(&format!("j{i}"))).collect();
        let reports = run_jobs(&jobs, &gpus, &env).unwrap();
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert_eq!(r.iterations, 2);
        }
        // Both GPUs did work.
        assert!(gpus.iter().all(|g| g.iterations() > 0));
    }

    #[test]
    fn sand_kind_requires_engine() {
        let ds = dataset();
        let gpus = vec![Arc::new(GpuSim::new(GpuSpec::a100()))];
        let env = RunnerEnv {
            dataset: ds,
            kind: LoaderKind::Sand,
            engine: None,
            seed: 7,
            workers_per_job: 1,
            vcpus: 4,
            gpu_spec: GpuSpec::a100(),
            power: PowerModel::default(),
            ideal_prestage: None,
        };
        assert!(run_jobs(&[job("a")], &gpus, &env).is_err());
    }

    #[test]
    fn empty_inputs_rejected() {
        let ds = dataset();
        let env = RunnerEnv {
            dataset: ds,
            kind: LoaderKind::Ideal,
            engine: None,
            seed: 7,
            workers_per_job: 1,
            vcpus: 4,
            gpu_spec: GpuSpec::a100(),
            power: PowerModel::default(),
            ideal_prestage: None,
        };
        assert!(run_jobs(&[], &[Arc::new(GpuSim::new(GpuSpec::a100()))], &env).is_err());
        assert!(run_jobs(&[job("a")], &[], &env).is_err());
    }
}
