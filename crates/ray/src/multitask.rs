//! Heterogeneous multi-task training (Fig. 13's workload).
//!
//! Two different models (SlowFast and MAE in the paper) train
//! concurrently on separate GPUs over a shared dataset. Their pipelines
//! overlap in the early stages (decode, resize) and diverge later, so the
//! concrete-graph merging shares exactly the common prefix.

use crate::runner::{run_jobs, JobSpec, RunnerEnv};
use crate::Result;
use sand_sim::GpuSim;
use sand_train::RunReport;
use std::sync::Arc;
use std::time::Duration;

/// Multi-task configuration: the jobs to co-run.
#[derive(Debug, Clone)]
pub struct MultitaskConfig {
    /// The concurrent jobs (typically two heterogeneous models).
    pub jobs: Vec<JobSpec>,
}

/// Multi-task outcome.
#[derive(Debug, Clone)]
pub struct MultitaskOutcome {
    /// Per-job reports, in job order.
    pub reports: Vec<RunReport>,
    /// Wall time for the whole co-run (jobs run concurrently).
    pub wall: Duration,
    /// Per-GPU utilization.
    pub utilization: Vec<f64>,
}

/// Runs the jobs concurrently, one per GPU.
pub fn run_multitask(
    config: &MultitaskConfig,
    gpus: &[Arc<GpuSim>],
    env: &RunnerEnv,
) -> Result<MultitaskOutcome> {
    let started = std::time::Instant::now();
    let reports = run_jobs(&config.jobs, gpus, env)?;
    Ok(MultitaskOutcome {
        reports,
        wall: started.elapsed(),
        utilization: gpus.iter().map(|g| g.utilization()).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::LoaderKind;
    use sand_codec::{Dataset, DatasetSpec};
    use sand_config::parse_task_config;
    use sand_core::{EngineConfig, SandEngine};
    use sand_sim::{GpuSpec, ModelProfile, PowerModel};
    use sand_train::SgdConfig;

    /// Two heterogeneous pipelines sharing decode + resize, diverging at
    /// the crop size.
    fn task(name: &str, crop: usize) -> sand_config::TaskConfig {
        let text = format!(
            r#"
dataset:
  tag: {name}
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
    - name: c
      branch_type: single
      inputs: ["a0"]
      outputs: ["a1"]
      config:
        - random_crop:
            shape: [{crop}, {crop}]
"#
        );
        parse_task_config(&text).unwrap()
    }

    #[test]
    fn heterogeneous_tasks_share_prefix_work() {
        let ds = Arc::new(
            Dataset::generate(&DatasetSpec {
                num_videos: 4,
                num_classes: 2,
                width: 32,
                height: 32,
                frames_per_video: 24,
                ..Default::default()
            })
            .unwrap(),
        );
        let t_slow = task("slowfast", 8);
        let t_mae = task("mae", 12);
        let engine = SandEngine::new(
            EngineConfig {
                tasks: vec![t_slow.clone(), t_mae.clone()],
                total_epochs: 1,
                epochs_per_chunk: 1,
                seed: 7,
                ..Default::default()
            },
            Arc::clone(&ds),
        )
        .unwrap();
        engine.start().unwrap();
        // Merge stats must show decode sharing between the two tasks.
        let stats = engine.merge_stats(0).unwrap();
        assert!(
            stats.decode_reduction() > 0.3,
            "expected decode sharing, got {}",
            stats.decode_reduction()
        );
        // Resize (identical in both tasks) shares; crop (different sizes)
        // does not.
        assert!(stats.op_reduction("resize") > 0.3);
        let gpus: Vec<Arc<GpuSim>> = (0..2)
            .map(|_| Arc::new(GpuSim::new(GpuSpec::a100())))
            .collect();
        let env = RunnerEnv {
            dataset: ds,
            kind: LoaderKind::Sand,
            engine: Some(engine),
            seed: 7,
            workers_per_job: 2,
            vcpus: 4,
            gpu_spec: GpuSpec::a100(),
            power: PowerModel::default(),
            ideal_prestage: None,
        };
        let mk_job = |name: &str, t: &sand_config::TaskConfig, ms: u64| JobSpec {
            name: name.into(),
            task: t.clone(),
            profile: ModelProfile {
                name: name.into(),
                iter_time: Duration::from_millis(ms),
                ref_batch: 2,
                mem_bytes_per_pixel: 1.0,
                fixed_mem_bytes: 0,
            },
            opt: SgdConfig::default(),
            epochs: 0..1,
            train_model: false,
            classes: 2,
        };
        let out = run_multitask(
            &MultitaskConfig {
                jobs: vec![mk_job("slowfast", &t_slow, 2), mk_job("mae", &t_mae, 2)],
            },
            &gpus,
            &env,
        )
        .unwrap();
        assert_eq!(out.reports.len(), 2);
        assert_eq!(out.utilization.len(), 2);
        for r in &out.reports {
            assert_eq!(r.iterations, 2);
        }
    }
}
