//! Multi-job orchestration: the paper's Ray-based scenarios.
//!
//! The evaluation runs SAND inside Ray / Ray Tune for three multi-job
//! scenarios; this crate reproduces the orchestration semantics without
//! the Ray substrate:
//!
//! - [`runner`]: a job runner placing queued jobs onto simulated GPUs
//!   (one worker thread per GPU, jobs pulled in submission order),
//! - [`asha`]: Asynchronous Successive Halving hyperparameter search over
//!   optimizer type and hyperparameters, with early stopping by rung —
//!   all trials sharing one dataset (and, under SAND, one engine),
//! - [`multitask`]: heterogeneous tasks (different pipelines/models)
//!   training concurrently over a shared dataset,
//! - [`ddp`]: distributed data-parallel training across nodes whose
//!   dataset lives in a bandwidth-limited remote store (Fig. 14).

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod asha;
pub mod ddp;
pub mod multitask;
pub mod runner;

pub use asha::{run_asha, AshaConfig, AshaOutcome, TrialResult};
pub use ddp::{run_ddp, DdpConfig, DdpOutcome};
pub use multitask::{run_multitask, MultitaskConfig, MultitaskOutcome};
pub use runner::{run_jobs, JobSpec, LoaderKind, RunnerEnv};

use std::fmt;

/// Errors produced by the orchestration layer.
#[derive(Debug)]
pub enum RayError {
    /// Training-layer failure.
    Train(sand_train::TrainError),
    /// Engine failure.
    Core(sand_core::CoreError),
    /// Storage failure.
    Storage(sand_storage::StorageError),
    /// Orchestration state error.
    State {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for RayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RayError::Train(e) => write!(f, "train: {e}"),
            RayError::Core(e) => write!(f, "engine: {e}"),
            RayError::Storage(e) => write!(f, "storage: {e}"),
            RayError::State { what } => write!(f, "runner: {what}"),
        }
    }
}

impl std::error::Error for RayError {}

impl From<sand_train::TrainError> for RayError {
    fn from(e: sand_train::TrainError) -> Self {
        RayError::Train(e)
    }
}

impl From<sand_core::CoreError> for RayError {
    fn from(e: sand_core::CoreError) -> Self {
        RayError::Core(e)
    }
}

impl From<sand_storage::StorageError> for RayError {
    fn from(e: sand_storage::StorageError) -> Self {
        RayError::Storage(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, RayError>;
