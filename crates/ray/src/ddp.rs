//! Distributed data-parallel training with remote storage (Fig. 14).
//!
//! Multiple single-GPU nodes train one model data-parallel: the dataset
//! is sharded across nodes, every iteration ends in an all-reduce
//! barrier, and the *source videos live in a WAN-attached remote store*
//! with limited bandwidth. The strategies differ in how they touch that
//! store:
//!
//! - **SAND**: each node fetches its shard once, then the engine caches
//!   and pre-materializes locally — WAN traffic is one pass over the
//!   encoded shard,
//! - **baseline**: on-demand pipelines stream the encoded videos from the
//!   remote store again every epoch (nothing is retained), so WAN bytes
//!   scale with the epoch count.

use crate::{RayError, Result};
use parking_lot::Mutex;
use sand_codec::{Dataset, EncodedVideo, VideoEntry};
use sand_config::TaskConfig;
use sand_core::{EngineConfig, SandEngine};
use sand_sim::{GpuSim, GpuSpec, ModelProfile, PowerModel, UsageWindow};
use sand_storage::{BandwidthModel, RemoteStore};
use sand_train::loaders::{OnDemandCpuLoader, SandLoader};
use sand_train::{Loader, TaskPlan};
use std::ops::Range;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// DDP experiment configuration.
#[derive(Debug, Clone)]
pub struct DdpConfig {
    /// Number of single-GPU nodes.
    pub nodes: usize,
    /// The training pipeline (same on every node).
    pub task: TaskConfig,
    /// GPU compute profile.
    pub profile: ModelProfile,
    /// Epoch span.
    pub epochs: Range<u64>,
    /// WAN link model between each node and the remote store.
    pub bandwidth: BandwidthModel,
    /// SAND (true) or the on-demand CPU baseline (false).
    pub use_sand: bool,
    /// Plan seed.
    pub seed: u64,
    /// CPU workers per node.
    pub workers_per_node: usize,
}

/// DDP experiment outcome.
#[derive(Debug, Clone)]
pub struct DdpOutcome {
    /// Wall time of the run.
    pub wall: Duration,
    /// Total bytes served by the remote store.
    pub bytes_fetched: u64,
    /// Total fetch requests.
    pub fetches: u64,
    /// Per-node GPU utilization.
    pub utilization: Vec<f64>,
    /// Iterations per node.
    pub iterations: u64,
    /// Total energy across nodes.
    pub energy_j: f64,
}

/// Fetches one shard from the remote store, sleeping the modeled WAN
/// time, and assembles a local dataset.
fn fetch_shard(remote: &RemoteStore, shard: &[String]) -> Result<Dataset> {
    let mut videos = Vec::with_capacity(shard.len());
    for key in shard {
        let (bytes, wan) = remote.fetch(key)?;
        std::thread::sleep(wan);
        let encoded = EncodedVideo::from_bytes(&bytes).map_err(|e| RayError::State {
            what: format!("bad remote video: {e}"),
        })?;
        videos.push(VideoEntry {
            video_id: encoded.header.video_id,
            class_id: encoded.header.class_id,
            name: sand_codec::dataset::video_name(encoded.header.video_id),
            encoded: Arc::new(encoded),
        });
    }
    Ok(Dataset::from_videos(videos))
}

/// Runs the DDP experiment over `dataset`.
pub fn run_ddp(config: &DdpConfig, dataset: &Dataset) -> Result<DdpOutcome> {
    if config.nodes == 0 || dataset.len() < config.nodes {
        return Err(RayError::State {
            what: "need >= 1 video per node".into(),
        });
    }
    // Stage the dataset in the remote store.
    let remote = Arc::new(RemoteStore::new(config.bandwidth));
    for v in dataset.videos() {
        remote.upload(
            &sand_codec::dataset::video_file_name(v.video_id),
            v.encoded.to_bytes(),
        );
    }
    // Shard round-robin.
    let shards: Vec<Vec<String>> = (0..config.nodes)
        .map(|n| {
            dataset
                .videos()
                .iter()
                .filter(|v| (v.video_id as usize) % config.nodes == n)
                .map(|v| sand_codec::dataset::video_file_name(v.video_id))
                .collect()
        })
        .collect();
    let shard_len = shards[0].len();
    let vpb = config.task.sampling.videos_per_batch;
    let iters_per_epoch = (shard_len as u64).div_ceil(vpb as u64);
    let total_iters = iters_per_epoch * (config.epochs.end - config.epochs.start);
    let barrier = Arc::new(Barrier::new(config.nodes));
    let gpus: Vec<Arc<GpuSim>> = (0..config.nodes)
        .map(|_| Arc::new(GpuSim::new(GpuSpec::a100())))
        .collect();
    let started = Instant::now();
    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let cpu_work: Mutex<Duration> = Mutex::new(Duration::ZERO);
    std::thread::scope(|scope| {
        for node in 0..config.nodes {
            let remote = Arc::clone(&remote);
            let barrier = Arc::clone(&barrier);
            let gpu = Arc::clone(&gpus[node]);
            let shard = shards[node].clone();
            let config = config.clone();
            let errors = &errors;
            let cpu_work = &cpu_work;
            scope.spawn(move || {
                let run = || -> Result<Duration> {
                    let mut work = Duration::ZERO;
                    if config.use_sand {
                        // One WAN pass, then everything is local.
                        let local = Arc::new(fetch_shard(&remote, &shard)?);
                        let engine = SandEngine::new(
                            EngineConfig {
                                tasks: vec![config.task.clone()],
                                total_epochs: config.epochs.end,
                                seed: config.seed ^ node as u64,
                                sched: sand_sched::SchedConfig {
                                    threads: config.workers_per_node,
                                    ..Default::default()
                                },
                                ..Default::default()
                            },
                            local,
                        )?;
                        engine.start()?;
                        let mut loader = SandLoader::new(engine, &config.task.tag);
                        for epoch in config.epochs.clone() {
                            for it in 0..iters_per_epoch {
                                let wait = Instant::now();
                                let batch = loader.next_batch(epoch, it)?;
                                gpu.record_stall(wait.elapsed());
                                let n = batch.tensor.shape().first().copied().unwrap_or(1);
                                // All-reduce barrier.
                                barrier.wait();
                                let compute = config.profile.compute_time(n);
                                gpu.record_compute(compute);
                                std::thread::sleep(compute);
                            }
                        }
                        work = loader.cpu_work();
                    } else {
                        // Baseline: stream the shard from remote EVERY
                        // epoch, decode on demand.
                        for epoch in config.epochs.clone() {
                            let local = Arc::new(fetch_shard(&remote, &shard)?);
                            let plan = Arc::new(TaskPlan::single_task(
                                &config.task,
                                &local,
                                epoch..epoch + 1,
                                config.seed ^ node as u64,
                            )?);
                            let mut loader = OnDemandCpuLoader::new(
                                Arc::clone(&local),
                                plan,
                                config.workers_per_node,
                                2,
                            );
                            for it in 0..iters_per_epoch {
                                let wait = Instant::now();
                                let batch = loader.next_batch(epoch, it)?;
                                gpu.record_stall(wait.elapsed());
                                let n = batch.tensor.shape().first().copied().unwrap_or(1);
                                barrier.wait();
                                let compute = config.profile.compute_time(n);
                                gpu.record_compute(compute);
                                std::thread::sleep(compute);
                            }
                            work += loader.cpu_work();
                        }
                    }
                    Ok(work)
                };
                match run() {
                    Ok(w) => *cpu_work.lock() += w,
                    Err(e) => errors.lock().push(e.to_string()),
                }
            });
        }
    });
    let errors = errors.into_inner();
    if let Some(e) = errors.first() {
        return Err(RayError::State {
            what: format!("node failed: {e}"),
        });
    }
    let wall = started.elapsed();
    let power = PowerModel::default();
    let total_cpu = cpu_work.into_inner();
    let energy_j: f64 = gpus
        .iter()
        .map(|g| {
            let busy = g.busy_time().as_secs_f64().min(wall.as_secs_f64());
            let cpu_busy = (total_cpu.as_secs_f64()
                / (config.nodes * config.workers_per_node.max(1)) as f64)
                .min(wall.as_secs_f64());
            power
                .energy(
                    UsageWindow::new(cpu_busy, wall.as_secs_f64()),
                    UsageWindow::new(busy, wall.as_secs_f64()),
                )
                .total()
        })
        .sum();
    Ok(DdpOutcome {
        wall,
        bytes_fetched: remote.bytes_fetched(),
        fetches: remote.fetches(),
        utilization: gpus.iter().map(|g| g.utilization()).collect(),
        iterations: total_iters,
        energy_j,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_codec::DatasetSpec;
    use sand_config::parse_task_config;

    const TASK: &str = r#"
dataset:
  tag: ddp
  input_source: streaming
  video_dataset_path: /remote
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
"#;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetSpec {
            num_videos: 8,
            num_classes: 2,
            width: 32,
            height: 32,
            frames_per_video: 24,
            ..Default::default()
        })
        .unwrap()
    }

    fn config(use_sand: bool) -> DdpConfig {
        DdpConfig {
            nodes: 2,
            task: parse_task_config(TASK).unwrap(),
            profile: ModelProfile {
                name: "tiny".into(),
                iter_time: Duration::from_millis(2),
                ref_batch: 2,
                mem_bytes_per_pixel: 1.0,
                fixed_mem_bytes: 0,
            },
            epochs: 0..3,
            bandwidth: BandwidthModel {
                bytes_per_sec: 500.0e6,
                latency: Duration::from_micros(200),
            },
            use_sand,
            seed: 7,
            workers_per_node: 2,
        }
    }

    #[test]
    fn sand_fetches_shard_once_baseline_every_epoch() {
        let ds = dataset();
        let sand = run_ddp(&config(true), &ds).unwrap();
        let base = run_ddp(&config(false), &ds).unwrap();
        assert_eq!(sand.fetches, 8, "one fetch per video");
        assert_eq!(base.fetches, 8 * 3, "one fetch per video per epoch");
        assert!(sand.bytes_fetched * 2 < base.bytes_fetched);
        // WAN byte ratio should approximate 1/epochs.
        let ratio = sand.bytes_fetched as f64 / base.bytes_fetched as f64;
        assert!((ratio - 1.0 / 3.0).abs() < 0.05, "ratio {ratio}");
        assert_eq!(sand.iterations, base.iterations);
    }

    #[test]
    fn all_nodes_complete_same_iterations() {
        let ds = dataset();
        let out = run_ddp(&config(true), &ds).unwrap();
        assert_eq!(out.utilization.len(), 2);
        assert_eq!(out.iterations, 6); // 4 videos/shard / vpb 2 * 3 epochs
        assert!(out.energy_j > 0.0);
    }

    #[test]
    fn too_few_videos_rejected() {
        let ds = dataset();
        let mut cfg = config(true);
        cfg.nodes = 100;
        assert!(run_ddp(&cfg, &ds).is_err());
    }
}
