//! The custom-augmentation service (Sec. 5.5 of the paper).
//!
//! SAND ships a default operator library, but specialized transformations
//! live outside it. The paper's answer is an RPC mechanism: custom
//! functions execute in a separate process so external libraries and
//! runtimes cannot conflict with the engine core. This module reproduces
//! the *protocol* of that design in-process: custom ops run on a
//! dedicated service thread, requests and responses cross a channel
//! boundary, and — crucially — frames are **serialized** across it (the
//! self-describing cache format), exactly as bytes would cross a process
//! boundary. The engine never shares memory with custom code.
//!
//! Custom operations must be dimension-preserving (the planner tracks
//! output geometry statically); the service enforces this at runtime.

use crate::{CoreError, Result};
use crossbeam::channel::{unbounded, Receiver, Sender};
use sand_frame::{compress_frame, decompress_frame, Frame};
use std::collections::HashMap;
use std::thread::JoinHandle;

/// A user-provided frame transformation.
///
/// Implementations receive an owned decoded frame and return the
/// transformed frame with identical dimensions and format.
pub trait CustomOp: Send {
    /// Applies the transformation.
    fn apply(&self, frame: Frame) -> std::result::Result<Frame, String>;
}

impl<F> CustomOp for F
where
    F: Fn(Frame) -> std::result::Result<Frame, String> + Send,
{
    fn apply(&self, frame: Frame) -> std::result::Result<Frame, String> {
        self(frame)
    }
}

/// One serialized request: op name + frame bytes.
struct Request {
    op: String,
    frame_bytes: Vec<u8>,
    reply: Sender<std::result::Result<Vec<u8>, String>>,
}

/// Handle to a running augmentation service. Cloneable; every clone talks
/// to the same service thread.
#[derive(Clone)]
pub struct AugClient {
    tx: Sender<Request>,
}

impl std::fmt::Debug for AugClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AugClient").finish_non_exhaustive()
    }
}

impl AugClient {
    /// Applies the named custom op to a frame, round-tripping it through
    /// the service boundary.
    pub fn apply(&self, op: &str, frame: &Frame) -> Result<Frame> {
        let (reply_tx, reply_rx) = unbounded();
        let request = Request {
            op: op.to_string(),
            frame_bytes: compress_frame(frame),
            reply: reply_tx,
        };
        self.tx.send(request).map_err(|_| CoreError::State {
            what: "augmentation service is down".into(),
        })?;
        let bytes = reply_rx
            .recv()
            .map_err(|_| CoreError::State {
                what: "augmentation service dropped reply".into(),
            })?
            .map_err(|e| CoreError::State {
                what: format!("custom op failed: {e}"),
            })?;
        let out = decompress_frame(&bytes)?;
        if out.width() != frame.width()
            || out.height() != frame.height()
            || out.format() != frame.format()
        {
            return Err(CoreError::State {
                what: format!("custom op `{op}` changed frame geometry"),
            });
        }
        Ok(out)
    }
}

/// The augmentation service: owns the registry and its worker thread.
pub struct AugService {
    client: AugClient,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for AugService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AugService").finish_non_exhaustive()
    }
}

fn service_loop(rx: Receiver<Request>, registry: HashMap<String, Box<dyn CustomOp>>) {
    while let Ok(req) = rx.recv() {
        let result = (|| -> std::result::Result<Vec<u8>, String> {
            let op = registry
                .get(&req.op)
                .ok_or_else(|| format!("unknown custom op `{}`", req.op))?;
            let frame =
                decompress_frame(&req.frame_bytes).map_err(|e| format!("bad frame bytes: {e}"))?;
            let mut out = op.apply(frame)?;
            out.meta.aug_depth += 1;
            Ok(compress_frame(&out))
        })();
        // Client may have given up; that is not a service error.
        let _ = req.reply.send(result);
    }
}

impl AugService {
    /// Starts the service with the given registry.
    #[must_use]
    pub fn start(registry: HashMap<String, Box<dyn CustomOp>>) -> Self {
        let (tx, rx) = unbounded();
        let handle = std::thread::Builder::new()
            .name("sand-aug-service".into())
            .spawn(move || service_loop(rx, registry))
            .expect("spawn augmentation service");
        AugService {
            client: AugClient { tx },
            handle: Some(handle),
        }
    }

    /// A builder-style helper for registering ops.
    #[must_use]
    pub fn builder() -> AugServiceBuilder {
        AugServiceBuilder {
            registry: HashMap::new(),
        }
    }

    /// Handle for submitting requests.
    #[must_use]
    pub fn client(&self) -> AugClient {
        self.client.clone()
    }
}

impl Drop for AugService {
    fn drop(&mut self) {
        // Disconnect the channel so the service loop exits, then join.
        let (tx, _) = unbounded();
        self.client = AugClient { tx };
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Builder collecting custom op registrations.
#[derive(Default)]
pub struct AugServiceBuilder {
    registry: HashMap<String, Box<dyn CustomOp>>,
}

impl AugServiceBuilder {
    /// Registers an op under `name`.
    #[must_use]
    pub fn register(mut self, name: &str, op: Box<dyn CustomOp>) -> Self {
        self.registry.insert(name.to_string(), op);
        self
    }

    /// Starts the service.
    #[must_use]
    pub fn start(self) -> AugService {
        AugService::start(self.registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_frame::PixelFormat;

    fn sepia(mut frame: Frame) -> std::result::Result<Frame, String> {
        for px in frame.as_bytes_mut().chunks_exact_mut(3) {
            let (r, g, b) = (f32::from(px[0]), f32::from(px[1]), f32::from(px[2]));
            px[0] = (0.393 * r + 0.769 * g + 0.189 * b).min(255.0) as u8;
            px[1] = (0.349 * r + 0.686 * g + 0.168 * b).min(255.0) as u8;
            px[2] = (0.272 * r + 0.534 * g + 0.131 * b).min(255.0) as u8;
        }
        Ok(frame)
    }

    #[test]
    fn custom_op_roundtrips_through_service() {
        let service = AugService::builder()
            .register("sepia", Box::new(sepia))
            .start();
        let client = service.client();
        let mut f = Frame::zeroed(4, 4, PixelFormat::Rgb8).unwrap();
        f.set_pixel(0, 0, &[100, 100, 100]).unwrap();
        let out = client.apply("sepia", &f).unwrap();
        assert_eq!(out.pixel(0, 0).unwrap(), &[135, 120, 93]);
        assert_eq!(out.meta.aug_depth, f.meta.aug_depth + 1);
    }

    #[test]
    fn unknown_op_is_an_error() {
        let service = AugService::builder().start();
        let client = service.client();
        let f = Frame::zeroed(2, 2, PixelFormat::Rgb8).unwrap();
        assert!(matches!(
            client.apply("nope", &f),
            Err(CoreError::State { .. })
        ));
    }

    #[test]
    fn geometry_changing_op_rejected() {
        let shrink = |f: Frame| -> std::result::Result<Frame, String> {
            Frame::zeroed(f.width() / 2, f.height(), f.format()).map_err(|e| e.to_string())
        };
        let service = AugService::builder()
            .register("shrink", Box::new(shrink))
            .start();
        let client = service.client();
        let f = Frame::zeroed(4, 4, PixelFormat::Rgb8).unwrap();
        assert!(matches!(
            client.apply("shrink", &f),
            Err(CoreError::State { .. })
        ));
    }

    #[test]
    fn op_failure_propagates() {
        let bomb = |_: Frame| -> std::result::Result<Frame, String> { Err("boom".into()) };
        let service = AugService::builder()
            .register("bomb", Box::new(bomb))
            .start();
        let client = service.client();
        let f = Frame::zeroed(2, 2, PixelFormat::Rgb8).unwrap();
        let err = client.apply("bomb", &f).unwrap_err();
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn concurrent_clients_share_one_service() {
        let service = AugService::builder()
            .register("id", Box::new(|f: Frame| Ok(f)))
            .start();
        let mut handles = Vec::new();
        for _ in 0..4 {
            let client = service.client();
            handles.push(std::thread::spawn(move || {
                let f = Frame::zeroed(8, 8, PixelFormat::Rgb8).unwrap();
                for _ in 0..20 {
                    client.apply("id", &f).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }
}
