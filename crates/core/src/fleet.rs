//! Multi-tenant fleet front-end: K heterogeneous jobs, one engine.
//!
//! A [`Fleet`] admits several tenants — each a named bundle of task
//! configs with a QoS weight — against a *single* [`SandEngine`]
//! instance, so the engine's cross-task merging (Sec. 4 of the paper)
//! extends across tenants: a decode or augmentation ancestor shared by
//! two tenants' pipelines materializes at most once fleet-wide, however
//! many tenants race for it (the engine's singleflight claim map makes
//! concurrent duplicates collapse; the shared store makes serial ones
//! hit cache).
//!
//! Three mechanisms compose:
//!
//! 1. **Namespaced union planning** — every tenant's task tags are
//!    prefixed `"<tenant>.<tag>"` and the union is planned as one
//!    workload. Planning draws are task-set- and tag-independent, so a
//!    tenant's served bytes are bit-identical to the same tasks run on
//!    an isolated engine with the same seed (`tests/fleet.rs` pins
//!    this).
//! 2. **Admission control** — tenants are admitted in submission order
//!    while the running sum of their working-set estimates fits the
//!    admission budget; the rest are rejected up front with a reason,
//!    never degrading already-admitted tenants.
//! 3. **Weighted QoS** — admitted tenants' weights are installed on the
//!    scheduler's virtual-time ledger, so demand capacity divides in
//!    weight proportion under contention while `tenant.<id>.*` metrics
//!    and per-tenant stall sections attribute what each tenant got.

use crate::engine::{EngineConfig, SandEngine};
use crate::{CoreError, Result};
use sand_codec::Dataset;
use sand_config::TaskConfig;
use sand_sched::TenantShare;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One tenant's identity inside a shared engine: the name keys the
/// per-tenant metrics and stall sections; the weight drives the
/// scheduler's virtual-time sharing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantId {
    /// Fleet-unique tenant name (metric names embed it).
    pub name: String,
    /// QoS weight (>= 1; zero is clamped to 1 by the scheduler).
    pub weight: u64,
}

/// Tenancy facts the fleet installs on [`EngineConfig::tenancy`]: who
/// the tenants are and which task belongs to whom. Engines built
/// without this are single-tenant and pay nothing for the feature.
#[derive(Debug, Clone, Default)]
pub struct Tenancy {
    /// Admitted tenants, in admission order (the scheduler's weight
    /// table uses the same order).
    pub tenants: Vec<TenantId>,
    /// Task tag (as it appears in `EngineConfig::tasks`) → index into
    /// `tenants`. Unmapped tasks are untenanted: scheduled at zero
    /// virtual time and excluded from per-tenant attribution.
    pub task_tenant: HashMap<String, u32>,
    /// Working-set budget admission control enforced, in bytes (recorded
    /// for the lint pass; `0` = the store memory budget was used).
    pub admission_budget: u64,
}

/// One tenant submitted to the fleet: a name, a QoS weight, and the
/// tasks it wants to run.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Fleet-unique tenant name.
    pub name: String,
    /// QoS weight; demand capacity divides proportionally under
    /// contention.
    pub weight: u64,
    /// The tenant's tasks, with *their own* tags (the fleet namespaces
    /// them before planning).
    pub tasks: Vec<TaskConfig>,
}

/// Fleet configuration: a base engine config plus the tenant roster.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Engine settings shared by every tenant. `tasks` and `tenancy`
    /// are overwritten by the fleet (the union of admitted tenants'
    /// namespaced tasks).
    pub base: EngineConfig,
    /// Tenants in submission order (admission considers them in order).
    pub tenants: Vec<TenantSpec>,
    /// Admission working-set budget in bytes; `0` uses the store's
    /// memory budget. Must not exceed the store budget (lint SL039).
    pub admission_budget: u64,
}

/// A tenant turned away by admission control.
#[derive(Debug, Clone)]
pub struct RejectedTenant {
    /// The tenant's name.
    pub name: String,
    /// Its working-set estimate in bytes.
    pub estimate: u64,
    /// Human-readable rejection reason.
    pub reason: String,
}

struct AdmittedTenant {
    name: String,
    estimate: u64,
    cancelled: AtomicBool,
}

/// The multi-tenant front-end over one shared engine.
pub struct Fleet {
    engine: SandEngine,
    admitted: Vec<AdmittedTenant>,
    rejected: Vec<RejectedTenant>,
    budget: u64,
}

/// The namespaced task tag a tenant's task is planned under.
#[must_use]
pub fn fleet_tag(tenant: &str, tag: &str) -> String {
    format!("{tenant}.{tag}")
}

impl Fleet {
    /// Admits tenants against the working-set budget, builds the union
    /// engine over the admitted set, and starts it (lint pass included:
    /// SL039/SL040 see the fleet facts).
    pub fn new(config: FleetConfig, dataset: Arc<Dataset>) -> Result<Fleet> {
        if config.tenants.is_empty() {
            return Err(CoreError::State {
                what: "fleet has no tenants".into(),
            });
        }
        let mut seen = std::collections::HashSet::new();
        for t in &config.tenants {
            if t.name.is_empty() {
                return Err(CoreError::State {
                    what: "tenant with empty name".into(),
                });
            }
            if !seen.insert(t.name.as_str()) {
                return Err(CoreError::State {
                    what: format!("duplicate tenant name `{}`", t.name),
                });
            }
            if t.tasks.is_empty() {
                return Err(CoreError::State {
                    what: format!("tenant `{}` has no tasks", t.name),
                });
            }
        }
        let budget = if config.admission_budget == 0 {
            config.base.store.memory_budget
        } else {
            config.admission_budget
        };
        // Admission in submission order: a tenant is admitted iff its
        // working set still fits what the budget has left. Later, smaller
        // tenants may still fit after a large rejection — admission never
        // punishes them for an earlier tenant's appetite.
        let mut admitted = Vec::new();
        let mut specs: Vec<&TenantSpec> = Vec::new();
        let mut rejected = Vec::new();
        let mut used = 0u64;
        for t in &config.tenants {
            let estimate = Self::working_set_estimate(t, &dataset);
            if used.saturating_add(estimate) > budget {
                rejected.push(RejectedTenant {
                    name: t.name.clone(),
                    estimate,
                    reason: format!(
                        "working-set estimate {estimate} B exceeds the {} B left of the \
                         {budget} B admission budget",
                        budget - used
                    ),
                });
                continue;
            }
            used += estimate;
            admitted.push(AdmittedTenant {
                name: t.name.clone(),
                estimate,
                cancelled: AtomicBool::new(false),
            });
            specs.push(t);
        }
        if admitted.is_empty() {
            return Err(CoreError::State {
                what: format!(
                    "admission rejected every tenant (budget {budget} B): {}",
                    rejected
                        .iter()
                        .map(|r| format!("{} ({} B)", r.name, r.estimate))
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            });
        }
        // Union workload: every admitted tenant's tasks, tags namespaced
        // so identical per-tenant configs coexist in one plan.
        let mut tasks = Vec::new();
        let mut task_tenant = HashMap::new();
        let mut tenants = Vec::new();
        for (idx, spec) in specs.iter().enumerate() {
            tenants.push(TenantId {
                name: spec.name.clone(),
                weight: spec.weight.max(1),
            });
            for task in &spec.tasks {
                let mut task = task.clone();
                task.tag = fleet_tag(&spec.name, &task.tag);
                task_tenant.insert(task.tag.clone(), idx as u32);
                tasks.push(task);
            }
        }
        let mut engine_config = config.base;
        engine_config.tasks = tasks;
        engine_config.tenancy = Some(Tenancy {
            tenants,
            task_tenant,
            admission_budget: config.admission_budget,
        });
        let engine = SandEngine::new(engine_config, dataset)?;
        engine.start()?;
        if let Some(m) = engine.fleet_metrics() {
            m.admitted.set(admitted.len() as i64);
            m.rejected.add(rejected.len() as u64);
        }
        Ok(Fleet {
            engine,
            admitted,
            rejected,
            budget,
        })
    }

    /// A tenant's working-set estimate: per task, the raw f32 bytes of
    /// one in-flight batch (`videos_per_batch x frames_per_video` frames
    /// at the dataset's largest frame geometry) — the floor of what the
    /// store must hold to feed the tenant's demand path at all.
    fn working_set_estimate(spec: &TenantSpec, dataset: &Dataset) -> u64 {
        let frame_bytes: u64 = dataset
            .videos()
            .iter()
            .map(|v| {
                let h = &v.encoded.header;
                (h.width as u64) * (h.height as u64) * h.format.channels() as u64
            })
            .max()
            .unwrap_or(0);
        spec.tasks
            .iter()
            .map(|t| {
                (t.sampling.videos_per_batch as u64)
                    * (t.sampling.frames_per_video as u64)
                    * frame_bytes
                    * 4
            })
            .sum()
    }

    /// Serves one batch on behalf of `tenant` (its *original* task tag,
    /// pre-namespacing). Rejected tenants get [`CoreError::UnknownView`];
    /// cancelled tenants get [`CoreError::State`].
    pub fn serve_batch(
        &self,
        tenant: &str,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) -> Result<Vec<u8>> {
        let t = self
            .admitted
            .iter()
            .find(|a| a.name == tenant)
            .ok_or_else(|| CoreError::UnknownView {
                what: format!("tenant `{tenant}` is not admitted"),
            })?;
        if t.cancelled.load(Ordering::Acquire) {
            return Err(CoreError::State {
                what: format!("tenant `{tenant}` is cancelled"),
            });
        }
        self.engine
            .serve_batch(&fleet_tag(tenant, task), epoch, iteration)
    }

    /// Cancels a tenant: subsequent serves error; in-flight serves
    /// complete. Other tenants are unaffected — materialization is
    /// per-node deterministic, so their bytes never depended on the
    /// cancelled tenant's progress. Returns `false` for unknown tenants.
    pub fn cancel(&self, tenant: &str) -> bool {
        match self.admitted.iter().find(|a| a.name == tenant) {
            Some(t) => {
                t.cancelled.store(true, Ordering::Release);
                true
            }
            None => false,
        }
    }

    /// Whether `tenant` was admitted (cancelled tenants stay admitted).
    #[must_use]
    pub fn is_admitted(&self, tenant: &str) -> bool {
        self.admitted.iter().any(|a| a.name == tenant)
    }

    /// Admitted tenant names with their working-set estimates, in
    /// admission order (the scheduler's tenant indices use this order).
    #[must_use]
    pub fn admitted(&self) -> Vec<(String, u64)> {
        self.admitted
            .iter()
            .map(|a| (a.name.clone(), a.estimate))
            .collect()
    }

    /// Tenants turned away by admission control.
    #[must_use]
    pub fn rejected(&self) -> &[RejectedTenant] {
        &self.rejected
    }

    /// The effective admission budget in bytes.
    #[must_use]
    pub fn admission_budget(&self) -> u64 {
        self.budget
    }

    /// Per-tenant scheduler shares (weight, virtual time, busy
    /// nanoseconds), in admission order.
    #[must_use]
    pub fn tenant_shares(&self) -> Option<Vec<TenantShare>> {
        self.engine.tenant_shares()
    }

    /// The shared engine (telemetry, stats, store access).
    #[must_use]
    pub fn engine(&self) -> &SandEngine {
        &self.engine
    }
}
