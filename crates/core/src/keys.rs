//! Stable storage keys for concrete objects.
//!
//! Object identity in the store must be (a) unique per distinct object,
//! (b) identical for merged objects regardless of which task asks, and
//! (c) stable across process restarts (recovery re-derives the same keys
//! from a re-planned graph). Frame keys embed the video and frame index;
//! augmented keys additionally embed a 64-bit FNV-1a digest of the
//! resolved op chain.

use sand_graph::ObjectKey;

/// FNV-1a 64-bit hash (stable across platforms and runs).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The storage key for a concrete object.
#[must_use]
pub fn store_key(key: &ObjectKey) -> String {
    match key {
        ObjectKey::Video { video_id } => format!("v{video_id:04}/src"),
        ObjectKey::Frame { video_id, frame } => format!("v{video_id:04}/f{frame:05}"),
        ObjectKey::Aug {
            video_id,
            frame,
            chain,
        } => {
            let mut buf = Vec::new();
            for (name, params) in chain {
                buf.extend_from_slice(name.as_bytes());
                buf.push(0x1f);
                buf.extend_from_slice(params.as_bytes());
                buf.push(0x1e);
            }
            format!("v{video_id:04}/f{frame:05}/a{:016x}", fnv1a(&buf))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_are_stable_and_distinct() {
        let f = ObjectKey::Frame {
            video_id: 3,
            frame: 14,
        };
        assert_eq!(store_key(&f), "v0003/f00014");
        let a1 = ObjectKey::Aug {
            video_id: 3,
            frame: 14,
            chain: vec![("resize".into(), "16x16:bilinear".into())],
        };
        let a2 = ObjectKey::Aug {
            video_id: 3,
            frame: 14,
            chain: vec![("resize".into(), "16x16:nearest".into())],
        };
        assert_ne!(store_key(&a1), store_key(&a2));
        assert_eq!(store_key(&a1), store_key(&a1.clone()));
    }

    #[test]
    fn chain_order_matters() {
        let ab = ObjectKey::Aug {
            video_id: 0,
            frame: 0,
            chain: vec![("a".into(), "1".into()), ("b".into(), "2".into())],
        };
        let ba = ObjectKey::Aug {
            video_id: 0,
            frame: 0,
            chain: vec![("b".into(), "2".into()), ("a".into(), "1".into())],
        };
        assert_ne!(store_key(&ab), store_key(&ba));
    }

    #[test]
    fn separator_injection_resistant() {
        // ("ab", "c") must differ from ("a", "bc").
        let x = ObjectKey::Aug {
            video_id: 0,
            frame: 0,
            chain: vec![("ab".into(), "c".into())],
        };
        let y = ObjectKey::Aug {
            video_id: 0,
            frame: 0,
            chain: vec![("a".into(), "bc".into())],
        };
        assert_ne!(store_key(&x), store_key(&y));
    }
}
