//! The SAND engine.

use crate::keys::store_key;
use crate::{CoreError, Result};
use parking_lot::Mutex;
use sand_codec::{Dataset, DecodeStats, Decoder, WarmDecoder};
use sand_config::TaskConfig;
use sand_frame::tensor::{clip_refs_to_tensor, stack};
use sand_frame::{compress_frame, decompress_frame, Frame};
use sand_graph::{
    prune_to_budget, AbstractGraph, BatchRef, ConcreteGraph, NodeId, ObjectKey, PlanInput, Planner,
    PlannerOptions,
};
use sand_lint::{lint_all, LintLevel, LintOptions};
use sand_sched::{Job, JobKind, SchedConfig, Scheduler};
use sand_storage::{ObjectMeta, ObjectStore, StoreConfig};
use sand_vfs::{SandVfs, VfsError, ViewPath, ViewProvider};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// All tasks sharing this engine (and dataset).
    pub tasks: Vec<TaskConfig>,
    /// Object store tiers and budgets.
    pub store: StoreConfig,
    /// Disk-tier directory (`None` = memory-only store).
    pub store_dir: Option<PathBuf>,
    /// Worker pool configuration.
    pub sched: SchedConfig,
    /// Global seed for planning and coordinated draws.
    pub seed: u64,
    /// Coordinated randomization (SAND) vs. independent (ablation).
    pub coordinate: bool,
    /// Epochs per concrete-graph chunk (the paper's `k`).
    pub epochs_per_chunk: u64,
    /// Total training epochs.
    pub total_epochs: u64,
    /// Cache budget for Algorithm 1 pruning, in bytes.
    pub cache_budget: u64,
    /// Whether to run the pruning pass (off = naive leaf caching).
    pub prune: bool,
    /// Naive baseline: cache only the final (leaf) training objects,
    /// ignoring intermediates — the comparison point of Fig. 17.
    pub naive_leaf_cache: bool,
    /// Client of a running custom-augmentation service; required when any
    /// pipeline uses `custom:` ops.
    pub aug_service: Option<crate::service::AugClient>,
    /// Whether to pre-materialize ahead of demand.
    pub prematerialize: bool,
    /// Threads used to decode independent keyframe segments of one video
    /// concurrently during pre-materialization (closed GOPs make the
    /// segments independent). `1` keeps decodes sequential.
    pub decode_threads: usize,
    /// Static-analysis level for the startup lint pass: `Off` skips it,
    /// `Warn` reports findings to stderr, `Deny` additionally fails
    /// startup on any deny-severity finding.
    pub lint: LintLevel,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tasks: Vec::new(),
            store: StoreConfig::default(),
            store_dir: None,
            sched: SchedConfig::default(),
            seed: 0x5a4d,
            coordinate: true,
            epochs_per_chunk: 2,
            total_epochs: 4,
            cache_budget: 256 << 20,
            prune: true,
            naive_leaf_cache: false,
            aug_service: None,
            prematerialize: true,
            decode_threads: 1,
            lint: LintLevel::default(),
        }
    }
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Codec work performed by this engine.
    pub decode: DecodeStats,
    /// Augmentation ops actually executed.
    pub aug_ops_applied: u64,
    /// Batches served through the view interface.
    pub batches_served: u64,
    /// Store counters.
    pub store: sand_storage::StoreStats,
    /// Scheduler counters.
    pub sched: sand_sched::SchedStats,
}

/// One planned epoch chunk.
struct Chunk {
    graph: ConcreteGraph,
    /// Per-node earliest-need clock.
    deadlines: Vec<Option<u64>>,
    /// Per-node transitive consumer count (for store `future_uses`).
    future_uses: Vec<u32>,
    /// Batch lookup: (task, epoch, iteration) -> batches index.
    batch_index: HashMap<(u32, u64, u64), usize>,
}

impl Chunk {
    fn build(graph: ConcreteGraph) -> Self {
        let deadlines = graph.deadlines();
        let mut future_uses: Vec<u32> = graph
            .nodes
            .iter()
            .map(|n| n.consumers.len() as u32)
            .collect();
        // Children have larger ids; one reverse sweep accumulates subtree
        // consumer counts into ancestors.
        for id in (0..graph.nodes.len()).rev() {
            if let Some(p) = graph.nodes[id].parent {
                future_uses[p] += future_uses[id];
            }
        }
        let mut batch_index = HashMap::new();
        for (i, b) in graph.batches.iter().enumerate() {
            batch_index.insert((b.task, b.epoch, b.iteration), i);
        }
        Chunk {
            graph,
            deadlines,
            future_uses,
            batch_index,
        }
    }
}

/// Shared engine state (jobs hold an `Arc` to this).
struct Inner {
    config: EngineConfig,
    dataset: Arc<Dataset>,
    store: Arc<ObjectStore>,
    sched: Scheduler,
    chunks: Mutex<HashMap<u64, Arc<Chunk>>>,
    task_ids: HashMap<String, u32>,
    decode_stats: Mutex<DecodeStats>,
    /// Warm per-video decode sessions for the demand paths: a single-frame
    /// read landing forward in the GOP a session last walked resumes the
    /// live anchor chain instead of re-decoding from the keyframe. The
    /// outer lock only guards the map, so decodes on different videos
    /// proceed concurrently.
    warm_decoders: Mutex<HashMap<u64, Arc<Mutex<WarmDecoder>>>>,
    aug_ops_applied: AtomicU64,
    batches_served: AtomicU64,
}

/// Bound on live warm decode sessions; each holds at most one
/// reconstructed frame (`WarmDecoder::resident_bytes`).
const WARM_SESSION_CAP: usize = 64;

/// Projects the dataset's per-video headers into the planner's metadata.
fn video_metas(dataset: &Dataset) -> Vec<sand_graph::VideoMeta> {
    dataset
        .videos()
        .iter()
        .map(|v| {
            let h = &v.encoded.header;
            sand_graph::VideoMeta {
                video_id: v.video_id,
                frames: v.encoded.frame_count(),
                width: h.width,
                height: h.height,
                channels: h.format.channels(),
                gop_size: h.gop_size,
                encoded_bytes: v.encoded.encoded_size(),
            }
        })
        .collect()
}

/// The SAND engine. Cheap to clone (shared state).
#[derive(Clone)]
pub struct SandEngine {
    inner: Arc<Inner>,
}

impl SandEngine {
    /// Creates an engine over a dataset.
    ///
    /// With a `store_dir` containing objects from a previous run, the
    /// engine adopts them (recovery): the deterministic plan re-derives
    /// the same keys, so surviving objects are never recomputed.
    pub fn new(config: EngineConfig, dataset: Arc<Dataset>) -> Result<Self> {
        if config.tasks.is_empty() {
            return Err(CoreError::State {
                what: "no tasks configured".into(),
            });
        }
        if config.epochs_per_chunk == 0 || config.total_epochs == 0 {
            return Err(CoreError::State {
                what: "epochs must be nonzero".into(),
            });
        }
        let mut task_ids = HashMap::new();
        for (i, t) in config.tasks.iter().enumerate() {
            t.validate()?;
            if task_ids.insert(t.tag.clone(), i as u32).is_some() {
                return Err(CoreError::State {
                    what: format!("duplicate task tag `{}`", t.tag),
                });
            }
        }
        let store = Arc::new(ObjectStore::open(config.store, config.store_dir.clone())?);
        let sched = Scheduler::new(config.sched);
        Ok(SandEngine {
            inner: Arc::new(Inner {
                config,
                dataset,
                store,
                sched,
                chunks: Mutex::new(HashMap::new()),
                task_ids,
                decode_stats: Mutex::new(DecodeStats::default()),
                warm_decoders: Mutex::new(HashMap::new()),
                aug_ops_applied: AtomicU64::new(0),
                batches_served: AtomicU64::new(0),
            }),
        })
    }

    /// Runs the startup lint pass (per `EngineConfig::lint`), then plans
    /// the first chunk and kicks off pre-materialization.
    pub fn start(&self) -> Result<()> {
        self.lint_check()?;
        Inner::ensure_chunk(&self.inner, 0)?;
        Ok(())
    }

    /// Lints the configured workload: config semantics, abstract- and
    /// concrete-graph invariants, resource feasibility, and sharing
    /// near-misses. Findings go to stderr; with [`LintLevel::Deny`], any
    /// deny-severity finding aborts startup with [`CoreError::Lint`].
    pub fn lint_check(&self) -> Result<()> {
        let config = &self.inner.config;
        if config.lint == LintLevel::Off {
            return Ok(());
        }
        let abstract_graphs: Vec<AbstractGraph> = config
            .tasks
            .iter()
            .map(AbstractGraph::from_config)
            .collect();
        let videos = video_metas(&self.inner.dataset);
        // Dry-plan the first chunk, unpruned, as the concrete-graph
        // specimen: deterministic planning makes it representative of
        // every later chunk.
        let end = config.epochs_per_chunk.min(config.total_epochs);
        let inputs: Vec<PlanInput> = config
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| PlanInput {
                task_id: i as u32,
                config: t.clone(),
            })
            .collect();
        let concrete = Planner::new(
            inputs,
            videos.clone(),
            PlannerOptions {
                seed: config.seed,
                coordinate: config.coordinate,
                epochs: 0..end,
            },
        )
        .and_then(|p| p.plan())
        .ok();
        let iterations_per_epoch = config
            .tasks
            .iter()
            .map(|t| (videos.len() as u64).div_ceil(t.sampling.videos_per_batch as u64))
            .max();
        let opts = LintOptions {
            total_epochs: config.total_epochs,
            iterations_per_epoch,
            cache_budget: config.cache_budget,
            memory_budget: config.store.memory_budget,
        };
        let report = lint_all(
            &config.tasks,
            &abstract_graphs,
            concrete.as_ref(),
            &videos,
            &opts,
        );
        if !report.is_clean() {
            eprintln!("{}", report.render_human());
        }
        let denies = report.deny_count();
        if config.lint == LintLevel::Deny && denies > 0 {
            return Err(CoreError::Lint {
                denies,
                report: report.render_human(),
            });
        }
        Ok(())
    }

    /// Mounts a VFS over this engine.
    #[must_use]
    pub fn mount(&self) -> SandVfs {
        SandVfs::new(Arc::new(self.clone()))
    }

    /// Serves a batch directly (the VFS route calls this too); returns
    /// the serialized batch tensor.
    pub fn serve_batch(&self, task: &str, epoch: u64, iteration: u64) -> Result<Vec<u8>> {
        Inner::serve_batch(&self.inner, task, epoch, iteration)
    }

    /// Blocks until all queued materialization work finished.
    pub fn wait_idle(&self) {
        self.inner.sched.wait_idle();
    }

    /// The iterations each task runs per epoch.
    #[must_use]
    pub fn iterations_per_epoch(&self, task: &str) -> Option<u64> {
        let id = *self.inner.task_ids.get(task)?;
        let vpb = self.inner.config.tasks[id as usize]
            .sampling
            .videos_per_batch;
        Some((self.inner.dataset.len() as u64).div_ceil(vpb as u64))
    }

    /// The engine's dataset.
    #[must_use]
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.inner.dataset
    }

    /// Aggregate statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            decode: *self.inner.decode_stats.lock(),
            aug_ops_applied: self.inner.aug_ops_applied.load(Ordering::Relaxed),
            batches_served: self.inner.batches_served.load(Ordering::Relaxed),
            store: self.inner.store.stats(),
            sched: self.inner.sched.stats(),
        }
    }

    /// Merge statistics of the chunk containing `epoch` (plans it if
    /// necessary).
    pub fn merge_stats(&self, epoch: u64) -> Result<sand_graph::MergeStats> {
        let chunk = Inner::ensure_chunk(&self.inner, epoch)?;
        Ok(chunk.graph.stats.clone())
    }

    /// The engine's object store (shared).
    #[must_use]
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.inner.store
    }
}

impl Inner {
    /// Ensures the chunk containing `epoch` is planned, pruned, and (if
    /// enabled) being pre-materialized.
    fn ensure_chunk(inner: &Arc<Inner>, epoch: u64) -> Result<Arc<Chunk>> {
        if epoch >= inner.config.total_epochs {
            return Err(CoreError::State {
                what: format!(
                    "epoch {epoch} beyond total_epochs {}",
                    inner.config.total_epochs
                ),
            });
        }
        let k = inner.config.epochs_per_chunk;
        let chunk_id = epoch / k;
        if let Some(c) = inner.chunks.lock().get(&chunk_id) {
            return Ok(Arc::clone(c));
        }
        // Plan outside the lock (planning can be slow), then race-insert.
        let start = chunk_id * k;
        let end = (start + k).min(inner.config.total_epochs);
        // Fast path: a checkpointed plan from a previous run (Sec. 5.5's
        // "checkpointed every k epochs for faster recovery"). Configs and
        // seed are deterministic, so a matching checkpoint is the plan.
        if let Some(path) = Self::checkpoint_path(inner, chunk_id) {
            if let Ok(bytes) = std::fs::read(&path) {
                if let Ok(graph) = sand_graph::checkpoint::from_bytes(&bytes) {
                    if graph.epochs == (start..end) {
                        let chunk = Arc::new(Chunk::build(graph));
                        let chunk = {
                            let mut chunks = inner.chunks.lock();
                            Arc::clone(chunks.entry(chunk_id).or_insert_with(|| Arc::clone(&chunk)))
                        };
                        if inner.config.prematerialize {
                            Self::submit_prematerialization(inner, &chunk);
                        }
                        return Ok(chunk);
                    }
                }
            }
        }
        let tasks: Vec<PlanInput> = inner
            .config
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| PlanInput {
                task_id: i as u32,
                config: t.clone(),
            })
            .collect();
        let videos = video_metas(&inner.dataset);
        let planner = Planner::new(
            tasks,
            videos,
            PlannerOptions {
                seed: inner.config.seed,
                coordinate: inner.config.coordinate,
                epochs: start..end,
            },
        )?;
        let mut graph = planner.plan()?;
        if inner.config.naive_leaf_cache {
            // Keep only leaves cached: the naive plan that stores final
            // training objects and recomputes everything else.
            let leaf: Vec<bool> = graph.nodes.iter().map(|n| n.children.is_empty()).collect();
            for node in &mut graph.nodes {
                if !matches!(node.key, ObjectKey::Video { .. }) {
                    node.cached = leaf[node.id];
                }
            }
        }
        if inner.config.prune {
            prune_to_budget(&mut graph, inner.config.cache_budget);
        }
        // Best-effort checkpoint for crash recovery.
        if let Some(path) = Self::checkpoint_path(inner, chunk_id) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(&path, sand_graph::checkpoint::to_bytes(&graph));
        }
        let chunk = Arc::new(Chunk::build(graph));
        let chunk = {
            let mut chunks = inner.chunks.lock();
            Arc::clone(chunks.entry(chunk_id).or_insert_with(|| Arc::clone(&chunk)))
        };
        if inner.config.prematerialize {
            Self::submit_prematerialization(inner, &chunk);
        }
        Ok(chunk)
    }

    /// Path of a chunk's plan checkpoint (inside the store directory,
    /// under a metadata subdirectory the object scan ignores).
    fn checkpoint_path(inner: &Arc<Inner>, chunk_id: u64) -> Option<PathBuf> {
        inner
            .config
            .store_dir
            .as_ref()
            .map(|d| d.join("_meta").join(format!("graph_chunk_{chunk_id}.ckpt")))
    }

    /// Submits pre-materialization jobs: one per (video, deadline bucket).
    ///
    /// Granularity matters twice over. Jobs must be small enough that a
    /// demand-feeding job never sits behind a long-running worker (the
    /// scheduler preempts between jobs, not within one), and the first
    /// bucket of a video decodes the *union* of the chunk's source frames
    /// in one GOP-efficient pass, persisting them so every later epoch's
    /// bucket reuses the decoded frames instead of re-touching the codec —
    /// the paper's "decode once, cache for k epochs".
    fn submit_prematerialization(inner: &Arc<Inner>, chunk: &Arc<Chunk>) {
        let epoch_span = chunk.graph.epochs.end - chunk.graph.epochs.start;
        for v in inner.dataset.videos() {
            let subtree = chunk.graph.video_subtree(v.video_id);
            let todo: Vec<NodeId> = subtree
                .into_iter()
                .filter(|&id| {
                    chunk.graph.nodes[id].cached
                        && !matches!(chunk.graph.nodes[id].key, ObjectKey::Video { .. })
                        && !inner.store.contains(&store_key(&chunk.graph.nodes[id].key))
                })
                .collect();
            if todo.is_empty() {
                continue;
            }
            // Bucket nodes by the epoch of their earliest need.
            let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); epoch_span as usize + 1];
            let clocks_per_epoch = chunk
                .graph
                .batches
                .iter()
                .map(|b| b.iteration + 1)
                .max()
                .unwrap_or(1);
            for &id in &todo {
                let bucket = match chunk.deadlines[id] {
                    Some(clock) => ((clock / clocks_per_epoch)
                        .saturating_sub(chunk.graph.epochs.start)
                        as usize)
                        .min(epoch_span as usize),
                    None => epoch_span as usize,
                };
                buckets[bucket].push(id);
            }
            for (b, bucket_nodes) in buckets.into_iter().enumerate() {
                if bucket_nodes.is_empty() {
                    continue;
                }
                let deadline = bucket_nodes
                    .iter()
                    .filter_map(|&id| chunk.deadlines[id])
                    .min()
                    .unwrap_or(u64::MAX);
                let remaining_work = bucket_nodes.len() as u64;
                let inner2 = Arc::clone(inner);
                let chunk2 = Arc::clone(chunk);
                // The first bucket also pre-decodes the union of source
                // frames the whole subtree needs, so later buckets only
                // run augmentation.
                let decode_targets: Vec<NodeId> = if b == 0 { todo.clone() } else { Vec::new() };
                inner.sched.submit(Job {
                    kind: JobKind::PreMaterialize,
                    deadline,
                    remaining_work,
                    run: Box::new(move || {
                        let mut nodes = bucket_nodes;
                        nodes.sort_by_key(|&id| chunk2.deadlines[id].unwrap_or(u64::MAX));
                        let mut scratch: HashMap<NodeId, Arc<Frame>> = HashMap::new();
                        if !decode_targets.is_empty() {
                            // One GOP-efficient pass for the whole chunk;
                            // decoded frames persist in the store.
                            let _ = Self::predecode_nodes(
                                &inner2,
                                &chunk2,
                                &decode_targets,
                                &mut scratch,
                            );
                        }
                        for id in nodes {
                            // Failures here only delay demand-path work;
                            // they are not fatal to training.
                            let _ = Self::materialize_rec(&inner2, &chunk2, id, &mut scratch);
                        }
                        // Dropping `scratch` frees the raw decoded frames,
                        // as the paper requires once a subtree completes.
                    }),
                });
            }
        }
        Self::report_pressure(inner);
    }

    /// Reports store memory pressure to the scheduler.
    fn report_pressure(inner: &Arc<Inner>) {
        let stats = inner.store.stats();
        let frac = stats.memory_bytes as f64 / inner.config.store.memory_budget as f64;
        inner.sched.set_memory_pressure(frac);
    }

    /// Decodes one frame through the video's warm demand session,
    /// merging the session's work into the engine meter.
    fn decode_one(inner: &Arc<Inner>, video_id: u64, frame: usize) -> Result<Frame> {
        let session = {
            let mut warm = inner.warm_decoders.lock();
            if let Some(s) = warm.get(&video_id) {
                Arc::clone(s)
            } else {
                let entry = inner
                    .dataset
                    .get(video_id)
                    .ok_or_else(|| CoreError::UnknownView {
                        what: format!("video {video_id} not in dataset"),
                    })?;
                if warm.len() >= WARM_SESSION_CAP {
                    // Drop an arbitrary session to bound resident anchors.
                    if let Some(k) = warm.keys().next().copied() {
                        warm.remove(&k);
                    }
                }
                let s = Arc::new(Mutex::new(WarmDecoder::new(Arc::clone(&entry.encoded))));
                warm.insert(video_id, Arc::clone(&s));
                s
            }
        };
        let mut dec = session.lock();
        let f = dec.decode_frame(frame)?;
        inner.decode_stats.lock().merge(&dec.take_stats());
        Ok(f)
    }

    /// Materializes a node, consulting (and feeding) the store and a
    /// per-job scratch cache of raw frames.
    fn materialize_rec(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        id: NodeId,
        scratch: &mut HashMap<NodeId, Arc<Frame>>,
    ) -> Result<Arc<Frame>> {
        if let Some(f) = scratch.get(&id) {
            return Ok(Arc::clone(f));
        }
        let node = &chunk.graph.nodes[id];
        let key = store_key(&node.key);
        if inner.store.contains(&key) {
            if let Ok(bytes) = inner.store.get(&key) {
                match decompress_frame(&bytes) {
                    Ok(f) => {
                        let f = Arc::new(f);
                        scratch.insert(id, Arc::clone(&f));
                        return Ok(f);
                    }
                    Err(_) => {
                        // A corrupt cached object (e.g. a torn write from
                        // a crash) must never fail serving: drop it and
                        // fall through to recomputation.
                        let _ = inner.store.remove(&key);
                    }
                }
            }
        }
        let frame = match &node.key {
            ObjectKey::Video { .. } => {
                return Err(CoreError::UnknownView {
                    what: "video roots are not frame objects".into(),
                })
            }
            ObjectKey::Frame { video_id, frame } => Self::decode_one(inner, *video_id, *frame)?,
            ObjectKey::Aug { .. } => {
                let parent = node.parent.ok_or_else(|| CoreError::State {
                    what: "aug node without parent".into(),
                })?;
                let src = Self::materialize_rec(inner, chunk, parent, scratch)?;
                // One descendant materialized: burn one of the parent's
                // retained uses so spent frames become evictable.
                inner
                    .store
                    .mark_used(&store_key(&chunk.graph.nodes[parent].key));
                let op = node.op.as_ref().ok_or_else(|| CoreError::State {
                    what: "aug node without op".into(),
                })?;
                inner.aug_ops_applied.fetch_add(1, Ordering::Relaxed);
                if let sand_graph::ResolvedOp::Custom { name } = op {
                    // Custom ops execute through the RPC-style service.
                    let client =
                        inner
                            .config
                            .aug_service
                            .as_ref()
                            .ok_or_else(|| CoreError::State {
                                what: format!(
                                    "pipeline uses custom op `{name}` but no augmentation \
                                 service is configured"
                                ),
                            })?;
                    client.apply(name, &src)?
                } else {
                    let frame_op = op.to_frame_op()?.ok_or_else(|| CoreError::State {
                        what: "normalize is not a frame op".into(),
                    })?;
                    frame_op.apply(&src)?
                }
            }
        };
        if node.cached {
            let meta = ObjectMeta {
                deadline: chunk.deadlines[id],
                future_uses: chunk.future_uses[id],
            };
            inner.store.put(&key, compress_frame(&frame).into(), meta)?;
        }
        let frame = Arc::new(frame);
        scratch.insert(id, Arc::clone(&frame));
        Ok(frame)
    }

    /// Pre-decodes, in one GOP-efficient pass per video, every source
    /// frame the target nodes need that is not otherwise covered, filling
    /// `scratch` with the decoded frames.
    fn predecode_nodes(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        targets: &[NodeId],
        scratch: &mut HashMap<NodeId, Arc<Frame>>,
    ) -> Result<()> {
        // (video, frame node, frame index) for every uncovered target.
        let mut missing: Vec<(u64, NodeId, usize)> = Vec::new();
        for &target in targets {
            // Walk up from the target: if any ancestor-or-self is in the
            // store or scratch, decode is unnecessary.
            let mut cur = Some(target);
            let mut frame_node: Option<(u64, NodeId, usize)> = None;
            let mut covered = false;
            while let Some(nid) = cur {
                if scratch.contains_key(&nid)
                    || inner
                        .store
                        .contains(&store_key(&chunk.graph.nodes[nid].key))
                {
                    covered = true;
                    break;
                }
                if let ObjectKey::Frame { video_id, frame } = chunk.graph.nodes[nid].key {
                    frame_node = Some((video_id, nid, frame));
                }
                cur = chunk.graph.nodes[nid].parent;
            }
            if !covered {
                if let Some(fn_) = frame_node {
                    if !missing.contains(&fn_) {
                        missing.push(fn_);
                    }
                }
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        // Group by video and decode each group in one pass.
        missing.sort_by_key(|&(v, _, f)| (v, f));
        let mut i = 0;
        while i < missing.len() {
            let video_id = missing[i].0;
            let mut group = Vec::new();
            while i < missing.len() && missing[i].0 == video_id {
                group.push((missing[i].1, missing[i].2));
                i += 1;
            }
            let entry = inner
                .dataset
                .get(video_id)
                .ok_or_else(|| CoreError::UnknownView {
                    what: format!("video {video_id} not in dataset"),
                })?;
            let indices: Vec<usize> = group.iter().map(|&(_, f)| f).collect();
            let mut dec = Decoder::with_threads(&entry.encoded, inner.config.decode_threads);
            let frames = dec.decode_indices(&indices)?;
            inner.decode_stats.lock().merge(dec.stats());
            for ((nid, _), frame) in group.into_iter().zip(frames) {
                // Persist the decoded frame: whether or not the pruning
                // pass marked it cached, keeping it until its descendants
                // materialize saves re-decoding in later epoch buckets.
                // Objects whose future uses run out are first in the
                // eviction order, so this never outlives its usefulness.
                let node = &chunk.graph.nodes[nid];
                if !inner.store.contains(&store_key(&node.key)) {
                    let meta = ObjectMeta {
                        deadline: chunk.deadlines[nid],
                        future_uses: chunk.future_uses[nid],
                    };
                    inner
                        .store
                        .put(&store_key(&node.key), compress_frame(&frame).into(), meta)?;
                }
                scratch.insert(nid, Arc::new(frame));
            }
        }
        Ok(())
    }

    /// Materializes every frame of one sample (demand path).
    fn materialize_sample(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        plan: &sand_graph::SamplePlan,
    ) -> Result<Vec<Arc<Frame>>> {
        let mut scratch = HashMap::new();
        Self::predecode_nodes(inner, chunk, &plan.frame_nodes, &mut scratch)?;
        plan.frame_nodes
            .iter()
            .map(|&t| Self::materialize_rec(inner, chunk, t, &mut scratch))
            .collect()
    }

    /// Finds the batch plan for (task tag, epoch, iteration).
    fn find_batch<'c>(
        inner: &Arc<Inner>,
        chunk: &'c Chunk,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) -> Result<&'c BatchRef> {
        let task_id = *inner
            .task_ids
            .get(task)
            .ok_or_else(|| CoreError::UnknownView {
                what: format!("unknown task `{task}`"),
            })?;
        let idx = chunk
            .batch_index
            .get(&(task_id, epoch, iteration))
            .ok_or_else(|| CoreError::UnknownView {
                what: format!("no batch for {task}/{epoch}/{iteration}"),
            })?;
        Ok(&chunk.graph.batches[*idx])
    }

    /// Serves a training batch as serialized tensor bytes.
    fn serve_batch(inner: &Arc<Inner>, task: &str, epoch: u64, iteration: u64) -> Result<Vec<u8>> {
        let chunk = Self::ensure_chunk(inner, epoch)?;
        let batch = Self::find_batch(inner, &chunk, task, epoch, iteration)?.clone();
        inner.store.set_clock(batch.clock);
        Self::report_pressure(inner);
        // Fan the samples out as demand jobs so feeding parallelizes and
        // preempts pre-materialization. Each job performs the final
        // normalization too, keeping the serving thread off the critical
        // path (the paper's demand-feeding threads perform "final steps
        // of the preprocessing pipeline").
        let (tx, rx) = crossbeam::channel::bounded(batch.samples.len());
        for (i, plan) in batch.samples.iter().enumerate() {
            let inner2 = Arc::clone(inner);
            let chunk2 = Arc::clone(&chunk);
            let plan2 = plan.clone();
            let tx2 = tx.clone();
            inner.sched.submit(Job {
                kind: JobKind::Demand,
                deadline: batch.clock,
                remaining_work: plan.frame_nodes.len() as u64,
                run: Box::new(move || {
                    let result =
                        Self::materialize_sample(&inner2, &chunk2, &plan2).and_then(|clip| {
                            let channels = clip.first().map_or(3, |f| f.channels());
                            let (mean, std) = match &plan2.normalize {
                                Some((m, s)) => (m.clone(), s.clone()),
                                None => (vec![0.0; channels], vec![1.0; channels]),
                            };
                            let refs: Vec<&Frame> = clip.iter().map(Arc::as_ref).collect();
                            Ok(clip_refs_to_tensor(&refs, &mean, &std)?)
                        });
                    let _ = tx2.send((i, result));
                }),
            });
        }
        drop(tx);
        let mut tensors: Vec<Option<sand_frame::Tensor>> = vec![None; batch.samples.len()];
        for (i, result) in rx.iter() {
            tensors[i] = Some(result?);
        }
        let tensors: Vec<sand_frame::Tensor> = tensors
            .into_iter()
            .map(|t| {
                t.ok_or_else(|| CoreError::State {
                    what: "demand job lost".into(),
                })
            })
            .collect::<Result<_>>()?;
        let batch_tensor = stack(&tensors)?;
        // Consumption bookkeeping: decrement future uses of terminals.
        for plan in &batch.samples {
            for &t in &plan.frame_nodes {
                inner.store.mark_used(&store_key(&chunk.graph.nodes[t].key));
            }
        }
        inner.store.enforce_budgets()?;
        Self::report_pressure(inner);
        inner.batches_served.fetch_add(1, Ordering::Relaxed);
        Ok(batch_tensor.to_bytes())
    }

    /// Class labels of a batch, in sample order.
    fn batch_labels(
        inner: &Arc<Inner>,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) -> Result<Vec<u32>> {
        let chunk = Self::ensure_chunk(inner, epoch)?;
        let batch = Self::find_batch(inner, &chunk, task, epoch, iteration)?;
        batch
            .samples
            .iter()
            .map(|s| {
                inner
                    .dataset
                    .get(s.video_id)
                    .map(|v| v.class_id)
                    .ok_or_else(|| CoreError::UnknownView {
                        what: format!("video {} not in dataset", s.video_id),
                    })
            })
            .collect()
    }
}

impl ViewProvider for SandEngine {
    fn fetch(&self, path: &ViewPath) -> sand_vfs::Result<Arc<Vec<u8>>> {
        let io = |e: CoreError| VfsError::Io {
            what: e.to_string(),
        };
        match path {
            ViewPath::Batch {
                task,
                epoch,
                iteration,
            } => Inner::serve_batch(&self.inner, task, *epoch, *iteration)
                .map(Arc::new)
                .map_err(io),
            ViewPath::Video { video, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                Ok(Arc::new(entry.encoded.to_bytes()))
            }
            ViewPath::Frame { video, index, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                // Zero-copy fast path: a materialized frame object in the
                // store is served as the very allocation the decoder put
                // there (validated, since store files can be torn).
                let key = store_key(&ObjectKey::Frame {
                    video_id: entry.video_id,
                    frame: *index as usize,
                });
                if let Ok(bytes) = self.inner.store.get(&key) {
                    if decompress_frame(&bytes).is_ok() {
                        return Ok(bytes);
                    }
                    let _ = self.inner.store.remove(&key);
                }
                let f =
                    Inner::decode_one(&self.inner, entry.video_id, *index as usize).map_err(io)?;
                Ok(Arc::new(compress_frame(&f)))
            }
            ViewPath::AugFrame {
                video,
                index,
                depth,
                ..
            } => {
                // Serve any planned augmented object at this (frame, depth)
                // from the most recently planned chunk.
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                let chunks = self.inner.chunks.lock();
                let mut best: Option<(u64, Arc<Chunk>)> = None;
                for (id, c) in chunks.iter() {
                    if best.as_ref().is_none_or(|(b, _)| id > b) {
                        best = Some((*id, Arc::clone(c)));
                    }
                }
                drop(chunks);
                let (_, chunk) = best.ok_or_else(|| VfsError::Io {
                    what: "no planned chunk".into(),
                })?;
                let node = chunk
                    .graph
                    .nodes
                    .iter()
                    .find(|n| match &n.key {
                        ObjectKey::Aug {
                            video_id,
                            frame,
                            chain,
                        } => {
                            *video_id == entry.video_id
                                && *frame == *index as usize
                                && chain.len() == *depth as usize
                        }
                        _ => false,
                    })
                    .ok_or_else(|| VfsError::NoSuchView {
                        path: path.to_string(),
                    })?;
                let node_id = node.id;
                let node_key = store_key(&node.key);
                let mut scratch = HashMap::new();
                let f = Inner::materialize_rec(&self.inner, &chunk, node_id, &mut scratch)
                    .map_err(io)?;
                // Materialization caches planned objects; serve the stored
                // allocation when present instead of re-compressing.
                if let Ok(bytes) = self.inner.store.get(&node_key) {
                    if decompress_frame(&bytes).is_ok() {
                        return Ok(bytes);
                    }
                }
                Ok(Arc::new(compress_frame(&f)))
            }
        }
    }

    fn metadata(&self, path: &ViewPath, name: &str) -> sand_vfs::Result<String> {
        let no_attr = || VfsError::NoAttr {
            name: name.to_string(),
        };
        match path {
            ViewPath::Batch {
                task,
                epoch,
                iteration,
            } => match name {
                "shape" => {
                    let chunk =
                        Inner::ensure_chunk(&self.inner, *epoch).map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    let batch = Inner::find_batch(&self.inner, &chunk, task, *epoch, *iteration)
                        .map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    let n = batch.samples.len();
                    let (t, dims) = batch
                        .samples
                        .first()
                        .map(|s| {
                            let terminal = s.frame_nodes.last().copied();
                            let dims = terminal
                                .map(|id| chunk.graph.nodes[id].dims)
                                .unwrap_or((0, 0));
                            (s.frame_indices.len(), dims)
                        })
                        .unwrap_or((0, (0, 0)));
                    Ok(format!("{n},3,{t},{},{}", dims.1, dims.0))
                }
                "labels" => {
                    let labels = Inner::batch_labels(&self.inner, task, *epoch, *iteration)
                        .map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    Ok(labels
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(","))
                }
                "timestamps" => {
                    let chunk =
                        Inner::ensure_chunk(&self.inner, *epoch).map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    let batch = Inner::find_batch(&self.inner, &chunk, task, *epoch, *iteration)
                        .map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    Ok(batch
                        .samples
                        .iter()
                        .map(|s| {
                            s.frame_indices
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(":")
                        })
                        .collect::<Vec<_>>()
                        .join(","))
                }
                _ => Err(no_attr()),
            },
            ViewPath::Video { video, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                match name {
                    "frames" => Ok(entry.encoded.frame_count().to_string()),
                    "class" => Ok(entry.class_id.to_string()),
                    "width" => Ok(entry.encoded.header.width.to_string()),
                    "height" => Ok(entry.encoded.header.height.to_string()),
                    _ => Err(no_attr()),
                }
            }
            ViewPath::Frame { video, index, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                match name {
                    "timestamp_us" => Ok(entry
                        .encoded
                        .header
                        .timestamp_us(*index as usize)
                        .to_string()),
                    "video_id" => Ok(entry.video_id.to_string()),
                    _ => Err(no_attr()),
                }
            }
            ViewPath::AugFrame { .. } => Err(no_attr()),
        }
    }

    fn released(&self, path: &ViewPath) {
        // Closing a batch view ends its iteration: spent memory-tier
        // objects (future_uses == 0) are freed promptly by the watermark
        // machinery on the next enforce.
        if matches!(path, ViewPath::Batch { .. }) {
            let _ = self.inner.store.enforce_budgets();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_codec::{DatasetSpec, EncoderConfig};
    use sand_config::parse_task_config;
    use sand_frame::Tensor;

    const TASK: &str = r#"
dataset:
  tag: train
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
    - name: c
      branch_type: single
      inputs: ["a0"]
      outputs: ["a1"]
      config:
        - random_crop:
            shape: [8, 8]
        - normalize:
            mean: [0.45, 0.45, 0.45]
            std: [0.225, 0.225, 0.225]
"#;

    fn dataset() -> Arc<Dataset> {
        Arc::new(
            Dataset::generate(&DatasetSpec {
                num_videos: 4,
                num_classes: 2,
                width: 32,
                height: 32,
                frames_per_video: 24,
                encoder: EncoderConfig {
                    gop_size: 6,
                    quantizer: 4,
                    fps_milli: 30_000,
                    b_frames: 0,
                },
                ..Default::default()
            })
            .unwrap(),
        )
    }

    fn engine(prematerialize: bool) -> SandEngine {
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize,
            total_epochs: 4,
            epochs_per_chunk: 2,
            ..Default::default()
        };
        SandEngine::new(config, dataset()).unwrap()
    }

    #[test]
    fn serves_batches_with_expected_shape() {
        let e = engine(false);
        e.start().unwrap();
        let bytes = e.serve_batch("train", 0, 0).unwrap();
        let t = Tensor::from_bytes(&bytes).unwrap();
        // 2 videos/batch, (C=3, T=4, H=8, W=8).
        assert_eq!(t.shape(), &[2, 3, 4, 8, 8]);
    }

    #[test]
    fn batches_cover_epoch_once() {
        let e = engine(false);
        e.start().unwrap();
        let iters = e.iterations_per_epoch("train").unwrap();
        assert_eq!(iters, 2);
        for it in 0..iters {
            e.serve_batch("train", 0, it).unwrap();
        }
        assert_eq!(e.stats().batches_served, 2);
    }

    #[test]
    fn serving_is_deterministic_given_seed() {
        let a = engine(false);
        a.start().unwrap();
        let b = engine(false);
        b.start().unwrap();
        assert_eq!(
            a.serve_batch("train", 0, 0).unwrap(),
            b.serve_batch("train", 0, 0).unwrap()
        );
        assert_eq!(
            a.serve_batch("train", 1, 1).unwrap(),
            b.serve_batch("train", 1, 1).unwrap()
        );
    }

    #[test]
    fn prematerialization_eliminates_demand_decode() {
        let e = engine(true);
        e.start().unwrap();
        e.wait_idle();
        let decoded_before = e.stats().decode.frames_decoded;
        assert!(decoded_before > 0, "pre-materialization decoded nothing");
        for it in 0..2 {
            e.serve_batch("train", 0, it).unwrap();
        }
        let decoded_after = e.stats().decode.frames_decoded;
        assert_eq!(
            decoded_before, decoded_after,
            "serving pre-materialized epoch must not decode"
        );
    }

    #[test]
    fn second_epoch_of_chunk_reuses_nothing_spurious() {
        // Serving both epochs of a chunk works and covers every video.
        let e = engine(true);
        e.start().unwrap();
        e.wait_idle();
        for epoch in 0..2 {
            for it in 0..2 {
                let bytes = e.serve_batch("train", epoch, it).unwrap();
                assert!(!bytes.is_empty());
            }
        }
    }

    #[test]
    fn next_chunk_planned_on_demand() {
        let e = engine(false);
        e.start().unwrap();
        // Epoch 2 is in chunk 1.
        let bytes = e.serve_batch("train", 2, 0).unwrap();
        assert!(!bytes.is_empty());
    }

    #[test]
    fn epoch_beyond_total_rejected() {
        let e = engine(false);
        e.start().unwrap();
        assert!(matches!(
            e.serve_batch("train", 99, 0),
            Err(CoreError::State { .. })
        ));
    }

    #[test]
    fn unknown_task_and_iteration_rejected() {
        let e = engine(false);
        e.start().unwrap();
        assert!(matches!(
            e.serve_batch("nope", 0, 0),
            Err(CoreError::UnknownView { .. })
        ));
        assert!(matches!(
            e.serve_batch("train", 0, 999),
            Err(CoreError::UnknownView { .. })
        ));
    }

    #[test]
    fn vfs_roundtrip_batch_and_metadata() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        let fd = vfs.open("/train/0/0/view").unwrap();
        let bytes = vfs.read_to_end(fd).unwrap();
        let t = Tensor::from_bytes(&bytes).unwrap();
        assert_eq!(t.shape()[0], 2);
        let labels = vfs.getxattr(fd, "labels").unwrap();
        assert_eq!(labels.split(',').count(), 2);
        let ts = vfs.getxattr(fd, "timestamps").unwrap();
        assert_eq!(ts.split(',').count(), 2);
        // The shape xattr matches the tensor actually served.
        let shape = vfs.getxattr(fd, "shape").unwrap();
        let dims: Vec<usize> = shape.split(',').map(|s| s.parse().unwrap()).collect();
        assert_eq!(&dims[..], t.shape());
        vfs.close(fd).unwrap();
    }

    #[test]
    fn vfs_serves_video_frame_and_aug_views() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        // Video view: container bytes round-trip.
        let fd = vfs.open("/train/video0001.svid").unwrap();
        let bytes = vfs.read_to_end(fd).unwrap();
        assert!(sand_codec::EncodedVideo::from_bytes(&bytes).is_ok());
        assert_eq!(vfs.getxattr(fd, "frames").unwrap(), "24");
        vfs.close(fd).unwrap();
        // Frame view: a self-describing compressed frame.
        let fd = vfs.open("/train/video0001/frame5").unwrap();
        let bytes = vfs.read_to_end(fd).unwrap();
        let f = decompress_frame(&bytes).unwrap();
        assert_eq!((f.width(), f.height()), (32, 32));
        assert_eq!(vfs.getxattr(fd, "video_id").unwrap(), "1");
        vfs.close(fd).unwrap();
    }

    #[test]
    fn warm_demand_reads_skip_keyframe_redecode() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        let read = |i: usize| {
            let fd = vfs.open(&format!("/train/video0001/frame{i}")).unwrap();
            let bytes = vfs.read_to_end(fd).unwrap();
            vfs.close(fd).unwrap();
            bytes
        };
        // Cold read: walks keyframe 0 then frame 1 (gop_size = 6).
        let first = read(1);
        let s1 = e.stats().decode;
        assert_eq!(s1.i_frames_decoded, 1);
        assert_eq!(s1.frames_decoded, 2);
        // Forward in the same GOP: the warm session resumes its chain at
        // frame 1 and decodes 2..=3 only — zero keyframe re-decodes.
        read(3);
        let s2 = e.stats().decode;
        assert_eq!(s2.i_frames_decoded, 1, "keyframe re-decoded on warm read");
        assert_eq!(s2.frames_decoded, 4);
        // A different GOP restarts cold from its own keyframe.
        read(13);
        assert_eq!(e.stats().decode.i_frames_decoded, 2);
        // Warm-session bytes equal a cold decode of the same frame.
        let ds = dataset();
        let entry = ds.get(1).unwrap();
        let mut cold = Decoder::new(&entry.encoded);
        let want = cold.decode_indices(&[1]).unwrap();
        assert_eq!(first, compress_frame(&want[0]));
    }

    #[test]
    fn aug_view_reachable_after_planning() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        // Find a planned frame index through batch timestamps.
        let ts = vfs.getxattr_path("/train/0/0/view", "timestamps").unwrap();
        let first_frame: u64 = ts
            .split(',')
            .next()
            .unwrap()
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // Depth 1 = after resize.
        let path = format!("/train/video0000/frame{first_frame}/aug1");
        // The frame may belong to a different video in this batch; try all.
        let mut served = false;
        for v in 0..4 {
            let p = format!("/train/video{v:04}/frame{first_frame}/aug1");
            if let Ok(fd) = vfs.open(&p) {
                let bytes = vfs.read_to_end(fd).unwrap();
                let f = decompress_frame(&bytes).unwrap();
                assert_eq!((f.width(), f.height()), (16, 16));
                vfs.close(fd).unwrap();
                served = true;
                break;
            }
        }
        assert!(served, "no aug view served for {path}");
    }

    #[test]
    fn recovery_skips_recomputation() {
        let dir = std::env::temp_dir().join(format!("sand_recover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = || {
            let config = EngineConfig {
                tasks: vec![parse_task_config(TASK).unwrap()],
                prematerialize: true,
                total_epochs: 2,
                epochs_per_chunk: 2,
                store_dir: Some(dir.clone()),
                store: StoreConfig {
                    // Small memory + horizon 0 pushes everything to disk.
                    memory_budget: 4 << 20,
                    disk_budget: 512 << 20,
                    evict_watermark: 0.75,
                    memory_horizon: 0,
                },
                ..Default::default()
            };
            SandEngine::new(config, dataset()).unwrap()
        };
        let first = mk();
        first.start().unwrap();
        first.wait_idle();
        let decoded_first = first.stats().decode.frames_decoded;
        assert!(decoded_first > 0);
        drop(first);
        // "Crash" and restart over the same store dir.
        let second = mk();
        second.start().unwrap();
        second.wait_idle();
        assert_eq!(
            second.stats().decode.frames_decoded,
            0,
            "recovery must not re-decode persisted objects"
        );
        // And the recovered engine still serves correct batches.
        let bytes = second.serve_batch("train", 0, 0).unwrap();
        assert!(!bytes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SandEngine::new(EngineConfig::default(), dataset()).is_err());
        let mut cfg = EngineConfig {
            tasks: vec![
                parse_task_config(TASK).unwrap(),
                parse_task_config(TASK).unwrap(),
            ],
            ..Default::default()
        };
        assert!(SandEngine::new(cfg.clone(), dataset()).is_err()); // duplicate tag
        cfg.tasks.pop();
        cfg.total_epochs = 0;
        assert!(SandEngine::new(cfg, dataset()).is_err());
    }

    #[test]
    fn custom_op_pipeline_serves_through_service() {
        const CUSTOM_TASK: &str = r#"
dataset:
  tag: custom
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
        - custom:
            name: invert_custom
"#;
        let service = crate::service::AugService::builder()
            .register(
                "invert_custom",
                Box::new(|mut f: Frame| {
                    for b in f.as_bytes_mut() {
                        *b = 255 - *b;
                    }
                    Ok(f)
                }),
            )
            .start();
        let config = EngineConfig {
            tasks: vec![parse_task_config(CUSTOM_TASK).unwrap()],
            total_epochs: 1,
            epochs_per_chunk: 1,
            aug_service: Some(service.client()),
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        let bytes = e.serve_batch("custom", 0, 0).unwrap();
        let t = Tensor::from_bytes(&bytes).unwrap();
        assert_eq!(t.shape(), &[2, 3, 4, 16, 16]);
        // Without the service, the same pipeline fails with a clear error.
        let config = EngineConfig {
            tasks: vec![parse_task_config(CUSTOM_TASK).unwrap()],
            total_epochs: 1,
            epochs_per_chunk: 1,
            prematerialize: false,
            ..Default::default()
        };
        let e2 = SandEngine::new(config, dataset()).unwrap();
        e2.start().unwrap();
        let err = e2.serve_batch("custom", 0, 0).unwrap_err();
        assert!(err.to_string().contains("augmentation"), "{err}");
    }

    #[test]
    fn corrupt_cached_object_recomputed_not_fatal() {
        let dir = std::env::temp_dir().join(format!("sand_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            total_epochs: 1,
            epochs_per_chunk: 1,
            store_dir: Some(dir.clone()),
            store: StoreConfig {
                memory_horizon: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        e.wait_idle();
        // Corrupt every persisted object (simulating torn writes).
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_file() {
                std::fs::write(&path, b"garbage").unwrap();
            }
        }
        // Serving must still succeed by recomputing from source.
        let bytes = e.serve_batch("train", 0, 0).unwrap();
        assert!(!bytes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_checkpoints_written_and_reused() {
        let dir = std::env::temp_dir().join(format!("sand_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = || {
            let config = EngineConfig {
                tasks: vec![parse_task_config(TASK).unwrap()],
                total_epochs: 2,
                epochs_per_chunk: 2,
                store_dir: Some(dir.clone()),
                prematerialize: false,
                ..Default::default()
            };
            SandEngine::new(config, dataset()).unwrap()
        };
        let a = mk();
        a.start().unwrap();
        let first = a.serve_batch("train", 0, 0).unwrap();
        let ckpt = dir.join("_meta").join("graph_chunk_0.ckpt");
        assert!(ckpt.exists(), "checkpoint written at {}", ckpt.display());
        drop(a);
        // A restarted engine loads the checkpointed plan and serves the
        // same batch bytes.
        let b = mk();
        b.start().unwrap();
        assert_eq!(b.serve_batch("train", 0, 0).unwrap(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coordinated_two_tasks_share_store_objects() {
        let mut t2 = parse_task_config(TASK).unwrap();
        t2.tag = "second".into();
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap(), t2],
            prematerialize: false,
            total_epochs: 1,
            epochs_per_chunk: 1,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        for it in 0..2 {
            e.serve_batch("train", 0, it).unwrap();
        }
        let decoded_after_first_task = e.stats().decode.frames_decoded;
        for it in 0..2 {
            e.serve_batch("second", 0, it).unwrap();
        }
        let decoded_after_second_task = e.stats().decode.frames_decoded;
        // The second task's identical pipeline reuses the first task's
        // cached terminals: no (or almost no) extra decoding.
        assert!(
            decoded_after_second_task <= decoded_after_first_task,
            "second task re-decoded: {decoded_after_first_task} -> {decoded_after_second_task}"
        );
    }

    #[test]
    fn lint_deny_fails_startup() {
        // A 1-byte cache budget cannot hold a single batch: SL020 at
        // deny level must reject startup before any chunk is planned.
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: false,
            cache_budget: 1,
            prune: false,
            lint: LintLevel::Deny,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        match e.start() {
            Err(CoreError::Lint { denies, report }) => {
                assert!(denies >= 1);
                assert!(report.contains("SL020"), "{report}");
            }
            other => panic!("expected CoreError::Lint, got {other:?}"),
        }
    }

    #[test]
    fn lint_warn_reports_but_serves() {
        // Same infeasible budget at warn level: startup succeeds.
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: false,
            cache_budget: 1,
            lint: LintLevel::Warn,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        e.serve_batch("train", 0, 0).unwrap();
    }

    #[test]
    fn lint_clean_config_stays_silent() {
        let e = engine(false);
        // The default test workload is feasible; deny level still starts.
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: false,
            lint: LintLevel::Deny,
            ..Default::default()
        };
        let strict = SandEngine::new(config, dataset()).unwrap();
        strict.start().unwrap();
        drop(e);
    }
}
