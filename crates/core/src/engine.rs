//! The SAND engine.

use crate::keys::store_key;
use crate::prefetch::Prefetcher;
use crate::{CoreError, Result};
use sand_autotune::{AutotuneConfig, Controller, Decision, KnobValues};
use sand_codec::{Dataset, DecodeStats, Decoder, WarmDecoder};
use sand_config::TaskConfig;
use sand_frame::tensor::{clip_refs_to_tensor, stack};
use sand_frame::{compress_frame, decompress_frame, Frame};
use sand_graph::{
    prune_to_budget, AbstractGraph, BatchRef, ConcreteGraph, NodeId, ObjectKey, PlanInput, Planner,
    PlannerOptions,
};
use sand_lint::{lint_all, AutotuneClamp, FleetLint, LintLevel, LintOptions, RemoteLint};
use sand_net::{RemoteTier, RemoteTierConfig};
use sand_sanitizer::{ShadowCell, TrackedCondvar, TrackedMutex};
use sand_sched::{Job, JobKind, SchedConfig, Scheduler};
use sand_storage::{ObjectMeta, ObjectStore, StoreConfig, Tier};
use sand_telemetry::{
    record_stage, AutotuneMetrics, BatchMeta, CodecMetrics, EngineMetrics, FleetMetrics,
    MaterializeMetrics, PrefetchMetrics, SchedMetrics, Snapshot, Stage, StallReport, StoreMetrics,
    Telemetry, TelemetryConfig, TenantMetrics, VfsMetrics,
};
use sand_vfs::{SandVfs, VfsError, ViewPath, ViewProvider};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// All tasks sharing this engine (and dataset).
    pub tasks: Vec<TaskConfig>,
    /// Object store tiers and budgets.
    pub store: StoreConfig,
    /// Disk-tier directory (`None` = memory-only store).
    pub store_dir: Option<PathBuf>,
    /// Worker pool configuration.
    pub sched: SchedConfig,
    /// Global seed for planning and coordinated draws.
    pub seed: u64,
    /// Coordinated randomization (SAND) vs. independent (ablation).
    pub coordinate: bool,
    /// Epochs per concrete-graph chunk (the paper's `k`).
    pub epochs_per_chunk: u64,
    /// Total training epochs.
    pub total_epochs: u64,
    /// Cache budget for Algorithm 1 pruning, in bytes.
    pub cache_budget: u64,
    /// Whether to run the pruning pass (off = naive leaf caching).
    pub prune: bool,
    /// Naive baseline: cache only the final (leaf) training objects,
    /// ignoring intermediates — the comparison point of Fig. 17.
    pub naive_leaf_cache: bool,
    /// Client of a running custom-augmentation service; required when any
    /// pipeline uses `custom:` ops.
    pub aug_service: Option<crate::service::AugClient>,
    /// Whether to pre-materialize ahead of demand.
    pub prematerialize: bool,
    /// Epoch-ahead batch prefetch depth: serving batch `n` speculatively
    /// materializes batches `n+1..=n+depth` (consumption order, within
    /// the current chunk) on the worker pool at a priority below demand,
    /// so the trainer's next read is a cache hit instead of an inline
    /// materialization. `0` (default) disables prefetching entirely —
    /// provably behaviour-identical: served bytes never depend on the
    /// depth (`prop_prefetch_parity`).
    pub prefetch_depth: usize,
    /// Threads used to decode independent keyframe segments of one video
    /// concurrently during pre-materialization (closed GOPs make the
    /// segments independent). `1` keeps decodes sequential.
    pub decode_threads: usize,
    /// Sub-jobs one video's materialize bucket fans out into: chains over
    /// different source frames run as independent scheduler jobs sharing
    /// a per-video scratch. `1` keeps each bucket a single job. Task
    /// configs may raise this via `execution.aug_threads`.
    pub aug_threads: usize,
    /// Bound on live warm demand-decode sessions; each holds at most one
    /// reconstructed frame. Least-recently-used sessions are evicted at
    /// the cap.
    pub warm_session_cap: usize,
    /// Static-analysis level for the startup lint pass: `Off` skips it,
    /// `Warn` reports findings to stderr, `Deny` additionally fails
    /// startup on any deny-severity finding.
    pub lint: LintLevel,
    /// Observability: `Some` enables the telemetry subsystem (metric
    /// registry, per-batch stall attribution, JSONL export); `None`
    /// (default) disables it entirely — instrumented paths never read
    /// the clock, pinned by `benches/telemetry_overhead.rs`.
    pub telemetry: Option<TelemetryConfig>,
    /// Closed-loop adaptive control: `Some` runs a controller that
    /// periodically reads the telemetry snapshot and retunes the runtime
    /// knobs (prefetch depth, demand slack, aug/decode thread split)
    /// online, with hysteresis and hard clamps. `None` (default) keeps
    /// every knob static and adds zero overhead to the serve path,
    /// pinned by `benches/autotune_overhead.rs`. Requires telemetry
    /// (lint SL034 denies the combination `autotune` without it).
    pub autotune: Option<AutotuneConfig>,
    /// Multi-node operation: `Some` joins a cluster of SAND engines on a
    /// consistent-hash placement ring and adds a **remote tier** below
    /// mem/disk — a local store miss consults the key's ring owner before
    /// materializing, and locally-computed remote-owned objects are
    /// pushed to their owner, so a shared-ancestor object materializes at
    /// most once cluster-wide. Degraded peers (timeouts, refused
    /// connections) fall back to local materialization — never a wrong
    /// answer. `None` (default) is single-process with zero overhead.
    pub remote: Option<RemoteTierConfig>,
    /// Multi-tenant operation: `Some` names the tenants sharing this
    /// engine, maps each task to its tenant, and installs the tenants'
    /// QoS weights on the scheduler's virtual-time ledger. Batches and
    /// demand jobs are attributed to their tenant (`tenant.<id>.*`
    /// metrics, per-tenant stall sections). `None` (default) is
    /// single-tenant; jobs run untenanted at zero virtual time —
    /// exactly the pre-fleet bounded-EDF order. Usually installed by
    /// [`crate::fleet::Fleet`], not by hand.
    pub tenancy: Option<crate::fleet::Tenancy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            tasks: Vec::new(),
            store: StoreConfig::default(),
            store_dir: None,
            sched: SchedConfig::default(),
            seed: 0x5a4d,
            coordinate: true,
            epochs_per_chunk: 2,
            total_epochs: 4,
            cache_budget: 256 << 20,
            prune: true,
            naive_leaf_cache: false,
            aug_service: None,
            prematerialize: true,
            prefetch_depth: 0,
            decode_threads: 1,
            aug_threads: 1,
            warm_session_cap: WARM_SESSION_CAP,
            lint: LintLevel::default(),
            telemetry: None,
            autotune: None,
            remote: None,
            tenancy: None,
        }
    }
}

/// Aggregate engine statistics.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Codec work performed by this engine.
    pub decode: DecodeStats,
    /// Augmentation ops actually executed.
    pub aug_ops_applied: u64,
    /// Batches served through the view interface.
    pub batches_served: u64,
    /// Store counters.
    pub store: sand_storage::StoreStats,
    /// Scheduler counters.
    pub sched: sand_sched::SchedStats,
}

/// One planned epoch chunk.
struct Chunk {
    graph: ConcreteGraph,
    /// Per-node earliest-need clock.
    deadlines: Vec<Option<u64>>,
    /// Per-node transitive consumer count (for store `future_uses`).
    future_uses: Vec<u32>,
    /// Batch lookup: (task, epoch, iteration) -> batches index.
    batch_index: HashMap<(u32, u64, u64), usize>,
}

impl Chunk {
    fn build(graph: ConcreteGraph) -> Self {
        let deadlines = graph.deadlines();
        let mut future_uses: Vec<u32> = graph
            .nodes
            .iter()
            .map(|n| n.consumers.len() as u32)
            .collect();
        // Children have larger ids; one reverse sweep accumulates subtree
        // consumer counts into ancestors.
        for id in (0..graph.nodes.len()).rev() {
            if let Some(p) = graph.nodes[id].parent {
                future_uses[p] += future_uses[id];
            }
        }
        let mut batch_index = HashMap::new();
        for (i, b) in graph.batches.iter().enumerate() {
            batch_index.insert((b.task, b.epoch, b.iteration), i);
        }
        Chunk {
            graph,
            deadlines,
            future_uses,
            batch_index,
        }
    }
}

/// Shared engine state (jobs hold an `Arc` to this).
struct Inner {
    config: EngineConfig,
    dataset: Arc<Dataset>,
    store: Arc<ObjectStore>,
    sched: Scheduler,
    chunks: TrackedMutex<HashMap<u64, Arc<Chunk>>>,
    task_ids: HashMap<String, u32>,
    decode_stats: TrackedMutex<DecodeStats>,
    /// Warm per-video decode sessions for the demand paths: a single-frame
    /// read landing forward in the GOP a session last walked resumes the
    /// live anchor chain instead of re-decoding from the keyframe. The
    /// outer lock only guards the map, so decodes on different videos
    /// proceed concurrently.
    warm_decoders: TrackedMutex<WarmPool>,
    aug_ops_applied: AtomicU64,
    batches_served: AtomicU64,
    /// The epoch-ahead prefetcher (inert at `prefetch_depth = 0`).
    prefetcher: Prefetcher,
    /// Serialized size of the most recently served batch, the
    /// back-pressure estimate for in-flight prefetch bytes.
    last_batch_bytes: AtomicU64,
    telemetry: Telemetry,
    engine_metrics: Option<EngineMetrics>,
    mat_metrics: Option<MaterializeMetrics>,
    codec_metrics: Option<CodecMetrics>,
    /// Live materialize fan-out: the runtime value of the `aug_threads`
    /// knob. Seeded from the config; retuned by the controller or
    /// [`SandEngine::set_aug_threads`]. Folded with per-task
    /// `execution.aug_threads` hints at submit time.
    aug_threads_live: AtomicUsize,
    /// Live intra-video decode fan-out, read per pre-decode pass.
    decode_threads_live: AtomicUsize,
    /// The cluster cache tier (`None` unless `EngineConfig::remote`).
    remote: Option<Arc<RemoteTier>>,
    /// Engine-wide cross-job singleflight over canonical object keys:
    /// concurrent materializations of the same object — across passes,
    /// tenants, and serve paths — collapse to one computation, with the
    /// losers adopting the winner's `Arc` zero-copy.
    flight: Flight,
    /// Tenant attribution tables (`None` unless `EngineConfig::tenancy`).
    tenancy: Option<TenancyRuntime>,
    /// Fleet dedup/admission metrics (`None` unless tenancy + telemetry).
    fleet_metrics: Option<FleetMetrics>,
    /// The adaptive controller (`None` unless `EngineConfig::autotune`).
    autotune: Option<TrackedMutex<Controller>>,
    autotune_metrics: Option<AutotuneMetrics>,
    /// Shutdown flag for the background control thread.
    autotune_stop: Arc<AtomicBool>,
    /// Background control thread handle, joined on engine drop.
    autotune_thread: TrackedMutex<Option<std::thread::JoinHandle<()>>>,
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Stop and join the control thread. It only ever holds a `Weak`
        // to this `Inner` (a live upgrade would keep us from dropping),
        // so the join is bounded by one sleep step plus one tick.
        self.autotune_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.autotune_thread.lock().take() {
            let _ = handle.join();
        }
    }
}

/// Default bound on live warm decode sessions; each holds at most one
/// reconstructed frame (`WarmDecoder::resident_bytes`).
const WARM_SESSION_CAP: usize = 64;

/// Warm demand-decode sessions, evicted least-recently-used at the cap so
/// a hot video's anchor chain survives a scan over many cold videos.
#[derive(Default)]
struct WarmPool {
    sessions: HashMap<u64, WarmSlot>,
    /// Monotonic use counter; cheaper than timestamps and immune to clock
    /// adjustments.
    tick: u64,
}

struct WarmSlot {
    session: Arc<TrackedMutex<WarmDecoder>>,
    last_used: u64,
}

/// Per-engine tenant attribution: which tenant each task belongs to and
/// each tenant's name + metric handles.
struct TenancyRuntime {
    /// `task_id` → tenant index (`None` = untenanted task).
    task_tenant: Vec<Option<u32>>,
    tenants: Vec<TenantRuntime>,
}

struct TenantRuntime {
    name: String,
    metrics: Option<TenantMetrics>,
}

/// Engine-wide singleflight claim map keyed by canonical object key
/// ([`store_key`]), the fleet's cross-job dedup layer.
///
/// The per-pass [`Scratch`] already merges duplicates *within* one
/// materialize pass; the flight extends at-most-once to concurrent
/// passes: K tenants' demand jobs racing for a shared ancestor elect one
/// winner, and every waiter adopts the winner's `Arc<Frame>` zero-copy.
/// Keys are canonical (video / frame / augmentation-chain hash), so the
/// winner's bytes are exactly what every waiter would have computed —
/// materialization is deterministic per key.
///
/// Deadlock-free by the same argument as [`Scratch`]: a claim is only
/// held by a running job, and a job only ever waits for keys strictly
/// *up* the object tree from the claims it holds, so the wait graph is
/// acyclic and bottoms out at source-frame decodes.
struct Flight {
    slots: TrackedMutex<HashMap<String, Arc<FlightSlot>>>,
}

struct FlightSlot {
    /// `None` while the winner computes; `Some(outcome)` once published.
    /// A `Some(None)` outcome means the winner failed — waiters fall
    /// back to computing the node themselves (at-most-once only has to
    /// hold for successes).
    done: TrackedMutex<Option<Option<Arc<Frame>>>>,
    cv: TrackedCondvar,
}

impl FlightSlot {
    fn new() -> Self {
        FlightSlot {
            done: TrackedMutex::new("engine.flight.done", None),
            cv: TrackedCondvar::new(),
        }
    }
}

impl Flight {
    fn new() -> Self {
        Flight {
            slots: TrackedMutex::new("engine.flight.slots", HashMap::new()),
        }
    }

    /// Claims `key` (returning the winner's slot to publish into) or
    /// joins the existing flight (returning the slot to wait on).
    fn claim_or_join(&self, key: &str) -> (Arc<FlightSlot>, bool) {
        let mut slots = self.slots.lock();
        match slots.get(key) {
            Some(s) => (Arc::clone(s), false),
            None => {
                let s = Arc::new(FlightSlot::new());
                slots.insert(key.to_string(), Arc::clone(&s));
                (s, true)
            }
        }
    }

    /// Retires the winner's claim *before* publishing, so a late
    /// arrival starts a fresh flight (its store probe will hit for
    /// cached objects) instead of adopting a stale slot.
    fn retire(&self, key: &str) {
        self.slots.lock().remove(key);
    }
}

/// A shared scratch of raw materialized frames for one materialize pass.
///
/// Every sub-job of a video shares one `Scratch`, so chains that meet at
/// a common ancestor (most often the decoded source frame) merge work: a
/// node is computed by exactly one job per pass, and everyone else either
/// reuses the result or blocks briefly while it is in flight.
///
/// Waiting is deadlock-free by construction: a claim is only ever held by
/// a *running* job, and a job only waits for slots strictly up the object
/// tree (toward smaller node ids) from claims it holds, so the wait graph
/// is acyclic and bottoms out at source-frame decodes, which never wait.
struct Scratch {
    slots: TrackedMutex<HashMap<NodeId, Slot>>,
    ready: TrackedCondvar,
    metrics: Option<MaterializeMetrics>,
    /// Lockset shadow for the once-claim map: every claim-state
    /// transition must hold the slots lock.
    claim_shadow: ShadowCell,
}

enum Slot {
    /// A running job claimed the node and is computing it.
    InFlight,
    /// Computed this pass.
    Ready(Arc<Frame>),
}

impl Scratch {
    fn new(metrics: Option<MaterializeMetrics>) -> Self {
        Scratch {
            slots: TrackedMutex::new("engine.scratch.slots", HashMap::new()),
            ready: TrackedCondvar::new(),
            metrics,
            claim_shadow: ShadowCell::new("engine.scratch.claim"),
        }
    }

    /// Returns the frame if ready; otherwise claims the slot and returns
    /// `None` — the caller now *must* call [`Scratch::fulfill`] or
    /// [`Scratch::abandon`] for this id. Blocks while another job holds
    /// the claim.
    fn get_or_claim(&self, id: NodeId) -> Option<Arc<Frame>> {
        let mut slots = self.slots.lock();
        let mut wait_t0: Option<Instant> = None;
        loop {
            match slots.get(&id) {
                Some(Slot::Ready(f)) => {
                    let f = Arc::clone(f);
                    drop(slots);
                    self.record_wait(wait_t0);
                    return Some(f);
                }
                Some(Slot::InFlight) => {
                    if wait_t0.is_none() {
                        wait_t0 = self.metrics.as_ref().map(|_| Instant::now());
                    }
                    self.ready.wait(&mut slots);
                }
                None => {
                    self.claim_shadow.write();
                    slots.insert(id, Slot::InFlight);
                    drop(slots);
                    self.record_wait(wait_t0);
                    return None;
                }
            }
        }
    }

    /// Accounts one blocked once-claim wait, if a wait actually happened.
    fn record_wait(&self, wait_t0: Option<Instant>) {
        if let (Some(m), Some(t0)) = (self.metrics.as_ref(), wait_t0) {
            m.scratch_wait_us.observe_duration(t0.elapsed());
            m.scratch_waits.inc();
        }
    }

    /// Claims `id` if it has no slot yet (non-blocking; the predecode
    /// pass uses this to take ownership of frame decodes without ever
    /// waiting on another job).
    fn try_claim(&self, id: NodeId) -> bool {
        let mut slots = self.slots.lock();
        if slots.contains_key(&id) {
            return false;
        }
        self.claim_shadow.write();
        slots.insert(id, Slot::InFlight);
        true
    }

    /// True when the node is ready or some job is computing it.
    fn covered(&self, id: NodeId) -> bool {
        self.slots.lock().contains_key(&id)
    }

    fn fulfill(&self, id: NodeId, f: Arc<Frame>) {
        let mut slots = self.slots.lock();
        self.claim_shadow.write();
        slots.insert(id, Slot::Ready(f));
        drop(slots);
        self.ready.notify_all();
    }

    /// Releases an unfulfilled claim (compute failed); ready slots are
    /// left intact so error cleanup can sweep candidates blindly.
    fn abandon(&self, id: NodeId) {
        let mut slots = self.slots.lock();
        if matches!(slots.get(&id), Some(Slot::InFlight)) {
            self.claim_shadow.write();
            slots.remove(&id);
        }
        drop(slots);
        self.ready.notify_all();
    }
}

/// Projects the dataset's per-video headers into the planner's metadata.
fn video_metas(dataset: &Dataset) -> Vec<sand_graph::VideoMeta> {
    dataset
        .videos()
        .iter()
        .map(|v| {
            let h = &v.encoded.header;
            sand_graph::VideoMeta {
                video_id: v.video_id,
                frames: v.encoded.frame_count(),
                width: h.width,
                height: h.height,
                channels: h.format.channels(),
                gop_size: h.gop_size,
                encoded_bytes: v.encoded.encoded_size(),
            }
        })
        .collect()
}

/// The SAND engine. Cheap to clone (shared state).
#[derive(Clone)]
pub struct SandEngine {
    inner: Arc<Inner>,
}

impl SandEngine {
    /// Creates an engine over a dataset.
    ///
    /// With a `store_dir` containing objects from a previous run, the
    /// engine adopts them (recovery): the deterministic plan re-derives
    /// the same keys, so surviving objects are never recomputed.
    pub fn new(config: EngineConfig, dataset: Arc<Dataset>) -> Result<Self> {
        if config.tasks.is_empty() {
            return Err(CoreError::State {
                what: "no tasks configured".into(),
            });
        }
        if config.epochs_per_chunk == 0 || config.total_epochs == 0 {
            return Err(CoreError::State {
                what: "epochs must be nonzero".into(),
            });
        }
        let mut task_ids = HashMap::new();
        for (i, t) in config.tasks.iter().enumerate() {
            t.validate()?;
            if task_ids.insert(t.tag.clone(), i as u32).is_some() {
                return Err(CoreError::State {
                    what: format!("duplicate task tag `{}`", t.tag),
                });
            }
        }
        let telemetry = config
            .telemetry
            .clone()
            .map_or_else(Telemetry::disabled, Telemetry::new);
        let store = Arc::new(ObjectStore::open(config.store, config.store_dir.clone())?);
        if let Some(m) = StoreMetrics::register(&telemetry, store.shard_count()) {
            store.set_metrics(m);
        }
        // Any task opting out of sticky affinity disables it globally:
        // tasks share the worker pool, so per-task stickiness is
        // meaningless.
        let mut sched_config = config.sched;
        sched_config.sticky_affinity = sched_config.sticky_affinity
            && config.tasks.iter().all(|t| t.execution.sticky_affinity);
        let sched = Scheduler::with_metrics(sched_config, SchedMetrics::register(&telemetry));
        let tenancy = config.tenancy.as_ref().map(|ten| {
            let weights: Vec<u64> = ten.tenants.iter().map(|t| t.weight).collect();
            sched.set_tenant_weights(&weights);
            TenancyRuntime {
                task_tenant: config
                    .tasks
                    .iter()
                    .map(|t| ten.task_tenant.get(&t.tag).copied())
                    .collect(),
                tenants: ten
                    .tenants
                    .iter()
                    .map(|t| TenantRuntime {
                        name: t.name.clone(),
                        metrics: TenantMetrics::register(&telemetry, &t.name),
                    })
                    .collect(),
            }
        });
        let fleet_metrics = if config.tenancy.is_some() {
            FleetMetrics::register(&telemetry)
        } else {
            None
        };
        let engine_metrics = EngineMetrics::register(&telemetry);
        let mat_metrics = MaterializeMetrics::register(&telemetry);
        let codec_metrics = CodecMetrics::register(&telemetry);
        let prefetcher =
            Prefetcher::new(config.prefetch_depth, PrefetchMetrics::register(&telemetry));
        let autotune = config.autotune.as_ref().map(|a| {
            TrackedMutex::new(
                "engine.autotune",
                Controller::new(
                    a.clone(),
                    KnobValues {
                        prefetch_depth: config.prefetch_depth as u64,
                        demand_slack: config.sched.demand_slack,
                        aug_threads: config.aug_threads.max(1) as u64,
                        decode_threads: config.decode_threads.max(1) as u64,
                    },
                ),
            )
        });
        let autotune_metrics = if config.autotune.is_some() {
            AutotuneMetrics::register(&telemetry)
        } else {
            None
        };
        let aug_threads_live = AtomicUsize::new(config.aug_threads.max(1));
        let decode_threads_live = AtomicUsize::new(config.decode_threads.max(1));
        let remote = config
            .remote
            .clone()
            .map(|rc| Arc::new(RemoteTier::new(rc, &telemetry)));
        let engine = SandEngine {
            inner: Arc::new(Inner {
                config,
                dataset,
                store,
                sched,
                chunks: TrackedMutex::new("engine.chunks", HashMap::new()),
                task_ids,
                decode_stats: TrackedMutex::new("engine.decode_stats", DecodeStats::default()),
                warm_decoders: TrackedMutex::new("engine.warm_pool", WarmPool::default()),
                aug_ops_applied: AtomicU64::new(0),
                batches_served: AtomicU64::new(0),
                prefetcher,
                last_batch_bytes: AtomicU64::new(0),
                telemetry,
                engine_metrics,
                mat_metrics,
                codec_metrics,
                aug_threads_live,
                decode_threads_live,
                remote,
                flight: Flight::new(),
                tenancy,
                fleet_metrics,
                autotune,
                autotune_metrics,
                autotune_stop: Arc::new(AtomicBool::new(false)),
                autotune_thread: TrackedMutex::new("engine.autotune_thread", None),
            }),
        };
        Inner::publish_effective_knobs(&engine.inner);
        Self::spawn_autotune_loop(&engine.inner);
        Ok(engine)
    }

    /// Spawns the background control thread (only when autotune is
    /// configured with a nonzero interval). The thread holds a `Weak` to
    /// the engine state, so it never keeps a dropped engine alive; it
    /// wakes in 20 ms steps to observe shutdown promptly.
    fn spawn_autotune_loop(inner: &Arc<Inner>) {
        let Some(a) = &inner.config.autotune else {
            return;
        };
        if a.interval_ms == 0 {
            return;
        }
        let interval = Duration::from_millis(a.interval_ms);
        let stop = Arc::clone(&inner.autotune_stop);
        let weak = Arc::downgrade(inner);
        let handle = std::thread::Builder::new()
            .name("sand-autotune".into())
            .spawn(move || loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let step = (interval - slept).min(Duration::from_millis(20));
                    std::thread::sleep(step);
                    slept += step;
                }
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match weak.upgrade() {
                    Some(inner) => {
                        let _ = Inner::autotune_tick(&inner);
                    }
                    None => return,
                }
            });
        if let Ok(h) = handle {
            *inner.autotune_thread.lock() = Some(h);
        }
    }

    /// Runs the startup lint pass (per `EngineConfig::lint`), then plans
    /// the first chunk and kicks off pre-materialization.
    pub fn start(&self) -> Result<()> {
        self.lint_check()?;
        Inner::ensure_chunk(&self.inner, 0)?;
        Ok(())
    }

    /// Lints the configured workload: config semantics, abstract- and
    /// concrete-graph invariants, resource feasibility, and sharing
    /// near-misses. Findings go to stderr; with [`LintLevel::Deny`], any
    /// deny-severity finding aborts startup with [`CoreError::Lint`].
    pub fn lint_check(&self) -> Result<()> {
        let config = &self.inner.config;
        if config.lint == LintLevel::Off {
            return Ok(());
        }
        let abstract_graphs: Vec<AbstractGraph> = config
            .tasks
            .iter()
            .map(AbstractGraph::from_config)
            .collect();
        let videos = video_metas(&self.inner.dataset);
        // Dry-plan the first chunk, unpruned, as the concrete-graph
        // specimen: deterministic planning makes it representative of
        // every later chunk.
        let end = config.epochs_per_chunk.min(config.total_epochs);
        let inputs: Vec<PlanInput> = config
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| PlanInput {
                task_id: i as u32,
                config: t.clone(),
            })
            .collect();
        let concrete = Planner::new(
            inputs,
            videos.clone(),
            PlannerOptions {
                seed: config.seed,
                coordinate: config.coordinate,
                epochs: 0..end,
            },
        )
        .and_then(|p| p.plan())
        .ok();
        let iterations_per_epoch = config
            .tasks
            .iter()
            .map(|t| (videos.len() as u64).div_ceil(t.sampling.videos_per_batch as u64))
            .max();
        let threads = config.sched.threads.max(1);
        let reserved = if config.sched.policy == sand_sched::Policy::Priority {
            config.sched.reserved_demand_threads.min(threads - 1)
        } else {
            0
        };
        let opts = LintOptions {
            total_epochs: config.total_epochs,
            iterations_per_epoch,
            cache_budget: config.cache_budget,
            memory_budget: config.store.memory_budget,
            aug_threads: config.aug_threads.max(1),
            pre_workers: threads - reserved,
            telemetry: config.telemetry.clone(),
            prefetch_depth: config.prefetch_depth,
            store_shards: config.store.shards,
            decode_threads: config.decode_threads.max(1),
            sanitize: sand_sanitizer::enabled(),
            release_build: cfg!(not(debug_assertions)),
            persistent: config.store_dir.is_some(),
            disk_budget: config.store.disk_budget,
            autotune: config.autotune.as_ref().map(|a| {
                a.clamps()
                    .into_iter()
                    .map(|(knob, min, max)| AutotuneClamp {
                        knob: knob.to_string(),
                        min,
                        max,
                    })
                    .collect()
            }),
            fleet: config.tenancy.as_ref().map(|t| FleetLint {
                tenants: t.tenants.len(),
                weights: t.tenants.iter().map(|x| x.weight).collect(),
                admission_budget: t.admission_budget,
            }),
            remote: config.remote.as_ref().map(|r| RemoteLint {
                peers: r.peers.len(),
                // `PeerSpec::addr` is already a parsed `SocketAddr`, so
                // every configured peer is dialable by construction.
                resolvable_peers: r.peers.len(),
                fetch_timeout_ms: r.fetch_timeout.as_millis() as u64,
                retries: r.retries,
            }),
        };
        let report = lint_all(
            &config.tasks,
            &abstract_graphs,
            concrete.as_ref(),
            &videos,
            &opts,
        );
        if !report.is_clean() {
            eprintln!("{}", report.render_human());
        }
        let denies = report.deny_count();
        if config.lint == LintLevel::Deny && denies > 0 {
            return Err(CoreError::Lint {
                denies,
                report: report.render_human(),
            });
        }
        Ok(())
    }

    /// Mounts a VFS over this engine.
    #[must_use]
    pub fn mount(&self) -> SandVfs {
        SandVfs::with_metrics(
            Arc::new(self.clone()),
            VfsMetrics::register(&self.inner.telemetry),
        )
    }

    /// Serves a batch directly (the VFS route calls this too); returns
    /// the serialized batch tensor.
    pub fn serve_batch(&self, task: &str, epoch: u64, iteration: u64) -> Result<Vec<u8>> {
        Inner::serve_batch(&self.inner, task, epoch, iteration)
    }

    /// Blocks until all queued materialization work finished.
    pub fn wait_idle(&self) {
        self.inner.sched.wait_idle();
    }

    /// The iterations each task runs per epoch.
    #[must_use]
    pub fn iterations_per_epoch(&self, task: &str) -> Option<u64> {
        let id = *self.inner.task_ids.get(task)?;
        let vpb = self.inner.config.tasks[id as usize]
            .sampling
            .videos_per_batch;
        Some((self.inner.dataset.len() as u64).div_ceil(vpb as u64))
    }

    /// The engine's dataset.
    #[must_use]
    pub fn dataset(&self) -> &Arc<Dataset> {
        &self.inner.dataset
    }

    /// Aggregate statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            decode: *self.inner.decode_stats.lock(),
            aug_ops_applied: self.inner.aug_ops_applied.load(Ordering::Relaxed),
            batches_served: self.inner.batches_served.load(Ordering::Relaxed),
            store: self.inner.store.stats(),
            sched: self.inner.sched.stats(),
        }
    }

    /// Merge statistics of the chunk containing `epoch` (plans it if
    /// necessary).
    pub fn merge_stats(&self, epoch: u64) -> Result<sand_graph::MergeStats> {
        let chunk = Inner::ensure_chunk(&self.inner, epoch)?;
        Ok(chunk.graph.stats.clone())
    }

    /// The engine's object store (shared).
    #[must_use]
    pub fn store(&self) -> &Arc<ObjectStore> {
        &self.inner.store
    }

    /// The engine's telemetry handle (disabled unless
    /// `EngineConfig::telemetry` was set).
    #[must_use]
    pub fn telemetry(&self) -> &Telemetry {
        &self.inner.telemetry
    }

    /// Point-in-time copy of every registered metric; `None` when
    /// telemetry is disabled.
    #[must_use]
    pub fn metrics_snapshot(&self) -> Option<Snapshot> {
        self.inner.telemetry.snapshot()
    }

    /// Stall-attribution report over every retained batch trace; `None`
    /// when telemetry is disabled.
    #[must_use]
    pub fn stall_report(&self) -> Option<StallReport> {
        self.inner.telemetry.stall_report()
    }

    /// The prefetch depth currently in effect (runtime value, not the
    /// config seed).
    #[must_use]
    pub fn prefetch_depth(&self) -> usize {
        self.inner.prefetcher.depth()
    }

    /// Prefetch entries currently in flight (scheduled but not yet
    /// settled into an outcome counter).
    #[must_use]
    pub fn prefetch_pending(&self) -> usize {
        self.inner.prefetcher.pending()
    }

    /// Retunes the prefetch window depth at runtime. Entries already in
    /// flight keep their exact-conservation accounting: growing or
    /// shrinking to a nonzero depth leaves them to be consumed normally;
    /// shrinking to `0` cancels them (each settles `cancelled` exactly
    /// once), and racing serves still drain any residue because the
    /// consume path stays open while entries are pending.
    pub fn set_prefetch_depth(&self, depth: usize) {
        self.inner.prefetcher.set_depth(depth);
        Inner::publish_effective_knobs(&self.inner);
    }

    /// The demand-slack window currently in effect.
    #[must_use]
    pub fn demand_slack(&self) -> u64 {
        self.inner.sched.demand_slack()
    }

    /// Retunes the scheduler's demand-slack window at runtime.
    pub fn set_demand_slack(&self, slack: u64) {
        self.inner.sched.set_demand_slack(slack);
        Inner::publish_effective_knobs(&self.inner);
    }

    /// The materialize fan-out knob currently in effect (before the
    /// per-task `execution.aug_threads` max-fold).
    #[must_use]
    pub fn aug_threads(&self) -> usize {
        self.inner.aug_threads_live.load(Ordering::Relaxed)
    }

    /// Retunes the materialize fan-out at runtime. Applies to buckets
    /// submitted from the next chunk on; the value participates in the
    /// same max-fold as per-task hints.
    pub fn set_aug_threads(&self, n: usize) {
        self.inner
            .aug_threads_live
            .store(n.max(1), Ordering::Relaxed);
        Inner::publish_effective_knobs(&self.inner);
    }

    /// The intra-video decode fan-out currently in effect.
    #[must_use]
    pub fn decode_threads(&self) -> usize {
        self.inner.decode_threads_live.load(Ordering::Relaxed)
    }

    /// Retunes the intra-video decode fan-out at runtime; read once per
    /// pre-decode pass.
    pub fn set_decode_threads(&self, n: usize) {
        self.inner
            .decode_threads_live
            .store(n.max(1), Ordering::Relaxed);
        Inner::publish_effective_knobs(&self.inner);
    }

    /// Runs one controller tick synchronously: snapshot the registry,
    /// advance the policies, apply the resulting knob values, and export
    /// decisions. Returns `None` when autotune or telemetry is disabled
    /// (the controller is inert without signals). The background loop
    /// (`autotune.interval_ms > 0`) calls exactly this; a zero interval
    /// plus explicit ticks gives deterministic, test-driven control.
    pub fn autotune_tick(&self) -> Option<Vec<Decision>> {
        Inner::autotune_tick(&self.inner)
    }

    /// The cluster remote tier (`None` for single-process engines).
    #[must_use]
    pub fn remote_tier(&self) -> Option<&Arc<RemoteTier>> {
        self.inner.remote.as_ref()
    }

    /// Per-tenant scheduler shares — weight, virtual time, accumulated
    /// busy nanoseconds — in tenancy order; `None` without tenancy.
    #[must_use]
    pub fn tenant_shares(&self) -> Option<Vec<sand_sched::TenantShare>> {
        self.inner.sched.tenant_shares()
    }

    /// Fleet dedup/admission metric handles (`None` unless tenancy and
    /// telemetry are both configured).
    #[must_use]
    pub(crate) fn fleet_metrics(&self) -> Option<&FleetMetrics> {
        self.inner.fleet_metrics.as_ref()
    }
}

impl Inner {
    /// Ensures the chunk containing `epoch` is planned, pruned, and (if
    /// enabled) being pre-materialized.
    fn ensure_chunk(inner: &Arc<Inner>, epoch: u64) -> Result<Arc<Chunk>> {
        if epoch >= inner.config.total_epochs {
            return Err(CoreError::State {
                what: format!(
                    "epoch {epoch} beyond total_epochs {}",
                    inner.config.total_epochs
                ),
            });
        }
        let k = inner.config.epochs_per_chunk;
        let chunk_id = epoch / k;
        if let Some(c) = inner.chunks.lock().get(&chunk_id) {
            return Ok(Arc::clone(c));
        }
        // Plan outside the lock (planning can be slow), then race-insert.
        let start = chunk_id * k;
        let end = (start + k).min(inner.config.total_epochs);
        // Fast path: a checkpointed plan from a previous run (Sec. 5.5's
        // "checkpointed every k epochs for faster recovery"). Configs and
        // seed are deterministic, so a matching checkpoint is the plan.
        if let Some(path) = Self::checkpoint_path(inner, chunk_id) {
            if let Ok(bytes) = std::fs::read(&path) {
                if let Ok(graph) = sand_graph::checkpoint::from_bytes(&bytes) {
                    if graph.epochs == (start..end) {
                        let chunk = Arc::new(Chunk::build(graph));
                        let chunk = {
                            let mut chunks = inner.chunks.lock();
                            Arc::clone(chunks.entry(chunk_id).or_insert_with(|| Arc::clone(&chunk)))
                        };
                        if inner.config.prematerialize {
                            Self::submit_prematerialization(inner, &chunk);
                        }
                        return Ok(chunk);
                    }
                }
            }
        }
        let tasks: Vec<PlanInput> = inner
            .config
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| PlanInput {
                task_id: i as u32,
                config: t.clone(),
            })
            .collect();
        let videos = video_metas(&inner.dataset);
        let planner = Planner::new(
            tasks,
            videos,
            PlannerOptions {
                seed: inner.config.seed,
                coordinate: inner.config.coordinate,
                epochs: start..end,
            },
        )?;
        let mut graph = planner.plan()?;
        if inner.config.naive_leaf_cache {
            // Keep only leaves cached: the naive plan that stores final
            // training objects and recomputes everything else.
            let leaf: Vec<bool> = graph.nodes.iter().map(|n| n.children.is_empty()).collect();
            for node in &mut graph.nodes {
                if !matches!(node.key, ObjectKey::Video { .. }) {
                    node.cached = leaf[node.id];
                }
            }
        }
        if inner.config.prune {
            prune_to_budget(&mut graph, inner.config.cache_budget);
        }
        // Best-effort checkpoint for crash recovery.
        if let Some(path) = Self::checkpoint_path(inner, chunk_id) {
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(&path, sand_graph::checkpoint::to_bytes(&graph));
        }
        let chunk = Arc::new(Chunk::build(graph));
        let chunk = {
            let mut chunks = inner.chunks.lock();
            Arc::clone(chunks.entry(chunk_id).or_insert_with(|| Arc::clone(&chunk)))
        };
        if inner.config.prematerialize {
            Self::submit_prematerialization(inner, &chunk);
        }
        Ok(chunk)
    }

    /// Path of a chunk's plan checkpoint (inside the store directory,
    /// under a metadata subdirectory the object scan ignores).
    fn checkpoint_path(inner: &Arc<Inner>, chunk_id: u64) -> Option<PathBuf> {
        inner
            .config
            .store_dir
            .as_ref()
            .map(|d| d.join("_meta").join(format!("graph_chunk_{chunk_id}.ckpt")))
    }

    /// The materialize fan-out actually in effect: the *live* engine
    /// knob, maxed with every task-level `execution.aug_threads` hint.
    ///
    /// The fold starts from the runtime value (`aug_threads_live`), not
    /// the static config, so a controller- or API-driven override
    /// participates in the same max-fold as the per-task hints — raising
    /// the knob above every hint takes effect instead of being silently
    /// shadowed by a larger static hint.
    fn effective_aug_threads(inner: &Inner) -> usize {
        inner
            .config
            .tasks
            .iter()
            .map(|t| t.execution.aug_threads)
            .fold(inner.aug_threads_live.load(Ordering::Relaxed), usize::max)
            .max(1)
    }

    /// One closed-loop control tick: derive signals from the registry
    /// snapshot, advance every policy, apply the resulting knob values,
    /// and export the decisions (metrics + stall-report decision log).
    ///
    /// Returns `None` when autotune or telemetry is disabled — without a
    /// registry there are no signals, so the controller stays inert (lint
    /// SL034 denies that configuration up front).
    ///
    /// Bit-identity: every knob this tick can move is a *performance*
    /// knob — prefetch depth, demand slack, thread splits — none of which
    /// participate in planning, sampling, or augmentation math, so served
    /// bytes are unchanged under any decision schedule
    /// (`prop_autotune_parity`).
    fn autotune_tick(inner: &Arc<Inner>) -> Option<Vec<Decision>> {
        let controller = inner.autotune.as_ref()?;
        let snapshot = inner.telemetry.snapshot()?;
        let (decisions, values) = {
            let mut c = controller.lock();
            let decisions = c.tick(&snapshot);
            (decisions, c.values())
        };
        // Apply unconditionally (the setters are idempotent): the knob
        // values are the controller's single source of truth, so a
        // concurrent manual setter call is simply overridden at the next
        // tick.
        inner.prefetcher.set_depth(values.prefetch_depth as usize);
        inner.sched.set_demand_slack(values.demand_slack);
        inner
            .aug_threads_live
            .store((values.aug_threads as usize).max(1), Ordering::Relaxed);
        inner
            .decode_threads_live
            .store((values.decode_threads as usize).max(1), Ordering::Relaxed);
        for d in &decisions {
            inner.telemetry.push_decision(d.render());
        }
        if let Some(m) = &inner.autotune_metrics {
            m.ticks.inc();
            for d in &decisions {
                m.decisions.inc();
                if d.to > d.from {
                    m.raises.inc();
                } else {
                    m.lowers.inc();
                }
            }
            m.prefetch_depth.set(values.prefetch_depth as i64);
            m.demand_slack.set(values.demand_slack as i64);
            m.aug_threads.set(values.aug_threads as i64);
            m.decode_threads.set(values.decode_threads as i64);
        }
        Self::publish_effective_knobs(inner);
        Some(decisions)
    }

    /// Publishes the *live* knob values (not the config seeds) to the
    /// `engine.effective_*` gauges, so a snapshot always reports what the
    /// runtime is actually doing — after construction, a manual setter,
    /// or a controller tick. No-op with telemetry disabled.
    fn publish_effective_knobs(inner: &Inner) {
        let Some(m) = &inner.engine_metrics else {
            return;
        };
        m.effective_prefetch_depth
            .set(inner.prefetcher.depth() as i64);
        m.effective_demand_slack
            .set(inner.sched.demand_slack() as i64);
        m.effective_aug_threads
            .set(inner.aug_threads_live.load(Ordering::Relaxed) as i64);
        m.effective_decode_threads
            .set(inner.decode_threads_live.load(Ordering::Relaxed) as i64);
        match &inner.remote {
            Some(r) => {
                m.effective_remote_peers.set(r.peer_count() as i64);
                m.effective_remote_timeout_ms
                    .set(r.fetch_timeout().as_millis() as i64);
            }
            None => {
                m.effective_remote_peers.set(0);
                m.effective_remote_timeout_ms.set(0);
            }
        }
    }

    /// Splits one bucket's node list into at most `parts` sub-job lists.
    ///
    /// Nodes are grouped by their nearest source-frame ancestor first, so
    /// augmentation chains growing out of one decoded frame stay in the
    /// same sub-job: the shared scratch would merge their work anyway,
    /// but co-locating them turns the merge into a same-worker reuse
    /// instead of a cross-job wait. Groups are dealt round-robin in
    /// frame order, which is deterministic.
    fn split_bucket(chunk: &Chunk, nodes: &[NodeId], parts: usize) -> Vec<Vec<NodeId>> {
        if parts <= 1 || nodes.len() <= 1 {
            return vec![nodes.to_vec()];
        }
        let mut groups: std::collections::BTreeMap<u64, Vec<NodeId>> =
            std::collections::BTreeMap::new();
        for &id in nodes {
            let mut cur = Some(id);
            let mut gkey = u64::MAX;
            while let Some(nid) = cur {
                if let ObjectKey::Frame { frame, .. } = chunk.graph.nodes[nid].key {
                    gkey = frame as u64;
                    break;
                }
                cur = chunk.graph.nodes[nid].parent;
            }
            groups.entry(gkey).or_default().push(id);
        }
        let n = parts.min(groups.len()).max(1);
        let mut out = vec![Vec::new(); n];
        for (i, (_, group)) in groups.into_iter().enumerate() {
            out[i % n].extend(group);
        }
        out.retain(|v| !v.is_empty());
        out
    }

    /// Submits pre-materialization jobs: per (video, deadline bucket),
    /// fanned out into up to `aug_threads` sub-jobs.
    ///
    /// Granularity matters twice over. Jobs must be small enough that a
    /// demand-feeding job never sits behind a long-running worker (the
    /// scheduler preempts between jobs, not within one), and the first
    /// sub-job of a video decodes the *union* of the chunk's source frames
    /// in one GOP-efficient pass, persisting them so every later epoch's
    /// bucket reuses the decoded frames instead of re-touching the codec —
    /// the paper's "decode once, cache for k epochs".
    ///
    /// All of a video's sub-jobs share one [`Scratch`] and carry the
    /// video id as a scheduler affinity hint, so chains meeting at a
    /// common decoded frame merge work, and the sub-jobs prefer the
    /// worker already holding the video's warm decode state.
    fn submit_prematerialization(inner: &Arc<Inner>, chunk: &Arc<Chunk>) {
        let epoch_span = chunk.graph.epochs.end - chunk.graph.epochs.start;
        let aug_threads = Self::effective_aug_threads(inner);
        for v in inner.dataset.videos() {
            let subtree = chunk.graph.video_subtree(v.video_id);
            let todo: Vec<NodeId> = subtree
                .into_iter()
                .filter(|&id| {
                    chunk.graph.nodes[id].cached
                        && !matches!(chunk.graph.nodes[id].key, ObjectKey::Video { .. })
                        && !inner.store.contains(&store_key(&chunk.graph.nodes[id].key))
                })
                .collect();
            if todo.is_empty() {
                continue;
            }
            // Bucket nodes by the epoch of their earliest need.
            let mut buckets: Vec<Vec<NodeId>> = vec![Vec::new(); epoch_span as usize + 1];
            let clocks_per_epoch = chunk
                .graph
                .batches
                .iter()
                .map(|b| b.iteration + 1)
                .max()
                .unwrap_or(1);
            for &id in &todo {
                let bucket = match chunk.deadlines[id] {
                    Some(clock) => ((clock / clocks_per_epoch)
                        .saturating_sub(chunk.graph.epochs.start)
                        as usize)
                        .min(epoch_span as usize),
                    None => epoch_span as usize,
                };
                buckets[bucket].push(id);
            }
            let scratch = Arc::new(Scratch::new(inner.mat_metrics.clone()));
            let mut first_subjob = true;
            for bucket_nodes in buckets {
                if bucket_nodes.is_empty() {
                    continue;
                }
                for mut nodes in Self::split_bucket(chunk, &bucket_nodes, aug_threads) {
                    let deadline = nodes
                        .iter()
                        .filter_map(|&id| chunk.deadlines[id])
                        .min()
                        .unwrap_or(u64::MAX);
                    let remaining_work = nodes.len() as u64;
                    let inner2 = Arc::clone(inner);
                    let chunk2 = Arc::clone(chunk);
                    let scratch2 = Arc::clone(&scratch);
                    // The video's first sub-job pre-decodes the union of
                    // source frames the whole subtree needs; the others
                    // pre-decode only their own slice (the scratch claims
                    // make any overlap race-free).
                    let decode_targets: Vec<NodeId> = if first_subjob {
                        todo.clone()
                    } else {
                        nodes.clone()
                    };
                    first_subjob = false;
                    // Pre-materialization serves the union plan — shared
                    // across tenants by construction — so it stays
                    // untenanted: charged to nobody's virtual clock.
                    inner.sched.submit(Job {
                        kind: JobKind::PreMaterialize,
                        deadline,
                        remaining_work,
                        affinity: Some(v.video_id),
                        tenant: None,
                        run: Box::new(move || {
                            nodes.sort_by_key(|&id| chunk2.deadlines[id].unwrap_or(u64::MAX));
                            // One GOP-efficient pass; decoded frames
                            // persist in the store.
                            let _ =
                                Self::predecode_nodes(&inner2, &chunk2, &decode_targets, &scratch2);
                            for id in nodes {
                                // Failures here only delay demand-path
                                // work; they are not fatal to training.
                                let _ = Self::materialize_rec(&inner2, &chunk2, id, &scratch2);
                            }
                            // The last sub-job dropping its `Arc` frees
                            // the raw decoded frames, as the paper
                            // requires once a subtree completes.
                        }),
                    });
                }
            }
        }
        Self::report_pressure(inner);
    }

    /// Reports store memory pressure to the scheduler.
    fn report_pressure(inner: &Arc<Inner>) {
        let stats = inner.store.stats();
        let frac = stats.memory_bytes as f64 / inner.config.store.memory_budget as f64;
        inner.sched.set_memory_pressure(frac);
    }

    /// Decodes one frame through the video's warm demand session,
    /// merging the session's work into the engine meter.
    fn decode_one(inner: &Arc<Inner>, video_id: u64, frame: usize) -> Result<Frame> {
        let session = {
            let mut warm = inner.warm_decoders.lock();
            warm.tick += 1;
            let tick = warm.tick;
            if let Some(slot) = warm.sessions.get_mut(&video_id) {
                slot.last_used = tick;
                Arc::clone(&slot.session)
            } else {
                let entry = inner
                    .dataset
                    .get(video_id)
                    .ok_or_else(|| CoreError::UnknownView {
                        what: format!("video {video_id} not in dataset"),
                    })?;
                if warm.sessions.len() >= inner.config.warm_session_cap.max(1) {
                    // Evict the least-recently-used session, so that under
                    // cap pressure the hottest videos keep their live
                    // anchor chains (evicting an arbitrary session would
                    // randomly cold-start a hot video).
                    if let Some(k) = warm
                        .sessions
                        .iter()
                        .min_by_key(|(_, s)| s.last_used)
                        .map(|(k, _)| *k)
                    {
                        warm.sessions.remove(&k);
                    }
                }
                let s = Arc::new(TrackedMutex::new(
                    "engine.warm_session",
                    WarmDecoder::new(Arc::clone(&entry.encoded)),
                ));
                warm.sessions.insert(
                    video_id,
                    WarmSlot {
                        session: Arc::clone(&s),
                        last_used: tick,
                    },
                );
                s
            }
        };
        let t0 = inner.engine_metrics.as_ref().map(|_| Instant::now());
        let mut dec = session.lock();
        let f = dec.decode_frame(frame)?;
        let stats = dec.take_stats();
        drop(dec);
        if let (Some(m), Some(t0)) = (inner.engine_metrics.as_ref(), t0) {
            let spent = t0.elapsed();
            m.demand_decode_us.observe_duration(spent);
            m.warm_hits.add(stats.warm_hits);
            m.cold_starts.add(stats.cold_starts);
            record_stage(Stage::Decode, spent);
        }
        inner.decode_stats.lock().merge(&stats);
        Ok(f)
    }

    /// Burns one retained use of every *strict* ancestor of `id` in the
    /// store (video roots are never stored, so marking them is a no-op).
    fn mark_used_ancestors(inner: &Arc<Inner>, chunk: &Chunk, id: NodeId) {
        let mut cur = chunk.graph.nodes[id].parent;
        while let Some(p) = cur {
            inner.store.mark_used(&store_key(&chunk.graph.nodes[p].key));
            cur = chunk.graph.nodes[p].parent;
        }
    }

    /// Materializes a node, consulting (and feeding) the store and the
    /// pass's shared scratch of raw frames.
    fn materialize_rec(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        id: NodeId,
        scratch: &Scratch,
    ) -> Result<Arc<Frame>> {
        if let Some(f) = scratch.get_or_claim(id) {
            return Ok(f);
        }
        // The claim is ours: compute, then fulfill or abandon it.
        let out = Self::materialize_flight(inner, chunk, id, scratch);
        match &out {
            Ok(f) => scratch.fulfill(id, Arc::clone(f)),
            Err(_) => scratch.abandon(id),
        }
        out
    }

    /// Cross-pass singleflight around [`Self::materialize_claimed`]: a
    /// node already in flight in *any* concurrent pass (another tenant's
    /// demand job, a prefetch build, pre-materialization) is awaited and
    /// its result adopted instead of recomputed, so a shared ancestor
    /// materializes at most once fleet-wide no matter how many tenants
    /// race for it. A failed winner publishes `None` and the waiter
    /// computes the node itself — duplicate work, never a lost serve.
    fn materialize_flight(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        id: NodeId,
        scratch: &Scratch,
    ) -> Result<Arc<Frame>> {
        let key = store_key(&chunk.graph.nodes[id].key);
        let (slot, winner) = inner.flight.claim_or_join(&key);
        if !winner {
            let t0 = inner.fleet_metrics.as_ref().map(|_| Instant::now());
            let adopted = {
                let mut done = slot.done.lock();
                while done.is_none() {
                    slot.cv.wait(&mut done);
                }
                done.clone().flatten()
            };
            if let (Some(m), Some(t0)) = (inner.fleet_metrics.as_ref(), t0) {
                m.dedup_wait_us.observe_duration(t0.elapsed());
            }
            if let Some(f) = adopted {
                if let Some(m) = &inner.fleet_metrics {
                    m.dedup_adoptions.inc();
                }
                return Ok(f);
            }
            return Self::materialize_claimed(inner, chunk, id, scratch);
        }
        let out = Self::materialize_claimed(inner, chunk, id, scratch);
        // Retire before publishing: a late arrival starts a fresh
        // flight (and hits the store for cached objects) instead of
        // adopting a slot whose object may since have been evicted.
        inner.flight.retire(&key);
        {
            let mut done = slot.done.lock();
            *done = Some(out.as_ref().ok().map(Arc::clone));
        }
        slot.cv.notify_all();
        if out.is_ok() {
            if let Some(m) = &inner.fleet_metrics {
                m.dedup_wins.inc();
            }
        }
        out
    }

    /// The tenant a task is attributed to (`None` = untenanted).
    fn tenant_of_task(inner: &Inner, task: &str) -> Option<u32> {
        let tenancy = inner.tenancy.as_ref()?;
        let task_id = *inner.task_ids.get(task)?;
        tenancy.task_tenant.get(task_id as usize).copied().flatten()
    }

    /// A tenant's display name (becomes the trace's `tenant` label).
    fn tenant_label(inner: &Inner, tenant: Option<u32>) -> Option<String> {
        let tenancy = inner.tenancy.as_ref()?;
        tenancy
            .tenants
            .get(tenant? as usize)
            .map(|t| t.name.clone())
    }

    /// Bumps a tenant's serve counters from a finished batch trace.
    fn record_tenant_serve(inner: &Inner, tenant: Option<u32>, serve_ns: u64, stalled: bool) {
        let Some(tenancy) = inner.tenancy.as_ref() else {
            return;
        };
        let Some(m) = tenant
            .and_then(|t| tenancy.tenants.get(t as usize))
            .and_then(|t| t.metrics.as_ref())
        else {
            return;
        };
        m.batches_served.inc();
        m.serve_us.observe(serve_ns / 1_000);
        if stalled {
            m.stalled.inc();
        }
    }

    /// Computes one claimed node (store hit, decode, or augmentation).
    fn materialize_claimed(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        id: NodeId,
        scratch: &Scratch,
    ) -> Result<Arc<Frame>> {
        let node = &chunk.graph.nodes[id];
        let key = store_key(&node.key);
        if inner.store.contains(&key) {
            if let Ok(bytes) = inner.store.get(&key) {
                match decompress_frame(&bytes) {
                    Ok(f) => return Ok(Arc::new(f)),
                    Err(_) => {
                        // A corrupt cached object (e.g. a torn write from
                        // a crash) must never fail serving: drop it and
                        // fall through to recomputation.
                        let _ = inner.store.remove(&key);
                    }
                }
            }
        }
        // Cluster tier, below mem/disk: the key's ring owner may already
        // hold the compressed object — fetch it instead of recomputing,
        // so a shared ancestor materializes at most once cluster-wide.
        // `None` covers every degraded case (self-owned, owner down,
        // clean miss) and falls through to local materialization; corrupt
        // remote bytes are dropped the same way — duplicate work, never
        // wrong bytes.
        if let Some(remote) = &inner.remote {
            if let Some(bytes) = remote.fetch(&key) {
                if let Ok(f) = decompress_frame(&bytes) {
                    if node.cached {
                        let meta = ObjectMeta {
                            deadline: chunk.deadlines[id],
                            future_uses: chunk.future_uses[id],
                        };
                        let _ = inner.store.put(&key, bytes.into(), meta);
                    }
                    return Ok(Arc::new(f));
                }
            }
        }
        let frame =
            match &node.key {
                ObjectKey::Video { .. } => {
                    return Err(CoreError::UnknownView {
                        what: "video roots are not frame objects".into(),
                    })
                }
                ObjectKey::Frame { video_id, frame } => Self::decode_one(inner, *video_id, *frame)?,
                ObjectKey::Aug { .. } => {
                    let parent = node.parent.ok_or_else(|| CoreError::State {
                        what: "aug node without parent".into(),
                    })?;
                    let src = Self::materialize_rec(inner, chunk, parent, scratch)?;
                    let op = node.op.as_ref().ok_or_else(|| CoreError::State {
                        what: "aug node without op".into(),
                    })?;
                    inner.aug_ops_applied.fetch_add(1, Ordering::Relaxed);
                    let t0 = inner.mat_metrics.as_ref().map(|_| Instant::now());
                    let applied =
                        if let sand_graph::ResolvedOp::Custom { name } = op {
                            // Custom ops execute through the RPC-style service.
                            let client = inner.config.aug_service.as_ref().ok_or_else(|| {
                                CoreError::State {
                                    what: format!(
                                        "pipeline uses custom op `{name}` but no augmentation \
                                 service is configured"
                                    ),
                                }
                            })?;
                            client.apply(name, &src)?
                        } else {
                            let frame_op = op.to_frame_op()?.ok_or_else(|| CoreError::State {
                                what: "normalize is not a frame op".into(),
                            })?;
                            frame_op.apply(&src)?
                        };
                    if let (Some(m), Some(t0)) = (inner.mat_metrics.as_ref(), t0) {
                        let spent = t0.elapsed();
                        m.op_us.observe_duration(spent);
                        m.ops.inc();
                        record_stage(Stage::Aug, spent);
                    }
                    applied
                }
            };
        if node.cached {
            let meta = ObjectMeta {
                deadline: chunk.deadlines[id],
                future_uses: chunk.future_uses[id],
            };
            let compressed: Arc<Vec<u8>> = compress_frame(&frame).into();
            inner.store.put(&key, Arc::clone(&compressed), meta)?;
            // We just materialized an object the ring owner didn't have
            // (the fetch above missed): push it so the next consumer
            // anywhere in the cluster hits. Best-effort — a failed push
            // leaves the object local.
            if let Some(remote) = &inner.remote {
                remote.offer(
                    &key,
                    chunk.deadlines[id],
                    chunk.future_uses[id],
                    &compressed,
                );
            }
        }
        Ok(Arc::new(frame))
    }

    /// Pre-decodes, in one GOP-efficient pass per video, every source
    /// frame the target nodes need that is not otherwise covered, filling
    /// `scratch` with the decoded frames.
    ///
    /// Frame slots are claimed non-blockingly (`try_claim`), so two
    /// sub-jobs whose targets overlap split the decode work instead of
    /// duplicating it; this pass itself never waits on another job.
    fn predecode_nodes(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        targets: &[NodeId],
        scratch: &Scratch,
    ) -> Result<()> {
        // (video, frame node, frame index) for every uncovered target.
        let mut missing: Vec<(u64, NodeId, usize)> = Vec::new();
        for &target in targets {
            // Walk up from the target: if any ancestor-or-self is in the
            // store or scratch, decode is unnecessary.
            let mut cur = Some(target);
            let mut frame_node: Option<(u64, NodeId, usize)> = None;
            let mut covered = false;
            while let Some(nid) = cur {
                if scratch.covered(nid)
                    || inner
                        .store
                        .contains(&store_key(&chunk.graph.nodes[nid].key))
                {
                    covered = true;
                    break;
                }
                if let ObjectKey::Frame { video_id, frame } = chunk.graph.nodes[nid].key {
                    frame_node = Some((video_id, nid, frame));
                }
                cur = chunk.graph.nodes[nid].parent;
            }
            if !covered {
                if let Some(fn_) = frame_node {
                    // Cluster tier: a frame the ring owner already holds
                    // is adopted instead of re-decoded — the bulk decode
                    // pass honors at-most-once the same way the per-node
                    // path does. Only cached nodes can exist remotely.
                    if chunk.graph.nodes[fn_.1].cached {
                        if let Some(remote) = &inner.remote {
                            let fkey = store_key(&chunk.graph.nodes[fn_.1].key);
                            if let Some(bytes) = remote.fetch(&fkey) {
                                if decompress_frame(&bytes).is_ok() {
                                    let meta = ObjectMeta {
                                        deadline: chunk.deadlines[fn_.1],
                                        future_uses: chunk.future_uses[fn_.1],
                                    };
                                    if inner.store.put(&fkey, bytes.into(), meta).is_ok() {
                                        continue;
                                    }
                                }
                            }
                        }
                    }
                    if !missing.contains(&fn_) && scratch.try_claim(fn_.1) {
                        missing.push(fn_);
                    }
                }
            }
        }
        if missing.is_empty() {
            return Ok(());
        }
        missing.sort_by_key(|&(v, _, f)| (v, f));
        let result = Self::predecode_claimed(inner, chunk, &missing, scratch);
        if result.is_err() {
            // Release any claims the failed pass left unfulfilled, so
            // other sub-jobs fall back to per-frame demand decodes
            // instead of blocking forever.
            for &(_, nid, _) in &missing {
                scratch.abandon(nid);
            }
        }
        result
    }

    /// Decodes the claimed frame nodes, grouped by video, one
    /// GOP-efficient pass per group.
    fn predecode_claimed(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        missing: &[(u64, NodeId, usize)],
        scratch: &Scratch,
    ) -> Result<()> {
        let mut i = 0;
        while i < missing.len() {
            let video_id = missing[i].0;
            let mut group = Vec::new();
            while i < missing.len() && missing[i].0 == video_id {
                group.push((missing[i].1, missing[i].2));
                i += 1;
            }
            let entry = inner
                .dataset
                .get(video_id)
                .ok_or_else(|| CoreError::UnknownView {
                    what: format!("video {video_id} not in dataset"),
                })?;
            let indices: Vec<usize> = group.iter().map(|&(_, f)| f).collect();
            let decode_threads = inner.decode_threads_live.load(Ordering::Relaxed);
            let mut dec = Decoder::with_threads(&entry.encoded, decode_threads)
                .with_metrics(inner.codec_metrics.clone());
            let t0 = inner.engine_metrics.as_ref().map(|_| Instant::now());
            let frames = dec.decode_indices(&indices)?;
            if let (Some(m), Some(t0)) = (inner.engine_metrics.as_ref(), t0) {
                let spent = t0.elapsed();
                m.predecode_us.observe_duration(spent);
                record_stage(Stage::Decode, spent);
            }
            inner.decode_stats.lock().merge(dec.stats());
            for ((nid, _), frame) in group.into_iter().zip(frames) {
                // Persist the decoded frame: whether or not the pruning
                // pass marked it cached, keeping it until its descendants
                // materialize saves re-decoding in later epoch buckets.
                // Objects whose future uses run out are first in the
                // eviction order, so this never outlives its usefulness.
                let node = &chunk.graph.nodes[nid];
                if !inner.store.contains(&store_key(&node.key)) {
                    let meta = ObjectMeta {
                        deadline: chunk.deadlines[nid],
                        future_uses: chunk.future_uses[nid],
                    };
                    inner
                        .store
                        .put(&store_key(&node.key), compress_frame(&frame).into(), meta)?;
                }
                scratch.fulfill(nid, Arc::new(frame));
            }
        }
        Ok(())
    }

    /// Materializes every frame of one sample (demand path).
    fn materialize_sample(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        plan: &sand_graph::SamplePlan,
    ) -> Result<Vec<Arc<Frame>>> {
        let scratch = Scratch::new(inner.mat_metrics.clone());
        Self::predecode_nodes(inner, chunk, &plan.frame_nodes, &scratch)?;
        plan.frame_nodes
            .iter()
            .map(|&t| Self::materialize_rec(inner, chunk, t, &scratch))
            .collect()
    }

    /// Finds the batch plan for (task tag, epoch, iteration).
    fn find_batch<'c>(
        inner: &Arc<Inner>,
        chunk: &'c Chunk,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) -> Result<&'c BatchRef> {
        let task_id = *inner
            .task_ids
            .get(task)
            .ok_or_else(|| CoreError::UnknownView {
                what: format!("unknown task `{task}`"),
            })?;
        let idx = chunk
            .batch_index
            .get(&(task_id, epoch, iteration))
            .ok_or_else(|| CoreError::UnknownView {
                what: format!("no batch for {task}/{epoch}/{iteration}"),
            })?;
        Ok(&chunk.graph.batches[*idx])
    }

    /// One sample's final tensor: materialize the clip, then normalize
    /// and pack (the demand jobs, the prefetch jobs, and nobody else).
    fn sample_tensor(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        plan: &sand_graph::SamplePlan,
    ) -> Result<sand_frame::Tensor> {
        let clip = Self::materialize_sample(inner, chunk, plan)?;
        let channels = clip.first().map_or(3, |f| f.channels());
        let (mean, std) = match &plan.normalize {
            Some((m, s)) => (m.clone(), s.clone()),
            None => (vec![0.0; channels], vec![1.0; channels]),
        };
        let refs: Vec<&Frame> = clip.iter().map(Arc::as_ref).collect();
        Ok(clip_refs_to_tensor(&refs, &mean, &std)?)
    }

    /// Serves a training batch as serialized tensor bytes, via the
    /// prefetcher when it holds (or is assembling) this batch, inline
    /// otherwise. Either way, serving batch `n` tops the prefetch window
    /// back up to `n+1..=n+depth`.
    fn serve_batch(inner: &Arc<Inner>, task: &str, epoch: u64, iteration: u64) -> Result<Vec<u8>> {
        let chunk = Self::ensure_chunk(inner, epoch)?;
        let chunk_id = epoch / inner.config.epochs_per_chunk;
        // The consume path stays open past `enabled()` while entries are
        // still pending: a controller shrinking the depth to 0 races the
        // serve loop, and entries scheduled before the shrink must still
        // settle exactly one outcome counter. The extra `pending()` probe
        // only runs with autotune configured, so the static
        // `prefetch_depth = 0` path keeps its zero extra locking.
        let consume = inner.prefetcher.enabled()
            || (inner.config.autotune.is_some() && inner.prefetcher.pending() > 0);
        if consume {
            // Chunk rollover: speculative batches built against the
            // previous chunk's plan are dead — cancel, never serve.
            inner.prefetcher.cancel_stale(chunk_id);
            if let Some(bytes) =
                Self::consume_prefetched(inner, &chunk, chunk_id, task, epoch, iteration)?
            {
                if inner.prefetcher.enabled() {
                    Self::schedule_prefetch(inner, &chunk, chunk_id, task, epoch, iteration);
                }
                return Ok(bytes);
            }
        }
        let bytes = Self::serve_batch_inline(inner, &chunk, task, epoch, iteration)?;
        if inner.prefetcher.enabled() {
            Self::schedule_prefetch(inner, &chunk, chunk_id, task, epoch, iteration);
        }
        Ok(bytes)
    }

    /// Consumes a prefetched batch if an entry exists for the current
    /// chunk: a complete build is a hit; an in-flight one is served late
    /// (the wait lands in the trace's `prefetch` segment). Returns
    /// `Ok(None)` on a miss — including a failed or cancelled build,
    /// which falls back to the inline path rather than erroring, since
    /// speculative work must never fail a serve the inline path could
    /// satisfy.
    fn consume_prefetched(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        chunk_id: u64,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) -> Result<Option<Vec<u8>>> {
        let Some(&task_id) = inner.task_ids.get(task) else {
            return Ok(None); // the inline path reports the unknown task
        };
        let Some(build) = inner.prefetcher.take((task_id, epoch, iteration), chunk_id) else {
            return Ok(None);
        };
        // From here the entry is consumed and must settle exactly one of
        // the outcome counters: `cancelled` (discarded unconsumable),
        // `miss` (taken but unusable, served inline), `hit`/`late`
        // (served from the build) — `scheduled` counts entries at
        // `begin`, so the four outcomes partition it.
        if build.cancelled() {
            // Cancelled between dequeue and materialize (e.g. a rollover
            // racing this serve): the rollover path never saw this entry
            // leave the map, so it is counted here.
            if let Some(m) = &inner.prefetcher.metrics {
                m.cancelled.inc();
            }
            return Ok(None);
        }
        // Zero-sample probe: no demand jobs run on a prefetch serve, so
        // the only attributable segments are `prefetch` (waited below)
        // and `plan`/`finalize` bookkeeping — the exact-sum invariant
        // over serve latency is preserved.
        let probe = inner.telemetry.batch_probe(0);
        let was_complete = build.is_complete();
        if !was_complete {
            let t0 = inner.prefetcher.metrics.as_ref().map(|_| Instant::now());
            build.wait_complete();
            if let (Some(m), Some(t0)) = (inner.prefetcher.metrics.as_ref(), t0) {
                let waited = t0.elapsed();
                m.wait_us.observe_duration(waited);
                if let Some(p) = &probe {
                    p.record_prefetch_wait(waited);
                }
            }
        }
        if build.cancelled() {
            if let Some(m) = &inner.prefetcher.metrics {
                m.cancelled.inc();
            }
            return Ok(None);
        }
        let mut tensors = Vec::new();
        for slot in build.take_results() {
            match slot {
                Some(Ok(t)) => tensors.push(t),
                // A failed sample: recompute inline (the failure may have
                // been transient, and the inline path owns error
                // reporting). The entry was consumed but could not serve
                // the batch — that is the miss.
                Some(Err(_)) | None => {
                    if let Some(m) = &inner.prefetcher.metrics {
                        m.miss.inc();
                    }
                    return Ok(None);
                }
            }
        }
        // The build served the batch: settle hit vs. late only now, so a
        // post-wait cancellation or bad slot cannot double-count.
        if let Some(m) = &inner.prefetcher.metrics {
            if was_complete {
                m.hit.inc();
            } else {
                m.late.inc();
            }
        }
        let batch = Self::find_batch(inner, chunk, task, epoch, iteration)?.clone();
        // Consumption bookkeeping — identical to the inline path, at
        // consume time in consume order, so the store's clock/use/budget
        // timeline never depends on when speculation ran.
        build.mark_consumed();
        inner.store.set_clock(batch.clock);
        Self::report_pressure(inner);
        let batch_tensor = stack(&tensors)?;
        for plan in &batch.samples {
            for &t in &plan.frame_nodes {
                inner.store.mark_used(&store_key(&chunk.graph.nodes[t].key));
                Self::mark_used_ancestors(inner, chunk, t);
            }
        }
        inner.store.enforce_budgets()?;
        Self::report_pressure(inner);
        inner.batches_served.fetch_add(1, Ordering::Relaxed);
        let bytes = batch_tensor.to_bytes();
        inner
            .last_batch_bytes
            .store(bytes.len() as u64, Ordering::Relaxed);
        if let Some(p) = &probe {
            let budget_us = inner.telemetry.config().map_or(0, |c| c.stall_budget_us);
            let tenant = Self::tenant_of_task(inner, task);
            let trace = p.finish(
                BatchMeta {
                    task: task.to_string(),
                    epoch,
                    iteration,
                    clock: batch.clock,
                    tenant: Self::tenant_label(inner, tenant),
                },
                budget_us,
            );
            if let Some(m) = inner.engine_metrics.as_ref() {
                m.serve_us.observe(trace.serve_ns / 1_000);
                m.batches_served.inc();
                if trace.stalled {
                    m.batches_stalled.inc();
                }
            }
            Self::record_tenant_serve(inner, tenant, trace.serve_ns, trace.stalled);
            inner.telemetry.push_trace(trace);
        }
        Ok(Some(bytes))
    }

    /// Tops the prefetch window up to `depth` batches past the one just
    /// served, walking the trainer's consumption order (iterations, then
    /// the next epoch) without ever crossing the current chunk. Each
    /// sample becomes one self-contained [`JobKind::Prefetch`] job.
    /// Scheduling stops early under back-pressure: in-flight entries,
    /// sized by the last served batch, must fit the store's memory
    /// budget.
    fn schedule_prefetch(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        chunk_id: u64,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) {
        let Some(&task_id) = inner.task_ids.get(task) else {
            return;
        };
        // Speculative work runs on the benefiting tenant's tab: prefetch
        // jobs carry the tenant so their worker time charges its virtual
        // clock — one tenant's deep prefetch window cannot eat another's
        // weighted share.
        let tenant = Self::tenant_of_task(inner, task);
        let est = inner.last_batch_bytes.load(Ordering::Relaxed);
        let (mut e, mut i) = (epoch, iteration);
        for _ in 0..inner.prefetcher.depth() {
            // Successor in consumption order.
            if chunk.batch_index.contains_key(&(task_id, e, i + 1)) {
                i += 1;
            } else {
                e += 1;
                i = 0;
            }
            if e >= inner.config.total_epochs || e / inner.config.epochs_per_chunk != chunk_id {
                break;
            }
            let Some(&idx) = chunk.batch_index.get(&(task_id, e, i)) else {
                break;
            };
            if est > 0 {
                let speculative = (inner.prefetcher.pending() as u64 + 1) * est;
                if speculative > inner.config.store.memory_budget {
                    break;
                }
            }
            let batch = chunk.graph.batches[idx].clone();
            let Some(build) =
                inner
                    .prefetcher
                    .begin((task_id, e, i), chunk_id, batch.samples.len())
            else {
                continue; // already in flight from an earlier serve
            };
            // One `scheduled` per batch entry (not per sample): the
            // outcome counters settle per entry, and
            // `scheduled == hit + late + miss + cancelled` must hold
            // once every entry is consumed.
            if let Some(m) = &inner.prefetcher.metrics {
                m.scheduled.inc();
            }
            for (si, plan) in batch.samples.iter().enumerate() {
                let inner2 = Arc::clone(inner);
                let chunk2 = Arc::clone(chunk);
                let plan2 = plan.clone();
                let build2 = Arc::clone(&build);
                inner.sched.submit(Job {
                    kind: JobKind::Prefetch,
                    deadline: batch.clock,
                    remaining_work: plan.frame_nodes.len() as u64,
                    affinity: Some(plan.video_id),
                    tenant,
                    run: Box::new(move || {
                        if build2.cancelled() {
                            build2.fulfill(
                                si,
                                Err(CoreError::State {
                                    what: "prefetch cancelled".into(),
                                }),
                            );
                            return;
                        }
                        let result = Self::sample_tensor(&inner2, &chunk2, &plan2);
                        build2.fulfill(si, result);
                    }),
                });
            }
        }
    }

    /// Serves a training batch inline (no prefetch entry): fan the
    /// samples out as demand jobs and assemble on this thread.
    fn serve_batch_inline(
        inner: &Arc<Inner>,
        chunk: &Arc<Chunk>,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) -> Result<Vec<u8>> {
        let chunk = Arc::clone(chunk);
        let batch = Self::find_batch(inner, &chunk, task, epoch, iteration)?.clone();
        let tenant = Self::tenant_of_task(inner, task);
        // The probe's creation instant is the batch's t0: everything
        // between here and each job's submission is the `plan` segment
        // of the batch's trace.
        let probe = inner.telemetry.batch_probe(batch.samples.len());
        inner.store.set_clock(batch.clock);
        Self::report_pressure(inner);
        // Fan the samples out as demand jobs so feeding parallelizes and
        // preempts pre-materialization. Each job performs the final
        // normalization too, keeping the serving thread off the critical
        // path (the paper's demand-feeding threads perform "final steps
        // of the preprocessing pipeline").
        let (tx, rx) = crossbeam::channel::bounded(batch.samples.len());
        for (i, plan) in batch.samples.iter().enumerate() {
            let inner2 = Arc::clone(inner);
            let chunk2 = Arc::clone(&chunk);
            let plan2 = plan.clone();
            let tx2 = tx.clone();
            let probe2 = probe.clone();
            if let Some(p) = &probe {
                p.mark_submitted(i);
            }
            inner.sched.submit(Job {
                kind: JobKind::Demand,
                deadline: batch.clock,
                remaining_work: plan.frame_nodes.len() as u64,
                affinity: Some(plan.video_id),
                tenant,
                run: Box::new(move || {
                    let work = || Self::sample_tensor(&inner2, &chunk2, &plan2);
                    let result = match &probe2 {
                        Some(p) => p.run_sample(i, work),
                        None => work(),
                    };
                    let _ = tx2.send((i, result));
                }),
            });
        }
        drop(tx);
        let mut tensors: Vec<Option<sand_frame::Tensor>> = vec![None; batch.samples.len()];
        for (i, result) in rx.iter() {
            tensors[i] = Some(result?);
        }
        let tensors: Vec<sand_frame::Tensor> = tensors
            .into_iter()
            .map(|t| {
                t.ok_or_else(|| CoreError::State {
                    what: "demand job lost".into(),
                })
            })
            .collect::<Result<_>>()?;
        let batch_tensor = stack(&tensors)?;
        // Consumption bookkeeping: a consumed terminal burns one retained
        // use of itself *and of every ancestor*. `Chunk::build`
        // accumulates each node's `future_uses` as the total planned
        // consumptions in its subtree, so burning the whole chain on
        // every consumption — and nothing anywhere else — drives each
        // count to exactly zero when its last dependent batch is served,
        // making spent parents evictable (Algorithm 1's retained-use
        // accounting). Burning at build time instead would leak uses
        // whenever a descendant is later served from cache.
        for plan in &batch.samples {
            for &t in &plan.frame_nodes {
                inner.store.mark_used(&store_key(&chunk.graph.nodes[t].key));
                Self::mark_used_ancestors(inner, &chunk, t);
            }
        }
        inner.store.enforce_budgets()?;
        Self::report_pressure(inner);
        inner.batches_served.fetch_add(1, Ordering::Relaxed);
        let bytes = batch_tensor.to_bytes();
        inner
            .last_batch_bytes
            .store(bytes.len() as u64, Ordering::Relaxed);
        if let Some(p) = &probe {
            let budget_us = inner.telemetry.config().map_or(0, |c| c.stall_budget_us);
            let trace = p.finish(
                BatchMeta {
                    task: task.to_string(),
                    epoch,
                    iteration,
                    clock: batch.clock,
                    tenant: Self::tenant_label(inner, tenant),
                },
                budget_us,
            );
            if let Some(m) = inner.engine_metrics.as_ref() {
                m.serve_us.observe(trace.serve_ns / 1_000);
                m.batches_served.inc();
                if trace.stalled {
                    m.batches_stalled.inc();
                }
            }
            Self::record_tenant_serve(inner, tenant, trace.serve_ns, trace.stalled);
            inner.telemetry.push_trace(trace);
        }
        Ok(bytes)
    }

    /// Class labels of a batch, in sample order.
    fn batch_labels(
        inner: &Arc<Inner>,
        task: &str,
        epoch: u64,
        iteration: u64,
    ) -> Result<Vec<u32>> {
        let chunk = Self::ensure_chunk(inner, epoch)?;
        let batch = Self::find_batch(inner, &chunk, task, epoch, iteration)?;
        batch
            .samples
            .iter()
            .map(|s| {
                inner
                    .dataset
                    .get(s.video_id)
                    .map(|v| v.class_id)
                    .ok_or_else(|| CoreError::UnknownView {
                        what: format!("video {} not in dataset", s.video_id),
                    })
            })
            .collect()
    }
}

impl SandEngine {
    /// Accounts one `fetch` served straight from the compressed cache,
    /// split by the tier the object lived in *before* the read (reads
    /// may promote disk objects back to memory).
    fn count_compressed_hit(&self, tier: Option<Tier>) {
        if let Some(m) = self.inner.engine_metrics.as_ref() {
            match tier {
                Some(Tier::Disk) => m.compressed_hits_disk.inc(),
                _ => m.compressed_hits_mem.inc(),
            }
        }
    }
}

impl ViewProvider for SandEngine {
    fn fetch(&self, path: &ViewPath) -> sand_vfs::Result<Arc<Vec<u8>>> {
        let io = |e: CoreError| VfsError::Io {
            what: e.to_string(),
        };
        match path {
            ViewPath::Batch {
                task,
                epoch,
                iteration,
            } => Inner::serve_batch(&self.inner, task, *epoch, *iteration)
                .map(Arc::new)
                .map_err(io),
            ViewPath::Video { video, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                Ok(Arc::new(entry.encoded.to_bytes()))
            }
            ViewPath::Frame { video, index, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                // Zero-copy fast path: a materialized frame object in the
                // store is served as the very allocation the decoder put
                // there (validated, since store files can be torn).
                let key = store_key(&ObjectKey::Frame {
                    video_id: entry.video_id,
                    frame: *index as usize,
                });
                let tier = self.inner.store.tier_of(&key);
                if let Ok(bytes) = self.inner.store.get(&key) {
                    if decompress_frame(&bytes).is_ok() {
                        self.count_compressed_hit(tier);
                        return Ok(bytes);
                    }
                    let _ = self.inner.store.remove(&key);
                }
                // Cluster tier: the ring owner may hold the compressed
                // frame — serve (and adopt) its bytes before touching the
                // decoder. Validated like any store read; a degraded peer
                // falls through to the local decode.
                if let Some(remote) = &self.inner.remote {
                    if let Some(bytes) = remote.fetch(&key) {
                        if decompress_frame(&bytes).is_ok() {
                            let bytes: Arc<Vec<u8>> = Arc::new(bytes);
                            let meta = ObjectMeta {
                                deadline: None,
                                future_uses: 1,
                            };
                            let _ = self.inner.store.put(&key, Arc::clone(&bytes), meta);
                            return Ok(bytes);
                        }
                    }
                }
                let f =
                    Inner::decode_one(&self.inner, entry.video_id, *index as usize).map_err(io)?;
                Ok(Arc::new(compress_frame(&f)))
            }
            ViewPath::AugFrame {
                video,
                index,
                depth,
                ..
            } => {
                // Serve any planned augmented object at this (frame, depth)
                // from the most recently planned chunk.
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                let chunks = self.inner.chunks.lock();
                let mut best: Option<(u64, Arc<Chunk>)> = None;
                for (id, c) in chunks.iter() {
                    if best.as_ref().is_none_or(|(b, _)| id > b) {
                        best = Some((*id, Arc::clone(c)));
                    }
                }
                drop(chunks);
                let (_, chunk) = best.ok_or_else(|| VfsError::Io {
                    what: "no planned chunk".into(),
                })?;
                let node = chunk
                    .graph
                    .nodes
                    .iter()
                    .find(|n| match &n.key {
                        ObjectKey::Aug {
                            video_id,
                            frame,
                            chain,
                        } => {
                            *video_id == entry.video_id
                                && *frame == *index as usize
                                && chain.len() == *depth as usize
                        }
                        _ => false,
                    })
                    .ok_or_else(|| VfsError::NoSuchView {
                        path: path.to_string(),
                    })?;
                let node_id = node.id;
                let node_key = store_key(&node.key);
                // Compressed-cache read path: a previously materialized
                // object — memory-resident or spilled to disk — is served
                // as its stored compressed bytes, with no decoder or
                // augmentation work at all.
                let tier = self.inner.store.tier_of(&node_key);
                if let Ok(bytes) = self.inner.store.get(&node_key) {
                    if decompress_frame(&bytes).is_ok() {
                        self.count_compressed_hit(tier);
                        return Ok(bytes);
                    }
                    // Corrupt cached object: drop and recompute below.
                    let _ = self.inner.store.remove(&node_key);
                }
                let scratch = Scratch::new(self.inner.mat_metrics.clone());
                let f =
                    Inner::materialize_rec(&self.inner, &chunk, node_id, &scratch).map_err(io)?;
                // Materialization caches planned objects; serve the stored
                // allocation when present instead of re-compressing.
                if let Ok(bytes) = self.inner.store.get(&node_key) {
                    if decompress_frame(&bytes).is_ok() {
                        return Ok(bytes);
                    }
                }
                Ok(Arc::new(compress_frame(&f)))
            }
        }
    }

    fn metadata(&self, path: &ViewPath, name: &str) -> sand_vfs::Result<String> {
        let no_attr = || VfsError::NoAttr {
            name: name.to_string(),
        };
        match path {
            ViewPath::Batch {
                task,
                epoch,
                iteration,
            } => match name {
                "shape" => {
                    let chunk =
                        Inner::ensure_chunk(&self.inner, *epoch).map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    let batch = Inner::find_batch(&self.inner, &chunk, task, *epoch, *iteration)
                        .map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    let n = batch.samples.len();
                    let (t, dims) = batch
                        .samples
                        .first()
                        .map(|s| {
                            let terminal = s.frame_nodes.last().copied();
                            let dims = terminal
                                .map(|id| chunk.graph.nodes[id].dims)
                                .unwrap_or((0, 0));
                            (s.frame_indices.len(), dims)
                        })
                        .unwrap_or((0, (0, 0)));
                    Ok(format!("{n},3,{t},{},{}", dims.1, dims.0))
                }
                "labels" => {
                    let labels = Inner::batch_labels(&self.inner, task, *epoch, *iteration)
                        .map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    Ok(labels
                        .iter()
                        .map(ToString::to_string)
                        .collect::<Vec<_>>()
                        .join(","))
                }
                "timestamps" => {
                    let chunk =
                        Inner::ensure_chunk(&self.inner, *epoch).map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    let batch = Inner::find_batch(&self.inner, &chunk, task, *epoch, *iteration)
                        .map_err(|e| VfsError::Io {
                            what: e.to_string(),
                        })?;
                    Ok(batch
                        .samples
                        .iter()
                        .map(|s| {
                            s.frame_indices
                                .iter()
                                .map(ToString::to_string)
                                .collect::<Vec<_>>()
                                .join(":")
                        })
                        .collect::<Vec<_>>()
                        .join(","))
                }
                _ => Err(no_attr()),
            },
            ViewPath::Video { video, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                match name {
                    "frames" => Ok(entry.encoded.frame_count().to_string()),
                    "class" => Ok(entry.class_id.to_string()),
                    "width" => Ok(entry.encoded.header.width.to_string()),
                    "height" => Ok(entry.encoded.header.height.to_string()),
                    _ => Err(no_attr()),
                }
            }
            ViewPath::Frame { video, index, .. } => {
                let entry =
                    self.inner
                        .dataset
                        .get_by_name(video)
                        .ok_or_else(|| VfsError::NoSuchView {
                            path: path.to_string(),
                        })?;
                match name {
                    "timestamp_us" => Ok(entry
                        .encoded
                        .header
                        .timestamp_us(*index as usize)
                        .to_string()),
                    "video_id" => Ok(entry.video_id.to_string()),
                    _ => Err(no_attr()),
                }
            }
            ViewPath::AugFrame { .. } => Err(no_attr()),
        }
    }

    fn released(&self, path: &ViewPath) {
        // Closing a batch view ends its iteration: spent memory-tier
        // objects (future_uses == 0) are freed promptly by the watermark
        // machinery on the next enforce.
        if matches!(path, ViewPath::Batch { .. }) {
            let _ = self.inner.store.enforce_budgets();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sand_codec::{DatasetSpec, EncoderConfig};
    use sand_config::parse_task_config;
    use sand_frame::Tensor;

    const TASK: &str = r#"
dataset:
  tag: train
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
    - name: c
      branch_type: single
      inputs: ["a0"]
      outputs: ["a1"]
      config:
        - random_crop:
            shape: [8, 8]
        - normalize:
            mean: [0.45, 0.45, 0.45]
            std: [0.225, 0.225, 0.225]
"#;

    fn dataset() -> Arc<Dataset> {
        Arc::new(
            Dataset::generate(&DatasetSpec {
                num_videos: 4,
                num_classes: 2,
                width: 32,
                height: 32,
                frames_per_video: 24,
                encoder: EncoderConfig {
                    gop_size: 6,
                    quantizer: 4,
                    fps_milli: 30_000,
                    b_frames: 0,
                },
                ..Default::default()
            })
            .unwrap(),
        )
    }

    fn engine(prematerialize: bool) -> SandEngine {
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize,
            total_epochs: 4,
            epochs_per_chunk: 2,
            ..Default::default()
        };
        SandEngine::new(config, dataset()).unwrap()
    }

    #[test]
    fn runtime_aug_threads_override_joins_the_max_fold() {
        let mut task = parse_task_config(TASK).unwrap();
        task.execution.aug_threads = 4;
        let config = EngineConfig {
            tasks: vec![task],
            prematerialize: false,
            total_epochs: 4,
            epochs_per_chunk: 2,
            aug_threads: 1,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        // The task hint dominates the static knob.
        assert_eq!(Inner::effective_aug_threads(&e.inner), 4);
        // A runtime override below the hint folds in but cannot shrink
        // past it (the hint is a per-task floor, not a suggestion).
        e.set_aug_threads(2);
        assert_eq!(Inner::effective_aug_threads(&e.inner), 4);
        // Raising above every hint takes effect — the override joins the
        // same max-fold instead of being shadowed by the static hint.
        e.set_aug_threads(8);
        assert_eq!(Inner::effective_aug_threads(&e.inner), 8);
        assert_eq!(e.aug_threads(), 8);
    }

    #[test]
    fn serves_batches_with_expected_shape() {
        let e = engine(false);
        e.start().unwrap();
        let bytes = e.serve_batch("train", 0, 0).unwrap();
        let t = Tensor::from_bytes(&bytes).unwrap();
        // 2 videos/batch, (C=3, T=4, H=8, W=8).
        assert_eq!(t.shape(), &[2, 3, 4, 8, 8]);
    }

    #[test]
    fn batches_cover_epoch_once() {
        let e = engine(false);
        e.start().unwrap();
        let iters = e.iterations_per_epoch("train").unwrap();
        assert_eq!(iters, 2);
        for it in 0..iters {
            e.serve_batch("train", 0, it).unwrap();
        }
        assert_eq!(e.stats().batches_served, 2);
    }

    #[test]
    fn serving_is_deterministic_given_seed() {
        let a = engine(false);
        a.start().unwrap();
        let b = engine(false);
        b.start().unwrap();
        assert_eq!(
            a.serve_batch("train", 0, 0).unwrap(),
            b.serve_batch("train", 0, 0).unwrap()
        );
        assert_eq!(
            a.serve_batch("train", 1, 1).unwrap(),
            b.serve_batch("train", 1, 1).unwrap()
        );
    }

    #[test]
    fn prematerialization_eliminates_demand_decode() {
        let e = engine(true);
        e.start().unwrap();
        e.wait_idle();
        let decoded_before = e.stats().decode.frames_decoded;
        assert!(decoded_before > 0, "pre-materialization decoded nothing");
        for it in 0..2 {
            e.serve_batch("train", 0, it).unwrap();
        }
        let decoded_after = e.stats().decode.frames_decoded;
        assert_eq!(
            decoded_before, decoded_after,
            "serving pre-materialized epoch must not decode"
        );
    }

    #[test]
    fn second_epoch_of_chunk_reuses_nothing_spurious() {
        // Serving both epochs of a chunk works and covers every video.
        let e = engine(true);
        e.start().unwrap();
        e.wait_idle();
        for epoch in 0..2 {
            for it in 0..2 {
                let bytes = e.serve_batch("train", epoch, it).unwrap();
                assert!(!bytes.is_empty());
            }
        }
    }

    #[test]
    fn next_chunk_planned_on_demand() {
        let e = engine(false);
        e.start().unwrap();
        // Epoch 2 is in chunk 1.
        let bytes = e.serve_batch("train", 2, 0).unwrap();
        assert!(!bytes.is_empty());
    }

    #[test]
    fn epoch_beyond_total_rejected() {
        let e = engine(false);
        e.start().unwrap();
        assert!(matches!(
            e.serve_batch("train", 99, 0),
            Err(CoreError::State { .. })
        ));
    }

    #[test]
    fn unknown_task_and_iteration_rejected() {
        let e = engine(false);
        e.start().unwrap();
        assert!(matches!(
            e.serve_batch("nope", 0, 0),
            Err(CoreError::UnknownView { .. })
        ));
        assert!(matches!(
            e.serve_batch("train", 0, 999),
            Err(CoreError::UnknownView { .. })
        ));
    }

    #[test]
    fn vfs_roundtrip_batch_and_metadata() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        let fd = vfs.open("/train/0/0/view").unwrap();
        let bytes = vfs.read_to_end(fd).unwrap();
        let t = Tensor::from_bytes(&bytes).unwrap();
        assert_eq!(t.shape()[0], 2);
        let labels = vfs.getxattr(fd, "labels").unwrap();
        assert_eq!(labels.split(',').count(), 2);
        let ts = vfs.getxattr(fd, "timestamps").unwrap();
        assert_eq!(ts.split(',').count(), 2);
        // The shape xattr matches the tensor actually served.
        let shape = vfs.getxattr(fd, "shape").unwrap();
        let dims: Vec<usize> = shape.split(',').map(|s| s.parse().unwrap()).collect();
        assert_eq!(&dims[..], t.shape());
        vfs.close(fd).unwrap();
    }

    #[test]
    fn vfs_serves_video_frame_and_aug_views() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        // Video view: container bytes round-trip.
        let fd = vfs.open("/train/video0001.svid").unwrap();
        let bytes = vfs.read_to_end(fd).unwrap();
        assert!(sand_codec::EncodedVideo::from_bytes(&bytes).is_ok());
        assert_eq!(vfs.getxattr(fd, "frames").unwrap(), "24");
        vfs.close(fd).unwrap();
        // Frame view: a self-describing compressed frame.
        let fd = vfs.open("/train/video0001/frame5").unwrap();
        let bytes = vfs.read_to_end(fd).unwrap();
        let f = decompress_frame(&bytes).unwrap();
        assert_eq!((f.width(), f.height()), (32, 32));
        assert_eq!(vfs.getxattr(fd, "video_id").unwrap(), "1");
        vfs.close(fd).unwrap();
    }

    #[test]
    fn warm_demand_reads_skip_keyframe_redecode() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        let read = |i: usize| {
            let fd = vfs.open(&format!("/train/video0001/frame{i}")).unwrap();
            let bytes = vfs.read_to_end(fd).unwrap();
            vfs.close(fd).unwrap();
            bytes
        };
        // Cold read: walks keyframe 0 then frame 1 (gop_size = 6).
        let first = read(1);
        let s1 = e.stats().decode;
        assert_eq!(s1.i_frames_decoded, 1);
        assert_eq!(s1.frames_decoded, 2);
        // Forward in the same GOP: the warm session resumes its chain at
        // frame 1 and decodes 2..=3 only — zero keyframe re-decodes.
        read(3);
        let s2 = e.stats().decode;
        assert_eq!(s2.i_frames_decoded, 1, "keyframe re-decoded on warm read");
        assert_eq!(s2.frames_decoded, 4);
        // A different GOP restarts cold from its own keyframe.
        read(13);
        assert_eq!(e.stats().decode.i_frames_decoded, 2);
        // Warm-session bytes equal a cold decode of the same frame.
        let ds = dataset();
        let entry = ds.get(1).unwrap();
        let mut cold = Decoder::new(&entry.encoded);
        let want = cold.decode_indices(&[1]).unwrap();
        assert_eq!(first, compress_frame(&want[0]));
    }

    #[test]
    fn aug_view_reachable_after_planning() {
        let e = engine(false);
        e.start().unwrap();
        let vfs = e.mount();
        // Find a planned frame index through batch timestamps.
        let ts = vfs.getxattr_path("/train/0/0/view", "timestamps").unwrap();
        let first_frame: u64 = ts
            .split(',')
            .next()
            .unwrap()
            .split(':')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        // Depth 1 = after resize.
        let path = format!("/train/video0000/frame{first_frame}/aug1");
        // The frame may belong to a different video in this batch; try all.
        let mut served = false;
        for v in 0..4 {
            let p = format!("/train/video{v:04}/frame{first_frame}/aug1");
            if let Ok(fd) = vfs.open(&p) {
                let bytes = vfs.read_to_end(fd).unwrap();
                let f = decompress_frame(&bytes).unwrap();
                assert_eq!((f.width(), f.height()), (16, 16));
                vfs.close(fd).unwrap();
                served = true;
                break;
            }
        }
        assert!(served, "no aug view served for {path}");
    }

    #[test]
    fn recovery_skips_recomputation() {
        let dir = std::env::temp_dir().join(format!("sand_recover_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = || {
            let config = EngineConfig {
                tasks: vec![parse_task_config(TASK).unwrap()],
                prematerialize: true,
                total_epochs: 2,
                epochs_per_chunk: 2,
                store_dir: Some(dir.clone()),
                store: StoreConfig {
                    // Small memory + horizon 0 pushes everything to disk.
                    memory_budget: 4 << 20,
                    disk_budget: 512 << 20,
                    evict_watermark: 0.75,
                    memory_horizon: 0,
                    ..Default::default()
                },
                ..Default::default()
            };
            SandEngine::new(config, dataset()).unwrap()
        };
        let first = mk();
        first.start().unwrap();
        first.wait_idle();
        let decoded_first = first.stats().decode.frames_decoded;
        assert!(decoded_first > 0);
        drop(first);
        // "Crash" and restart over the same store dir.
        let second = mk();
        second.start().unwrap();
        second.wait_idle();
        assert_eq!(
            second.stats().decode.frames_decoded,
            0,
            "recovery must not re-decode persisted objects"
        );
        // And the recovered engine still serves correct batches.
        let bytes = second.serve_batch("train", 0, 0).unwrap();
        assert!(!bytes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SandEngine::new(EngineConfig::default(), dataset()).is_err());
        let mut cfg = EngineConfig {
            tasks: vec![
                parse_task_config(TASK).unwrap(),
                parse_task_config(TASK).unwrap(),
            ],
            ..Default::default()
        };
        assert!(SandEngine::new(cfg.clone(), dataset()).is_err()); // duplicate tag
        cfg.tasks.pop();
        cfg.total_epochs = 0;
        assert!(SandEngine::new(cfg, dataset()).is_err());
    }

    #[test]
    fn custom_op_pipeline_serves_through_service() {
        const CUSTOM_TASK: &str = r#"
dataset:
  tag: custom
  input_source: file
  video_dataset_path: /d
  sampling:
    videos_per_batch: 2
    frames_per_video: 4
    frame_stride: 2
  augmentation:
    - name: r
      branch_type: single
      inputs: ["frame"]
      outputs: ["a0"]
      config:
        - resize:
            shape: [16, 16]
        - custom:
            name: invert_custom
"#;
        let service = crate::service::AugService::builder()
            .register(
                "invert_custom",
                Box::new(|mut f: Frame| {
                    for b in f.as_bytes_mut() {
                        *b = 255 - *b;
                    }
                    Ok(f)
                }),
            )
            .start();
        let config = EngineConfig {
            tasks: vec![parse_task_config(CUSTOM_TASK).unwrap()],
            total_epochs: 1,
            epochs_per_chunk: 1,
            aug_service: Some(service.client()),
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        let bytes = e.serve_batch("custom", 0, 0).unwrap();
        let t = Tensor::from_bytes(&bytes).unwrap();
        assert_eq!(t.shape(), &[2, 3, 4, 16, 16]);
        // Without the service, the same pipeline fails with a clear error.
        let config = EngineConfig {
            tasks: vec![parse_task_config(CUSTOM_TASK).unwrap()],
            total_epochs: 1,
            epochs_per_chunk: 1,
            prematerialize: false,
            ..Default::default()
        };
        let e2 = SandEngine::new(config, dataset()).unwrap();
        e2.start().unwrap();
        let err = e2.serve_batch("custom", 0, 0).unwrap_err();
        assert!(err.to_string().contains("augmentation"), "{err}");
    }

    #[test]
    fn corrupt_cached_object_recomputed_not_fatal() {
        let dir = std::env::temp_dir().join(format!("sand_corrupt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            total_epochs: 1,
            epochs_per_chunk: 1,
            store_dir: Some(dir.clone()),
            store: StoreConfig {
                memory_horizon: 0,
                ..Default::default()
            },
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        e.wait_idle();
        // Corrupt every persisted object (simulating torn writes).
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_file() {
                std::fs::write(&path, b"garbage").unwrap();
            }
        }
        // Serving must still succeed by recomputing from source.
        let bytes = e.serve_batch("train", 0, 0).unwrap();
        assert!(!bytes.is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn plan_checkpoints_written_and_reused() {
        let dir = std::env::temp_dir().join(format!("sand_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mk = || {
            let config = EngineConfig {
                tasks: vec![parse_task_config(TASK).unwrap()],
                total_epochs: 2,
                epochs_per_chunk: 2,
                store_dir: Some(dir.clone()),
                prematerialize: false,
                ..Default::default()
            };
            SandEngine::new(config, dataset()).unwrap()
        };
        let a = mk();
        a.start().unwrap();
        let first = a.serve_batch("train", 0, 0).unwrap();
        let ckpt = dir.join("_meta").join("graph_chunk_0.ckpt");
        assert!(ckpt.exists(), "checkpoint written at {}", ckpt.display());
        drop(a);
        // A restarted engine loads the checkpointed plan and serves the
        // same batch bytes.
        let b = mk();
        b.start().unwrap();
        assert_eq!(b.serve_batch("train", 0, 0).unwrap(), first);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn coordinated_two_tasks_share_store_objects() {
        let mut t2 = parse_task_config(TASK).unwrap();
        t2.tag = "second".into();
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap(), t2],
            prematerialize: false,
            total_epochs: 1,
            epochs_per_chunk: 1,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        for it in 0..2 {
            e.serve_batch("train", 0, it).unwrap();
        }
        let decoded_after_first_task = e.stats().decode.frames_decoded;
        for it in 0..2 {
            e.serve_batch("second", 0, it).unwrap();
        }
        let decoded_after_second_task = e.stats().decode.frames_decoded;
        // The second task's identical pipeline reuses the first task's
        // cached terminals: no (or almost no) extra decoding.
        assert!(
            decoded_after_second_task <= decoded_after_first_task,
            "second task re-decoded: {decoded_after_first_task} -> {decoded_after_second_task}"
        );
    }

    #[test]
    fn lint_deny_fails_startup() {
        // A 1-byte cache budget cannot hold a single batch: SL020 at
        // deny level must reject startup before any chunk is planned.
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: false,
            cache_budget: 1,
            prune: false,
            lint: LintLevel::Deny,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        match e.start() {
            Err(CoreError::Lint { denies, report }) => {
                assert!(denies >= 1);
                assert!(report.contains("SL020"), "{report}");
            }
            other => panic!("expected CoreError::Lint, got {other:?}"),
        }
    }

    #[test]
    fn lint_warn_reports_but_serves() {
        // Same infeasible budget at warn level: startup succeeds.
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: false,
            cache_budget: 1,
            lint: LintLevel::Warn,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        e.serve_batch("train", 0, 0).unwrap();
    }

    #[test]
    fn lint_clean_config_stays_silent() {
        let e = engine(false);
        // The default test workload is feasible; deny level still starts.
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: false,
            lint: LintLevel::Deny,
            ..Default::default()
        };
        let strict = SandEngine::new(config, dataset()).unwrap();
        strict.start().unwrap();
        drop(e);
    }

    #[test]
    fn warm_eviction_is_lru_not_arbitrary() {
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: false,
            warm_session_cap: 2,
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        // Warm the hot video's session and advance it mid-GOP (gop 6).
        Inner::decode_one(&e.inner, 0, 2).unwrap(); // decodes 0..=2
        Inner::decode_one(&e.inner, 0, 3).unwrap(); // +1, warm resume
        Inner::decode_one(&e.inner, 1, 0).unwrap(); // fills the cap
        Inner::decode_one(&e.inner, 0, 4).unwrap(); // refreshes the hot video
        Inner::decode_one(&e.inner, 2, 0).unwrap(); // at cap: must evict v1
        let before = e.stats().decode.frames_decoded;
        assert_eq!(before, 7);
        // The hot video's anchor chain survived cap pressure: the next
        // forward read resumes with a single incremental decode. (The old
        // arbitrary eviction could drop v0 here, forcing a 6-frame
        // keyframe re-walk.)
        Inner::decode_one(&e.inner, 0, 5).unwrap();
        assert_eq!(
            e.stats().decode.frames_decoded - before,
            1,
            "hot warm session was evicted under cap pressure"
        );
    }

    #[test]
    fn served_chunk_leaves_no_retained_uses() {
        // Serve every batch of a chunk; afterwards each surviving store
        // object must report zero future uses — the consumption-time
        // chain burn spends parents exactly, so Algorithm 1 may evict
        // everything. (The old build-time parent burn leaked uses when a
        // descendant was later served from cache.)
        let e = engine(true);
        e.start().unwrap();
        e.wait_idle();
        for epoch in 0..2 {
            for it in 0..2 {
                e.serve_batch("train", epoch, it).unwrap();
            }
        }
        let store = e.store();
        for key in store.keys() {
            assert_eq!(
                store.future_uses_of(&key),
                Some(0),
                "object `{key}` still holds retained uses after its chunk \
                 was fully served"
            );
        }
    }

    #[test]
    fn disabled_telemetry_invisible_and_bit_identical() {
        let serve_all = |telemetry: Option<TelemetryConfig>| {
            let config = EngineConfig {
                tasks: vec![parse_task_config(TASK).unwrap()],
                prematerialize: false,
                total_epochs: 2,
                epochs_per_chunk: 2,
                telemetry,
                ..Default::default()
            };
            let e = SandEngine::new(config, dataset()).unwrap();
            e.start().unwrap();
            let mut out = Vec::new();
            for epoch in 0..2 {
                for it in 0..2 {
                    out.push(e.serve_batch("train", epoch, it).unwrap());
                }
            }
            (e, out)
        };
        let (off, off_bytes) = serve_all(None);
        assert!(!off.telemetry().is_enabled());
        assert!(off.metrics_snapshot().is_none());
        assert!(off.stall_report().is_none());
        let (on, on_bytes) = serve_all(Some(TelemetryConfig::default()));
        assert_eq!(off_bytes, on_bytes, "telemetry changed served bytes");
        let snap = on.metrics_snapshot().expect("telemetry enabled");
        assert_eq!(snap.counter("engine.batches_served"), Some(4));
        assert_eq!(snap.histogram("engine.serve_us").map(|h| h.count), Some(4));
    }

    #[test]
    fn stall_report_breakdown_sums_to_serve_latency() {
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: true,
            total_epochs: 2,
            epochs_per_chunk: 2,
            // Default stall budget is 0: every batch is traced as stalled,
            // which is exactly what this invariant check wants.
            telemetry: Some(TelemetryConfig::default()),
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        e.wait_idle();
        for epoch in 0..2 {
            for it in 0..2 {
                e.serve_batch("train", epoch, it).unwrap();
            }
        }
        let report = e.stall_report().expect("telemetry enabled");
        assert_eq!(report.traces.len(), 4);
        assert_eq!(report.stalled().len(), 4);
        for t in &report.traces {
            assert_eq!(
                t.breakdown_sum_ns(),
                t.serve_ns,
                "stage breakdown of {} does not reassemble its serve latency",
                t.batch_id()
            );
            assert_eq!(t.samples, 2);
        }
        // The scheduler accounted every demand job under metrics.
        let snap = e.metrics_snapshot().expect("telemetry enabled");
        assert_eq!(
            snap.histogram("sched.demand_wait_us").map(|h| h.count),
            Some(8),
            "4 batches x 2 samples pass through the demand queue"
        );
    }

    #[test]
    fn compressed_cache_serves_spilled_frames_without_decode() {
        let dir = std::env::temp_dir().join(format!("sand_spill_fetch_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let config = EngineConfig {
            tasks: vec![parse_task_config(TASK).unwrap()],
            prematerialize: true,
            total_epochs: 2,
            epochs_per_chunk: 2,
            store_dir: Some(dir.clone()),
            store: StoreConfig {
                // Small memory + horizon 0 pushes everything to disk.
                memory_budget: 4 << 20,
                disk_budget: 512 << 20,
                evict_watermark: 0.75,
                memory_horizon: 0,
                ..Default::default()
            },
            telemetry: Some(TelemetryConfig::default()),
            ..Default::default()
        };
        let e = SandEngine::new(config, dataset()).unwrap();
        e.start().unwrap();
        e.wait_idle();
        // Pick a persisted source-frame object (key shape `vNNNN/fNNNNN`)
        // living on the disk tier. Horizon 0 pushes frames to disk, but
        // ones whose deadline equals the current clock keep a memory
        // copy, so filter by tier rather than assuming.
        let key = e
            .store()
            .keys()
            .into_iter()
            .find(|k| {
                k.contains("/f") && !k.contains("/a") && e.store().tier_of(k) == Some(Tier::Disk)
            })
            .expect("pre-materialization spilled no frame objects to disk");
        let video: u64 = key[1..5].parse().unwrap();
        let frame: usize = key[7..12].parse().unwrap();
        // Fetching the frame view must be served from the compressed
        // cache: zero new decoder work, one disk hit counted.
        let vfs = e.mount();
        let decoded_before = e.stats().decode.frames_decoded;
        let fd = vfs
            .open(&format!("/train/video{video:04}/frame{frame}"))
            .unwrap();
        let bytes = vfs.read_to_end(fd).unwrap();
        vfs.close(fd).unwrap();
        assert!(decompress_frame(&bytes).is_ok());
        assert_eq!(
            e.stats().decode.frames_decoded,
            decoded_before,
            "spilled frame went back through the decoder"
        );
        let snap = e.metrics_snapshot().expect("telemetry enabled");
        assert_eq!(snap.counter("engine.compressed_hits_disk"), Some(1));
        assert_eq!(snap.counter("vfs.fetches"), Some(1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn parallel_materialize_matches_sequential() {
        let run = |aug_threads: usize| {
            let config = EngineConfig {
                tasks: vec![parse_task_config(TASK).unwrap()],
                prematerialize: true,
                total_epochs: 2,
                epochs_per_chunk: 2,
                aug_threads,
                sched: SchedConfig {
                    threads: 4,
                    ..Default::default()
                },
                ..Default::default()
            };
            let e = SandEngine::new(config, dataset()).unwrap();
            e.start().unwrap();
            e.wait_idle();
            let mut batches = Vec::new();
            for epoch in 0..2 {
                for it in 0..2 {
                    batches.push(e.serve_batch("train", epoch, it).unwrap());
                }
            }
            (batches, e.stats().aug_ops_applied)
        };
        let (seq, seq_ops) = run(1);
        let (par, par_ops) = run(4);
        assert_eq!(seq, par, "parallel materialize changed served bytes");
        assert_eq!(
            seq_ops, par_ops,
            "parallel materialize changed the op count (duplicated or \
             skipped chain work)"
        );
    }
}
