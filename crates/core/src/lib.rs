//! The SAND engine: planning, materialization, serving, and recovery.
//!
//! This crate ties the workspace together into the system the paper
//! describes. A [`engine::SandEngine`]:
//!
//! 1. compiles every task's configuration into per-task abstract view
//!    dependency graphs and, chunk by chunk (`k` epochs at a time), into a
//!    unified concrete object dependency graph (`sand-graph`),
//! 2. prunes the cached-object set to the storage budget (Algorithm 1),
//! 3. drives a priority-scheduled worker pool (`sand-sched`) that
//!    pre-materializes objects into the tiered store (`sand-storage`)
//!    ahead of their deadlines while demand-feeding the batch the trainer
//!    is blocked on,
//! 4. serves everything through the POSIX-style view filesystem
//!    (`sand-vfs`): `open("/task/epoch/iter/view")` → `read` → tensors.
//!
//! Fault tolerance follows the paper's three-step recovery: the plan is
//! regenerated deterministically from configs and seed, the disk tier is
//! scanned for surviving objects, and only the gaps are recomputed.

#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod engine;
pub mod fleet;
pub mod keys;
mod prefetch;
pub mod service;

pub use engine::{EngineConfig, EngineStats, SandEngine};
pub use fleet::{Fleet, FleetConfig, RejectedTenant, Tenancy, TenantId, TenantSpec};
pub use keys::store_key;
pub use sand_autotune::{AutotuneConfig, Decision as AutotuneDecision};
pub use sand_lint::LintLevel;
pub use sand_sched::TenantShare;
pub use sand_telemetry::{
    LoaderMetrics, MetricValue, Snapshot, StallReport, Telemetry, TelemetryConfig,
};
pub use service::{AugClient, AugService, CustomOp};

use std::fmt;

/// Errors produced by the engine.
#[derive(Debug)]
pub enum CoreError {
    /// Configuration failed validation.
    Config(sand_config::ConfigError),
    /// Planning failed.
    Graph(sand_graph::GraphError),
    /// Codec failure while materializing.
    Codec(sand_codec::CodecError),
    /// Frame/tensor failure while materializing.
    Frame(sand_frame::FrameError),
    /// Storage failure.
    Storage(sand_storage::StorageError),
    /// A requested view is not part of any plan.
    UnknownView {
        /// Human-readable description.
        what: String,
    },
    /// Engine state error (e.g. epoch beyond `total_epochs`).
    State {
        /// Human-readable description.
        what: String,
    },
    /// The startup lint pass found deny-severity problems.
    Lint {
        /// Number of deny-severity findings.
        denies: usize,
        /// The rendered lint report.
        report: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Config(e) => write!(f, "config: {e}"),
            CoreError::Graph(e) => write!(f, "planning: {e}"),
            CoreError::Codec(e) => write!(f, "codec: {e}"),
            CoreError::Frame(e) => write!(f, "frame: {e}"),
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::UnknownView { what } => write!(f, "unknown view: {what}"),
            CoreError::State { what } => write!(f, "engine state: {what}"),
            CoreError::Lint { denies, report } => {
                write!(
                    f,
                    "lint rejected the configuration ({denies} deny finding(s)):\n{report}"
                )
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<sand_config::ConfigError> for CoreError {
    fn from(e: sand_config::ConfigError) -> Self {
        CoreError::Config(e)
    }
}

impl From<sand_graph::GraphError> for CoreError {
    fn from(e: sand_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<sand_codec::CodecError> for CoreError {
    fn from(e: sand_codec::CodecError) -> Self {
        CoreError::Codec(e)
    }
}

impl From<sand_frame::FrameError> for CoreError {
    fn from(e: sand_frame::FrameError) -> Self {
        CoreError::Frame(e)
    }
}

impl From<sand_storage::StorageError> for CoreError {
    fn from(e: sand_storage::StorageError) -> Self {
        CoreError::Storage(e)
    }
}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, CoreError>;
