//! Epoch-ahead batch prefetching.
//!
//! With `EngineConfig::prefetch_depth = d > 0`, serving batch *n*
//! schedules speculative materialization of batches *n+1..n+d* (in the
//! trainer's consumption order, within the current plan chunk) as
//! [`sand_sched::JobKind::Prefetch`] jobs — strictly below demand
//! priority, so a blocked `read()` always wins the worker pool. While
//! the trainer consumes batch *n* on the GPU, the workers assemble the
//! next batches; the next `serve_batch` call then either takes a
//! finished entry (**hit**), waits for the in-flight remainder
//! (**late**, with the wait carved into the trace's `prefetch` stall
//! segment), or finds nothing and serves inline (**miss**).
//!
//! ## Bit-identity
//!
//! Prefetching never changes served bytes ([`EngineConfig`]'s
//! `prefetch_depth = 0` default is exactly today's behaviour, and the
//! `prop_prefetch_parity` test pins depth ∈ {0, 1, 4} to identical
//! sequences). Two rules make that hold by construction:
//!
//! - Prefetch jobs only *materialize* (deterministic given plan + seed;
//!   the cache merely decides reuse vs. recompute). All consumption
//!   bookkeeping — clock advance, retained-use burn, budget enforcement
//!   — happens at **consume time, in consume order**, identically to
//!   the inline path.
//! - Each sample is one self-contained job (no nested fan-out), so a
//!   prefetch job never blocks on another job and the pool cannot
//!   deadlock at any worker count.
//!
//! Back-pressure: scheduling stops while the estimated bytes of
//! unconsumed entries (sized by the last served batch) would overrun
//! the store's memory budget, so the prefetcher cannot thrash the cache
//! it feeds. On chunk rollover, stale entries are cancelled (counted in
//! `prefetch.cancelled`) and their jobs bail without materializing.

use sand_frame::Tensor;
use sand_sanitizer::{ShadowCell, TrackedCondvar, TrackedMutex};
use sand_telemetry::PrefetchMetrics;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Identity of a prefetchable batch: (task id, epoch, iteration).
pub(crate) type PrefetchKey = (u32, u64, u64);

/// One speculative batch under assembly: per-sample result slots filled
/// by independent prefetch jobs.
pub(crate) struct BatchBuild {
    state: TrackedMutex<BuildState>,
    done: TrackedCondvar,
    cancelled: AtomicBool,
    /// Lockset shadow for the result slots: every touch of `tensors`
    /// must hold the build lock.
    results_shadow: ShadowCell,
    /// Handoff shadow for consume-time bookkeeping: [`Prefetcher::take`]
    /// transfers ownership to the single consuming thread.
    consume_shadow: ShadowCell,
}

struct BuildState {
    tensors: Vec<Option<crate::Result<Tensor>>>,
    remaining: usize,
}

impl BatchBuild {
    fn new(samples: usize) -> Self {
        BatchBuild {
            state: TrackedMutex::new(
                "prefetch.build",
                BuildState {
                    tensors: (0..samples).map(|_| None).collect(),
                    remaining: samples,
                },
            ),
            done: TrackedCondvar::new(),
            cancelled: AtomicBool::new(false),
            results_shadow: ShadowCell::new("prefetch.results"),
            consume_shadow: ShadowCell::new("prefetch.consume"),
        }
    }

    /// True once the entry was discarded (chunk rollover); jobs check
    /// this before doing any work.
    pub(crate) fn cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }

    fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
        self.done.notify_all();
    }

    /// Delivers sample `i`'s result (or registers a cancelled bail-out,
    /// which still counts toward completion so waiters never hang).
    pub(crate) fn fulfill(&self, i: usize, result: crate::Result<Tensor>) {
        let mut state = self.state.lock();
        self.results_shadow.write();
        if state.tensors[i].is_none() {
            state.tensors[i] = Some(result);
            state.remaining -= 1;
        }
        if state.remaining == 0 {
            self.done.notify_all();
        }
    }

    /// True when every sample slot is filled.
    pub(crate) fn is_complete(&self) -> bool {
        self.state.lock().remaining == 0
    }

    /// Blocks until every sample job delivered (or the build was
    /// cancelled).
    pub(crate) fn wait_complete(&self) {
        let mut state = self.state.lock();
        while state.remaining > 0 && !self.cancelled() {
            self.done.wait(&mut state);
        }
    }

    /// Takes the per-sample results; `None` slots mean a job never ran
    /// (only possible after cancellation).
    pub(crate) fn take_results(&self) -> Vec<Option<crate::Result<Tensor>>> {
        let mut state = self.state.lock();
        self.results_shadow.write();
        std::mem::take(&mut state.tensors)
    }

    /// Marks a consume-time bookkeeping step by the owning consumer;
    /// ownership was transferred by [`Prefetcher::take`]'s handoff.
    pub(crate) fn mark_consumed(&self) {
        self.consume_shadow.write();
    }
}

struct Entry {
    chunk_id: u64,
    build: Arc<BatchBuild>,
}

/// The epoch-ahead prefetcher: a window of speculative batch builds
/// keyed by (task, epoch, iteration).
pub(crate) struct Prefetcher {
    /// Live look-ahead depth. Seeded from `EngineConfig::prefetch_depth`
    /// and runtime-adjustable via [`Prefetcher::set_depth`] (the autotune
    /// controller's actuation point).
    depth: AtomicUsize,
    entries: TrackedMutex<HashMap<PrefetchKey, Entry>>,
    pub(crate) metrics: Option<PrefetchMetrics>,
}

impl Prefetcher {
    pub(crate) fn new(depth: usize, metrics: Option<PrefetchMetrics>) -> Self {
        Prefetcher {
            depth: AtomicUsize::new(depth),
            entries: TrackedMutex::new("prefetch.entries", HashMap::new()),
            metrics,
        }
    }

    /// Whether prefetching is active (`prefetch_depth > 0`).
    pub(crate) fn enabled(&self) -> bool {
        self.depth() > 0
    }

    /// The look-ahead depth currently in effect.
    pub(crate) fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Retunes the look-ahead window at runtime.
    ///
    /// Resizing must preserve the per-entry conservation invariant
    /// `scheduled == hit + late + miss + cancelled`:
    ///
    /// - **Growing** needs nothing: the next `schedule_prefetch` pass
    ///   simply looks further ahead.
    /// - **Shrinking to a smaller non-zero depth** needs nothing either:
    ///   already-scheduled entries beyond the new window are *ahead of
    ///   consumption*, so the serve path consumes and settles each one
    ///   naturally before any new scheduling happens.
    /// - **Shrinking to zero** cancels every in-flight entry (each
    ///   counted once in `prefetch.cancelled`), because a disabled
    ///   window may never be consumed again — e.g. when the engine shuts
    ///   down with the feature off. The serve path still drains any
    ///   entry that races this cancellation (it consumes while
    ///   `pending() > 0` even when disabled), so either path settles
    ///   each entry exactly once.
    pub(crate) fn set_depth(&self, depth: usize) {
        let old = self.depth.swap(depth, Ordering::Relaxed);
        if depth == 0 && old != 0 {
            self.cancel_all();
        }
    }

    /// Cancels every entry in the window, counting each once.
    fn cancel_all(&self) {
        let mut entries = self.entries.lock();
        for (_, entry) in entries.drain() {
            entry.build.cancel();
            if let Some(m) = &self.metrics {
                m.cancelled.inc();
            }
        }
    }

    /// Unconsumed entries currently held (for back-pressure estimates).
    pub(crate) fn pending(&self) -> usize {
        self.entries.lock().len()
    }

    /// Registers a new build for `key` unless one exists; returns the
    /// build to hand to the per-sample jobs.
    pub(crate) fn begin(
        &self,
        key: PrefetchKey,
        chunk_id: u64,
        samples: usize,
    ) -> Option<Arc<BatchBuild>> {
        let mut entries = self.entries.lock();
        if entries.contains_key(&key) {
            return None;
        }
        let build = Arc::new(BatchBuild::new(samples));
        entries.insert(
            key,
            Entry {
                chunk_id,
                build: Arc::clone(&build),
            },
        );
        Some(build)
    }

    /// Removes and returns the build for `key` if one exists for the
    /// current chunk. A stale entry (older chunk) is cancelled instead.
    pub(crate) fn take(&self, key: PrefetchKey, chunk_id: u64) -> Option<Arc<BatchBuild>> {
        let mut entries = self.entries.lock();
        let entry = entries.remove(&key)?;
        if entry.chunk_id == chunk_id {
            // Removal under the entries lock is the ownership transfer:
            // exactly one caller gets the build; its consume-time
            // bookkeeping is single-threaded from here on.
            entry.build.consume_shadow.handoff();
            Some(entry.build)
        } else {
            entry.build.cancel();
            if let Some(m) = &self.metrics {
                m.cancelled.inc();
            }
            None
        }
    }

    /// Cancels every entry not belonging to `chunk_id` (chunk rollover:
    /// the superseded plan's speculative batches are dead weight). Each
    /// cancelled entry is counted once.
    pub(crate) fn cancel_stale(&self, chunk_id: u64) {
        let mut entries = self.entries.lock();
        entries.retain(|_, entry| {
            if entry.chunk_id == chunk_id {
                return true;
            }
            entry.build.cancel();
            if let Some(m) = &self.metrics {
                m.cancelled.inc();
            }
            false
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tensor() -> Tensor {
        Tensor::zeros(vec![1]).expect("valid shape")
    }

    #[test]
    fn build_completes_when_all_samples_fulfilled() {
        let p = Prefetcher::new(2, None);
        assert!(p.enabled());
        assert_eq!(p.depth(), 2);
        let build = p.begin((0, 0, 1), 0, 2).expect("fresh key");
        assert!(p.begin((0, 0, 1), 0, 2).is_none(), "double begin");
        assert!(!build.is_complete());
        build.fulfill(0, Ok(tensor()));
        build.fulfill(1, Ok(tensor()));
        assert!(build.is_complete());
        build.wait_complete(); // must not block
        let taken = p.take((0, 0, 1), 0).expect("entry present");
        assert_eq!(taken.take_results().len(), 2);
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn stale_chunk_entries_are_cancelled_not_served() {
        let p = Prefetcher::new(1, None);
        let build = p.begin((0, 1, 0), 0, 1).expect("fresh key");
        // Rollover to chunk 1: the entry is stale.
        p.cancel_stale(1);
        assert!(build.cancelled());
        assert_eq!(p.pending(), 0);
        assert!(p.take((0, 1, 0), 1).is_none());
    }

    #[test]
    fn take_with_wrong_chunk_cancels() {
        let p = Prefetcher::new(1, None);
        let build = p.begin((0, 0, 0), 0, 1).expect("fresh key");
        assert!(p.take((0, 0, 0), 7).is_none());
        assert!(build.cancelled());
    }

    #[test]
    fn waiters_wake_on_cancellation() {
        let p = Prefetcher::new(1, None);
        let build = p.begin((0, 0, 0), 0, 1).expect("fresh key");
        let waiter = {
            let build = Arc::clone(&build);
            std::thread::spawn(move || build.wait_complete())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        p.cancel_stale(99);
        waiter.join().expect("waiter must wake after cancel");
    }

    #[test]
    fn disabled_prefetcher_reports_depth_zero() {
        let p = Prefetcher::new(0, None);
        assert!(!p.enabled());
        assert_eq!(p.pending(), 0);
    }

    #[test]
    fn resizing_keeps_inflight_entries_except_shrink_to_zero() {
        let p = Prefetcher::new(4, None);
        let a = p.begin((0, 0, 1), 0, 1).expect("fresh key");
        let b = p.begin((0, 0, 2), 0, 1).expect("fresh key");
        // Shrinking to a smaller non-zero depth keeps in-flight entries:
        // they are ahead of consumption and will be consumed naturally.
        p.set_depth(1);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.pending(), 2);
        assert!(!a.cancelled() && !b.cancelled());
        // Growing is also just a bound change.
        p.set_depth(8);
        assert_eq!(p.depth(), 8);
        assert_eq!(p.pending(), 2);
        // Shrinking to zero cancels everything in flight.
        p.set_depth(0);
        assert!(!p.enabled());
        assert_eq!(p.pending(), 0);
        assert!(a.cancelled() && b.cancelled());
        // Redundant disable does not re-count anything (no entries).
        p.set_depth(0);
        assert_eq!(p.pending(), 0);
    }
}
