//! Autotune parity and conservation: the adaptive control plane moves
//! *performance* knobs only, never behaviour. For any generated workload
//! and any runtime knob schedule — manual setter calls or real
//! controller ticks — the engine must serve bit-identical batch
//! sequences, and the prefetch outcome counters must keep partitioning
//! `scheduled` exactly across every depth resize.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_codec::{Dataset, DatasetSpec, EncoderConfig};
use sand_config::parse_task_config;
use sand_core::{AutotuneConfig, EngineConfig, LintLevel, SandEngine, TelemetryConfig};
use sand_sched::SchedConfig;
use sand_telemetry::MetricValue;
use std::sync::Arc;

const TASK_YAML: &str = "dataset:\n  tag: t\n  input_source: file\n  video_dataset_path: /d\n  sampling:\n    videos_per_batch: 2\n    frames_per_video: 3\n    frame_stride: 1\n  augmentation:\n    - name: base\n      branch_type: single\n      inputs: [\"frame\"]\n      outputs: [\"s0\"]\n      config:\n        - resize:\n            shape: [16, 16]\n";

fn dataset(videos: usize, seed: u64) -> Arc<Dataset> {
    Arc::new(
        Dataset::generate(&DatasetSpec {
            num_videos: videos,
            num_classes: 2,
            width: 32,
            height: 32,
            frames_per_video: 12,
            seed,
            encoder: EncoderConfig {
                gop_size: 4,
                quantizer: 4,
                fps_milli: 30_000,
                b_frames: 0,
            },
            ..Default::default()
        })
        .unwrap(),
    )
}

fn base_config(epochs: u64, epochs_per_chunk: u64, seed: u64) -> EngineConfig {
    EngineConfig {
        tasks: vec![parse_task_config(TASK_YAML).unwrap()],
        prematerialize: true,
        total_epochs: epochs,
        epochs_per_chunk,
        seed,
        sched: SchedConfig {
            threads: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn counter(e: &SandEngine, name: &str) -> u64 {
    match e.telemetry().snapshot().unwrap().get(name) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("{name}: expected counter, got {other:?}"),
    }
}

fn assert_conservation(e: &SandEngine, context: &str) {
    let (scheduled, hit, late, miss, cancelled) = (
        counter(e, "prefetch.scheduled"),
        counter(e, "prefetch.hit"),
        counter(e, "prefetch.late"),
        counter(e, "prefetch.miss"),
        counter(e, "prefetch.cancelled"),
    );
    let pending = e.prefetch_pending() as u64;
    assert_eq!(
        scheduled,
        hit + late + miss + cancelled + pending,
        "{context}: scheduled {scheduled} != hit {hit} + late {late} + miss {miss} \
         + cancelled {cancelled} + pending {pending}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole's bit-identity bar, knob-schedule edition: a run
    /// whose prefetch depth, demand slack, and thread splits are retuned
    /// between every batch serves exactly the bytes the static engine
    /// serves, and the prefetch counters stay exactly conserved across
    /// every resize (including shrink-to-zero cancellations).
    #[test]
    fn prop_autotune_parity(
        videos in 2usize..=4,
        epochs in 1u64..=2,
        per_chunk in 1u64..=2,
        seed in 0u64..1000,
        depths in proptest::collection::vec(0usize..=4, 4..=8),
        slacks in proptest::collection::vec(0u64..=8, 4..=8),
    ) {
        let ds = dataset(videos, seed);
        // Baseline: static knobs.
        let baseline = {
            let e = SandEngine::new(
                base_config(epochs, per_chunk.min(epochs), seed),
                Arc::clone(&ds),
            ).unwrap();
            e.start().unwrap();
            e.wait_idle();
            let iters = e.iterations_per_epoch("t").unwrap();
            let mut batches = Vec::new();
            for epoch in 0..epochs {
                for it in 0..iters {
                    batches.push(e.serve_batch("t", epoch, it).unwrap());
                }
            }
            batches
        };
        // Tuned run: every knob retuned between batches, walking the
        // generated schedules.
        let config = EngineConfig {
            prefetch_depth: 2,
            telemetry: Some(TelemetryConfig::default()),
            autotune: Some(AutotuneConfig::default()),
            ..base_config(epochs, per_chunk.min(epochs), seed)
        };
        let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
        e.start().unwrap();
        e.wait_idle();
        let iters = e.iterations_per_epoch("t").unwrap();
        let mut tuned = Vec::new();
        let mut step = 0usize;
        for epoch in 0..epochs {
            for it in 0..iters {
                tuned.push(e.serve_batch("t", epoch, it).unwrap());
                e.set_prefetch_depth(depths[step % depths.len()]);
                e.set_demand_slack(slacks[step % slacks.len()]);
                e.set_aug_threads(1 + step % 3);
                e.set_decode_threads(1 + (step + 1) % 2);
                step += 1;
            }
        }
        e.wait_idle();
        prop_assert_eq!(&baseline, &tuned, "knob schedule changed served bytes");
        assert_conservation(&e, "after knob schedule");
    }

    /// The real closed loop: controller ticks between batches drive the
    /// knobs from live telemetry, and the output still matches the
    /// static engine bit for bit.
    #[test]
    fn prop_closed_loop_parity(
        videos in 2usize..=3,
        seed in 0u64..1000,
    ) {
        let epochs = 2u64;
        let ds = dataset(videos, seed);
        let baseline = {
            let e = SandEngine::new(base_config(epochs, 1, seed), Arc::clone(&ds)).unwrap();
            e.start().unwrap();
            e.wait_idle();
            let iters = e.iterations_per_epoch("t").unwrap();
            let mut batches = Vec::new();
            for epoch in 0..epochs {
                for it in 0..iters {
                    batches.push(e.serve_batch("t", epoch, it).unwrap());
                }
            }
            batches
        };
        let config = EngineConfig {
            prefetch_depth: 2,
            telemetry: Some(TelemetryConfig::default()),
            autotune: Some(AutotuneConfig {
                interval_ms: 0, // explicit ticks only
                ..Default::default()
            }),
            ..base_config(epochs, 1, seed)
        };
        let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
        e.start().unwrap();
        e.wait_idle();
        let iters = e.iterations_per_epoch("t").unwrap();
        let mut tuned = Vec::new();
        let mut ticks = 0u64;
        for epoch in 0..epochs {
            for it in 0..iters {
                tuned.push(e.serve_batch("t", epoch, it).unwrap());
                prop_assert!(e.autotune_tick().is_some(), "tick refused with autotune on");
                ticks += 1;
            }
        }
        e.wait_idle();
        prop_assert_eq!(&baseline, &tuned, "closed-loop control changed served bytes");
        assert_conservation(&e, "after closed loop");
        // Decisions export: tick counter and knob gauges mirror reality.
        prop_assert_eq!(counter(&e, "autotune.ticks"), ticks);
        let snap = e.telemetry().snapshot().unwrap();
        prop_assert_eq!(
            snap.gauge("autotune.prefetch_depth"),
            Some(e.prefetch_depth() as i64)
        );
        prop_assert_eq!(
            snap.gauge("autotune.demand_slack"),
            Some(e.demand_slack() as i64)
        );
        prop_assert_eq!(
            snap.gauge("autotune.aug_threads"),
            Some(e.aug_threads() as i64)
        );
    }
}

/// A scripted mid-sweep resize 4 → 1 → 0 → 3: entries in flight at each
/// shrink must settle exactly once (consumed naturally at nonzero
/// depths, cancelled at zero), and the sweep still serves every batch.
#[test]
fn depth_resize_mid_sweep_conserves_every_entry() {
    let ds = dataset(3, 11);
    let config = EngineConfig {
        prefetch_depth: 4,
        telemetry: Some(TelemetryConfig::default()),
        autotune: Some(AutotuneConfig::default()),
        ..base_config(2, 2, 11)
    };
    let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
    e.start().unwrap();
    e.wait_idle();
    let iters = e.iterations_per_epoch("t").unwrap();
    let schedule = [4usize, 1, 0, 3];
    let mut served = 0u64;
    for epoch in 0..2 {
        for it in 0..iters {
            e.serve_batch("t", epoch, it).unwrap();
            e.set_prefetch_depth(schedule[served as usize % schedule.len()]);
            served += 1;
        }
    }
    e.wait_idle();
    assert!(served >= 4, "workload too small to exercise the schedule");
    assert!(
        counter(&e, "prefetch.scheduled") > 0,
        "schedule never prefetched"
    );
    assert!(
        counter(&e, "prefetch.cancelled") > 0,
        "shrink-to-zero never cancelled an in-flight entry"
    );
    assert_conservation(&e, "after resize schedule");
}

/// Without telemetry there are no signals: the controller must refuse to
/// tick (inert, not wrong) and leave every knob at its seed value.
#[test]
fn autotune_without_telemetry_is_inert() {
    let config = EngineConfig {
        prefetch_depth: 2,
        lint: LintLevel::Off, // SL034 would (rightly) deny this config
        autotune: Some(AutotuneConfig::default()),
        ..base_config(1, 1, 3)
    };
    let e = SandEngine::new(config, dataset(2, 3)).unwrap();
    e.start().unwrap();
    assert!(e.autotune_tick().is_none(), "ticked without a registry");
    assert_eq!(e.prefetch_depth(), 2);
    assert_eq!(e.demand_slack(), SchedConfig::default().demand_slack);
}

/// SL034 end to end: lint `Deny` + autotune without telemetry fails
/// startup with the lint report naming the code.
#[test]
fn autotune_without_telemetry_fails_deny_lint() {
    let config = EngineConfig {
        lint: LintLevel::Deny,
        autotune: Some(AutotuneConfig::default()),
        ..base_config(1, 1, 3)
    };
    let e = SandEngine::new(config, dataset(2, 3)).unwrap();
    let err = e
        .start()
        .expect_err("SL034 must deny autotune-sans-telemetry");
    let msg = err.to_string();
    assert!(msg.contains("SL034"), "{msg}");
}

/// SL035 end to end: an inverted clamp range (max < min) fails startup.
#[test]
fn inverted_clamp_range_fails_deny_lint() {
    let mut autotune = AutotuneConfig::default();
    autotune.demand_slack.min = 8;
    autotune.demand_slack.max = 2;
    let config = EngineConfig {
        lint: LintLevel::Deny,
        telemetry: Some(TelemetryConfig::default()),
        autotune: Some(autotune),
        ..base_config(1, 1, 3)
    };
    let e = SandEngine::new(config, dataset(2, 3)).unwrap();
    let err = e.start().expect_err("SL035 must deny an inverted clamp");
    let msg = err.to_string();
    assert!(msg.contains("SL035"), "{msg}");
    assert!(msg.contains("autotune.demand_slack"), "{msg}");
}

/// The background loop: a nonzero interval spawns the `sand-autotune`
/// thread, ticks accumulate without any explicit call, and dropping the
/// engine joins the thread cleanly (no hang, no leak).
#[test]
fn background_loop_ticks_and_joins_on_drop() {
    let config = EngineConfig {
        telemetry: Some(TelemetryConfig::default()),
        autotune: Some(AutotuneConfig {
            interval_ms: 5,
            ..Default::default()
        }),
        ..base_config(1, 1, 5)
    };
    let e = SandEngine::new(config, dataset(2, 5)).unwrap();
    e.start().unwrap();
    e.wait_idle();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    loop {
        if counter(&e, "autotune.ticks") > 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "background loop never ticked"
        );
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    drop(e); // must join the control thread, not hang or panic
}

/// Decisions ride the stall report: a forced knob move shows up in the
/// report's `autotune decisions` log, rendered and in JSONL.
#[test]
fn decisions_ride_the_stall_report() {
    let ds = dataset(3, 13);
    let config = EngineConfig {
        prefetch_depth: 2,
        telemetry: Some(TelemetryConfig::default()),
        autotune: Some(AutotuneConfig {
            interval_ms: 0,
            ..Default::default()
        }),
        ..base_config(2, 1, 13)
    };
    let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
    e.start().unwrap();
    e.wait_idle();
    let iters = e.iterations_per_epoch("t").unwrap();
    // Drain between serves so every consumed entry is a guaranteed hit:
    // an all-hit window reads as near-zero prefetch pressure, which
    // deterministically drives at least one `Lower` decision.
    let mut decisions = Vec::new();
    for epoch in 0..2 {
        for it in 0..iters {
            e.serve_batch("t", epoch, it).unwrap();
            e.wait_idle();
            decisions.extend(e.autotune_tick().unwrap());
        }
    }
    assert!(
        !decisions.is_empty(),
        "all-hit windows committed no decision"
    );
    let report = e.stall_report().unwrap();
    assert_eq!(
        report.decisions.len(),
        decisions.len(),
        "stall report log out of sync with returned decisions"
    );
    for (logged, d) in report.decisions.iter().zip(&decisions) {
        assert_eq!(logged, &d.render());
    }
    if !decisions.is_empty() {
        assert!(report.render_table().contains("autotune decisions"));
        assert!(report.render_jsonl().contains("autotune_decision"));
    }
}
