//! Prefetch and shard parity: `prefetch_depth` and `store.shards` are
//! performance knobs, never behaviour knobs. For any generated workload,
//! every depth must serve bit-identical batch sequences (the prefetcher
//! only moves *when* materialization runs, all consumption bookkeeping
//! stays at consume time in consume order), and a sharded store must
//! serve exactly what the single-lock store serves.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_codec::{Dataset, DatasetSpec, EncoderConfig};
use sand_config::parse_task_config;
use sand_core::{EngineConfig, SandEngine, TelemetryConfig};
use sand_sched::SchedConfig;
use sand_storage::{StoreConfig, SyncPolicy};
use sand_telemetry::MetricValue;
use std::sync::Arc;

const TASK_YAML: &str = "dataset:\n  tag: t\n  input_source: file\n  video_dataset_path: /d\n  sampling:\n    videos_per_batch: 2\n    frames_per_video: 3\n    frame_stride: 1\n  augmentation:\n    - name: base\n      branch_type: single\n      inputs: [\"frame\"]\n      outputs: [\"s0\"]\n      config:\n        - resize:\n            shape: [16, 16]\n";

fn dataset(videos: usize, seed: u64) -> Arc<Dataset> {
    Arc::new(
        Dataset::generate(&DatasetSpec {
            num_videos: videos,
            num_classes: 2,
            width: 32,
            height: 32,
            frames_per_video: 12,
            seed,
            encoder: EncoderConfig {
                gop_size: 4,
                quantizer: 4,
                fps_milli: 30_000,
                b_frames: 0,
            },
            ..Default::default()
        })
        .unwrap(),
    )
}

fn base_config(epochs: u64, epochs_per_chunk: u64, seed: u64) -> EngineConfig {
    EngineConfig {
        tasks: vec![parse_task_config(TASK_YAML).unwrap()],
        prematerialize: true,
        total_epochs: epochs,
        epochs_per_chunk,
        seed,
        sched: SchedConfig {
            threads: 4,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Serves every batch of every epoch in consumption order.
fn serve_all(e: &SandEngine, epochs: u64) -> Vec<Vec<u8>> {
    e.start().unwrap();
    e.wait_idle();
    let iters = e.iterations_per_epoch("t").unwrap();
    let mut batches = Vec::new();
    for epoch in 0..epochs {
        for it in 0..iters {
            batches.push(e.serve_batch("t", epoch, it).unwrap());
        }
    }
    batches
}

fn counter(e: &SandEngine, name: &str) -> u64 {
    match e.telemetry().snapshot().unwrap().get(name) {
        Some(MetricValue::Counter(v)) => *v,
        other => panic!("{name}: expected counter, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole's bit-identity bar: depth 0 (today's inline path),
    /// depth 1, and depth 4 serve identical byte sequences across
    /// multi-chunk runs (chunk rollover cancels, never corrupts).
    #[test]
    fn prop_prefetch_parity(
        videos in 2usize..=4,
        epochs in 1u64..=2,
        per_chunk in 1u64..=2,
        seed in 0u64..1000,
    ) {
        let ds = dataset(videos, seed);
        let mut runs = Vec::new();
        for depth in [0usize, 1, 4] {
            let config = EngineConfig {
                prefetch_depth: depth,
                telemetry: Some(TelemetryConfig::default()),
                ..base_config(epochs, per_chunk.min(epochs), seed)
            };
            let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
            runs.push(serve_all(&e, epochs));
            // Counter-conservation invariant: a full in-order sweep
            // consumes every entry the window ever registered, and each
            // settles exactly one outcome.
            let (scheduled, hit, late, miss, cancelled) = (
                counter(&e, "prefetch.scheduled"),
                counter(&e, "prefetch.hit"),
                counter(&e, "prefetch.late"),
                counter(&e, "prefetch.miss"),
                counter(&e, "prefetch.cancelled"),
            );
            prop_assert_eq!(
                scheduled,
                hit + late + miss + cancelled,
                "depth {}: scheduled {} != hit {} + late {} + miss {} + cancelled {}",
                depth, scheduled, hit, late, miss, cancelled
            );
        }
        prop_assert_eq!(&runs[0], &runs[1], "depth 1 changed served bytes");
        prop_assert_eq!(&runs[0], &runs[2], "depth 4 changed served bytes");
    }

    /// Engine-level shard invariance under real memory pressure: a tiny
    /// memory tier forces spills through Algorithm-1's coordinated
    /// sweep, and the 8-shard store must still serve exactly what the
    /// single-lock store serves.
    #[test]
    fn prop_sharded_store_serves_identical_batches(
        videos in 2usize..=3,
        seed in 0u64..1000,
    ) {
        let ds = dataset(videos, seed);
        let mut runs = Vec::new();
        let mut dirs = Vec::new();
        for shards in [1usize, 8] {
            let dir = std::env::temp_dir().join(format!(
                "sand_prefetch_shard{shards}_{}_{seed}_{videos}",
                std::process::id(),
            ));
            let _ = std::fs::remove_dir_all(&dir);
            let config = EngineConfig {
                store_dir: Some(dir.clone()),
                store: StoreConfig {
                    memory_budget: 64 << 10,
                    disk_budget: 512 << 20,
                    evict_watermark: 0.75,
                    memory_horizon: 1,
                    shards,
                    compact_threshold: 0.5,
                    sync: SyncPolicy::Never,
                },
                ..base_config(1, 1, seed)
            };
            let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
            runs.push(serve_all(&e, 1));
            dirs.push(dir);
        }
        prop_assert_eq!(&runs[0], &runs[1], "sharding changed served bytes");
        for dir in dirs {
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// With telemetry on and a prefetch window, every *entry* settles in
/// exactly one of {hit, late, miss, cancelled} (partitioning
/// `scheduled`, which counts one per entry), and the `prefetch` trace
/// segment keeps the 8-segment breakdown summing exactly to serve
/// latency.
#[test]
fn prefetch_counters_and_traces_stay_exact() {
    let ds = dataset(3, 7);
    let config = EngineConfig {
        prefetch_depth: 2,
        telemetry: Some(TelemetryConfig::default()),
        ..base_config(2, 2, 7)
    };
    let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
    e.start().unwrap();
    e.wait_idle();
    let iters = e.iterations_per_epoch("t").unwrap();
    let mut served = 0u64;
    for epoch in 0..2 {
        for it in 0..iters {
            e.serve_batch("t", epoch, it).unwrap();
            served += 1;
            // Drain the freshly-scheduled prefetch jobs so the next
            // serve is a guaranteed *hit* (a trainer's GPU step plays
            // this role in production).
            e.wait_idle();
        }
    }
    assert!(served >= 2, "workload too small to exercise prefetching");
    let (scheduled, hit, late, miss, cancelled) = (
        counter(&e, "prefetch.scheduled"),
        counter(&e, "prefetch.hit"),
        counter(&e, "prefetch.late"),
        counter(&e, "prefetch.miss"),
        counter(&e, "prefetch.cancelled"),
    );
    // The first serve has nothing speculated (and counts nowhere); with
    // the pool drained between serves, every later serve is a hit on a
    // complete build.
    assert_eq!(
        hit,
        served - 1,
        "all but the cold-start serve must hit (hit {hit}, late {late}, miss {miss})"
    );
    assert_eq!(late + miss, 0, "drained windows never wait or fall back");
    assert_eq!(cancelled, 0, "in-order consumption never cancels");
    assert_eq!(
        scheduled,
        hit + late + miss + cancelled,
        "every entry must settle exactly one outcome"
    );
    let report = e.stall_report().unwrap();
    assert_eq!(report.traces.len(), served as usize);
    for t in &report.traces {
        assert_eq!(
            t.breakdown_sum_ns(),
            t.serve_ns,
            "trace breakdown must sum exactly to serve latency"
        );
    }
}

/// Skipping the rest of a chunk and jumping ahead strands the window's
/// speculative batches; the rollover serve must cancel (and count) them
/// rather than serving stale-plan bytes.
#[test]
fn chunk_rollover_cancels_stale_entries() {
    let ds = dataset(4, 11);
    let config = EngineConfig {
        prefetch_depth: 4,
        telemetry: Some(TelemetryConfig::default()),
        ..base_config(2, 1, 11)
    };
    let e = SandEngine::new(config, Arc::clone(&ds)).unwrap();
    e.start().unwrap();
    e.wait_idle();
    // Serve one batch of chunk 0: the window now speculates on the
    // remaining chunk-0 batches.
    e.serve_batch("t", 0, 0).unwrap();
    e.wait_idle();
    assert!(counter(&e, "prefetch.scheduled") > 0);
    // Jump straight into chunk 1 (epoch 1): the stranded entries are
    // stale and must be cancelled, not served.
    let jumped = e.serve_batch("t", 1, 0).unwrap();
    assert!(!jumped.is_empty());
    assert!(
        counter(&e, "prefetch.cancelled") > 0,
        "stranded chunk-0 entries must be cancelled on rollover"
    );
}
