//! Parallel-materialize parity: for any generated single-chunk workload,
//! an engine with `aug_threads > 1` must serve bit-identical batches and
//! apply exactly as many augmentation ops as the sequential engine — the
//! fan-out may only change *where* chains run, never what they compute
//! (the shared per-video scratch guarantees each node is computed at most
//! once per pass in both modes).

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sand_codec::{Dataset, DatasetSpec, EncoderConfig};
use sand_config::parse_task_config;
use sand_core::{EngineConfig, SandEngine};
use sand_sched::SchedConfig;
use std::sync::Arc;

#[derive(Debug, Clone)]
struct Spec {
    videos: usize,
    gop: usize,
    vpb: usize,
    fpv: usize,
    stride: usize,
    /// Crop sizes of the chained stages after the base 16x16 resize.
    crops: Vec<usize>,
    epochs: u64,
    seed: u64,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        2usize..=4,
        2usize..=8,
        1usize..=2,
        2usize..=4,
        1usize..=3,
        prop::collection::vec(6usize..=14, 0..=2),
        1u64..=2,
        0u64..1000,
    )
        .prop_map(
            |(videos, gop, vpb, fpv, stride, crops, epochs, seed)| Spec {
                videos,
                gop,
                vpb,
                fpv,
                stride,
                crops,
                epochs,
                seed,
            },
        )
}

fn render_task(spec: &Spec) -> String {
    let mut y = format!(
        "dataset:\n  tag: t\n  input_source: file\n  video_dataset_path: /d\n  sampling:\n    videos_per_batch: {}\n    frames_per_video: {}\n    frame_stride: {}\n  augmentation:\n    - name: base\n      branch_type: single\n      inputs: [\"frame\"]\n      outputs: [\"s0\"]\n      config:\n        - resize:\n            shape: [16, 16]\n",
        spec.vpb, spec.fpv, spec.stride
    );
    let mut cur = 16usize;
    for (i, &c) in spec.crops.iter().enumerate() {
        let c = c.min(cur);
        cur = c;
        y.push_str(&format!(
            "    - name: c{i}\n      branch_type: single\n      inputs: [\"s{i}\"]\n      outputs: [\"s{}\"]\n      config:\n        - center_crop:\n            shape: [{c}, {c}]\n",
            i + 1
        ));
    }
    y
}

/// Serves every batch of the (single) chunk; returns the raw batch bytes
/// and the engine's applied-op counter.
fn run(spec: &Spec, dataset: &Arc<Dataset>, aug_threads: usize) -> (Vec<Vec<u8>>, u64) {
    let config = EngineConfig {
        tasks: vec![parse_task_config(&render_task(spec)).unwrap()],
        prematerialize: true,
        // One chunk only: premat for a later chunk racing the serve loop
        // would make op counts depend on timing, not correctness.
        total_epochs: spec.epochs,
        epochs_per_chunk: spec.epochs,
        seed: spec.seed,
        aug_threads,
        sched: SchedConfig {
            threads: 4,
            ..Default::default()
        },
        ..Default::default()
    };
    let e = SandEngine::new(config, Arc::clone(dataset)).unwrap();
    e.start().unwrap();
    e.wait_idle();
    let iters = e.iterations_per_epoch("t").unwrap();
    let mut batches = Vec::new();
    for epoch in 0..spec.epochs {
        for it in 0..iters {
            batches.push(e.serve_batch("t", epoch, it).unwrap());
        }
    }
    (batches, e.stats().aug_ops_applied)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn parallel_pass_is_bit_identical(spec in spec_strategy()) {
        let dataset = Arc::new(
            Dataset::generate(&DatasetSpec {
                num_videos: spec.videos,
                num_classes: 2,
                width: 32,
                height: 32,
                frames_per_video: 24,
                seed: spec.seed,
                encoder: EncoderConfig {
                    gop_size: spec.gop,
                    quantizer: 4,
                    fps_milli: 30_000,
                    b_frames: 0,
                },
                ..Default::default()
            })
            .unwrap(),
        );
        let (seq, seq_ops) = run(&spec, &dataset, 1);
        let (par, par_ops) = run(&spec, &dataset, 4);
        prop_assert_eq!(seq, par, "parallel materialize changed served bytes");
        prop_assert_eq!(
            seq_ops,
            par_ops,
            "parallel materialize duplicated or skipped chain work"
        );
    }
}
